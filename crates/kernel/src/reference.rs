//! The naive reference scheduler, kept as a differential-testing oracle.
//!
//! [`NaiveSimulation`] is a faithful copy of the executor this crate
//! shipped before the clock-domain bucketed scheduler: `next_edge()`
//! re-scans every component slot for the minimum pending edge, `step()`
//! scans every slot to find the ones firing, and `is_quiescent()` walks
//! every component and link. It is **O(components) per edge** and exists
//! for two purposes only:
//!
//! 1. **Differential determinism tests** — the property suite drives
//!    random clock/component sets through both executors and asserts the
//!    `(time, component index)` tick sequences are identical, which is the
//!    proof that the bucketed scheduler preserves cycle-level traces
//!    bit-for-bit.
//! 2. **The `kernel_hotpath` microbench** — measuring the bucketed
//!    scheduler's speedup against this baseline on the same machine.
//!
//! Production code should always use [`Simulation`](crate::Simulation).

use crate::clock::ClockDomain;
use crate::component::{Component, ComponentId, TickContext};
use crate::error::{SimError, SimResult};
use crate::fault::FaultEngine;
use crate::link::LinkPool;
use crate::rng::SplitMix64;
use crate::sim::RunOutcome;
use crate::stats::StatsRegistry;
use crate::time::{Cycles, Time};

struct Slot<T> {
    component: Box<dyn Component<T>>,
    clock: ClockDomain,
    next_tick: Time,
    ticks: u64,
}

/// The pre-bucketing executor: full per-edge scans, full quiescence scans.
///
/// API-compatible with the subset of [`Simulation`](crate::Simulation) the
/// tests and benches need; see the [module docs](self) for why it exists.
pub struct NaiveSimulation<T> {
    time: Time,
    slots: Vec<Slot<T>>,
    links: LinkPool<T>,
    stats: StatsRegistry,
    rng: SplitMix64,
    faults: FaultEngine,
}

impl<T> NaiveSimulation<T> {
    /// Creates an empty simulation with the default seed (0).
    pub fn new() -> Self {
        NaiveSimulation::with_seed(0)
    }

    /// Creates an empty simulation whose RNG is seeded with `seed`.
    pub fn with_seed(seed: u64) -> Self {
        NaiveSimulation {
            time: Time::ZERO,
            slots: Vec::new(),
            links: LinkPool::new(),
            stats: StatsRegistry::new(),
            rng: SplitMix64::new(seed),
            faults: FaultEngine::new(),
        }
    }

    /// Registers a component on a clock domain.
    pub fn add_component(
        &mut self,
        component: Box<dyn Component<T>>,
        clock: ClockDomain,
    ) -> ComponentId {
        let id = ComponentId(u32::try_from(self.slots.len()).expect("too many components"));
        // Same pre-registration as `Simulation::add_component`: metric
        // creation order is observable (report rows, checkpoint bytes), so
        // both executors must create build-time metrics at the same point.
        component.register_metrics(&mut self.stats);
        let next_tick = clock.next_edge_at_or_after(self.time);
        self.slots.push(Slot {
            component,
            clock,
            next_tick,
            ticks: 0,
        });
        id
    }

    /// Current simulation time (last processed edge).
    pub fn time(&self) -> Time {
        self.time
    }

    /// Total ticks executed by a component so far.
    pub fn component_ticks(&self, id: ComponentId) -> u64 {
        self.slots[id.index()].ticks
    }

    /// The shared link pool.
    pub fn links(&self) -> &LinkPool<T> {
        &self.links
    }

    /// Mutable access to the link pool (wiring phase).
    pub fn links_mut(&mut self) -> &mut LinkPool<T> {
        &mut self.links
    }

    /// The metric registry.
    pub fn stats(&self) -> &StatsRegistry {
        &self.stats
    }

    /// Mutable access to the fault engine (to arm schedules), so
    /// differential tests can drive the oracle under the same fault
    /// schedule as the real executor.
    pub fn faults_mut(&mut self) -> &mut FaultEngine {
        &mut self.faults
    }

    /// The time of the next pending edge (full scan).
    pub fn next_edge(&self) -> Option<Time> {
        self.slots.iter().map(|s| s.next_tick).min()
    }

    /// Advances to the next edge, scanning and ticking every component
    /// scheduled there.
    pub fn step(&mut self) -> Option<Time> {
        let edge = self.next_edge()?;
        self.time = edge;
        let mut ticked = 0u64;
        for (index, slot) in self.slots.iter_mut().enumerate() {
            if slot.next_tick == edge {
                let cycle = Cycles::new(slot.ticks);
                self.faults.set_origin(index as u32);
                let mut ctx = TickContext::direct(
                    edge,
                    cycle,
                    &mut self.links,
                    &mut self.stats,
                    &mut self.rng,
                    &mut self.faults,
                );
                slot.component.tick(&mut ctx);
                slot.ticks += 1;
                slot.next_tick = edge + slot.clock.period();
                ticked += 1;
            }
        }
        crate::activity::record_edge(ticked, 0);
        Some(edge)
    }

    /// Runs all edges up to and including `horizon`.
    pub fn run_until(&mut self, horizon: Time) {
        while let Some(next) = self.next_edge() {
            if next > horizon {
                break;
            }
            self.step();
        }
    }

    /// Whether every component is idle and every link is drained (full
    /// scan over components and links).
    pub fn is_quiescent(&self) -> bool {
        self.links.scan_queued() == 0 && self.slots.iter().all(|s| s.component.is_idle())
    }

    /// Runs until quiescence or until `horizon` passes, scanning the whole
    /// platform at every edge.
    pub fn run_to_quiescence(&mut self, horizon: Time) -> RunOutcome {
        loop {
            if self.is_quiescent() && self.time > Time::ZERO {
                return RunOutcome::Quiescent { at: self.time };
            }
            match self.next_edge() {
                Some(next) if next <= horizon => {
                    self.step();
                }
                _ => return RunOutcome::HorizonReached { at: self.time },
            }
        }
    }

    /// Like [`NaiveSimulation::run_to_quiescence`], but hitting the horizon
    /// while work is pending is reported as a stall.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] naming the still-busy components.
    pub fn run_to_quiescence_strict(&mut self, horizon: Time) -> SimResult<Time> {
        match self.run_to_quiescence(horizon) {
            RunOutcome::Quiescent { at } => Ok(at),
            RunOutcome::HorizonReached { at } => Err(SimError::Stalled {
                at,
                busy: self
                    .slots
                    .iter()
                    .filter(|s| !s.component.is_idle())
                    .map(|s| s.component.name().to_owned())
                    .collect(),
            }),
        }
    }
}

impl<T> Default for NaiveSimulation<T> {
    fn default() -> Self {
        NaiveSimulation::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Noop;
    impl crate::snapshot::Snapshot for Noop {}
    impl Component<u64> for Noop {
        fn name(&self) -> &str {
            "noop"
        }
        fn tick(&mut self, _ctx: &mut TickContext<'_, u64>) {}
    }

    #[test]
    fn naive_matches_documented_edge_grid() {
        let mut sim: NaiveSimulation<u64> = NaiveSimulation::new();
        let id = sim.add_component(Box::new(Noop), ClockDomain::from_mhz(100));
        sim.run_until(Time::from_ns(25));
        assert_eq!(sim.component_ticks(id), 3);
        assert_eq!(sim.time(), Time::from_ns(20));
    }

    #[test]
    fn naive_quiescence_on_empty_platform() {
        let mut sim: NaiveSimulation<u64> = NaiveSimulation::new();
        assert!(matches!(
            sim.run_to_quiescence(Time::from_ns(10)),
            RunOutcome::HorizonReached { .. }
        ));
    }
}
