//! Deterministic pseudo-random number generation.
//!
//! The kernel ships its own tiny generator rather than pulling a full RNG
//! crate into every component model: simulation results must be reproducible
//! bit-for-bit across runs and across dependency upgrades, and SplitMix64 is
//! a well-known, fully specified generator with excellent statistical
//! behaviour for non-cryptographic workloads such as traffic generation.

/// A [SplitMix64](https://prng.di.unimi.it/splitmix64.c) pseudo-random
/// number generator.
///
/// # Examples
///
/// ```
/// use mpsoc_kernel::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let x = a.range(10, 20);
/// assert!((10..20).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives an independent child generator; useful for giving each
    /// traffic agent its own stream while keeping global determinism.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Current internal state, for checkpointing.
    ///
    /// `SplitMix64::new(rng.state())` reconstructs a generator that
    /// continues the stream exactly where this one left off.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Geometric-like number of extra items with continuation probability
    /// `p`, capped at `max`; used for bursty arrival modelling.
    pub fn geometric(&mut self, p: f64, max: u64) -> u64 {
        let mut n = 0;
        while n < max && self.chance(p) {
            n += 1;
        }
        n
    }

    /// Picks a uniformly random index into a slice of weights, with
    /// probability proportional to the weight.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[u64]) -> usize {
        let total: u64 = weights.iter().sum();
        assert!(total > 0, "weights must not all be zero");
        let mut pick = self.range(0, total);
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                return i;
            }
            pick -= w;
        }
        unreachable!("pick < total by construction")
    }
}

/// Per-tick handle to the simulation RNG (the `rng` field of
/// [`TickContext`](crate::TickContext)).
///
/// In the serial schedule every call forwards to the shared generator.
/// During a parallel compute phase the handle draws *speculatively* from a
/// private copy of the generator frozen at the start of the edge, recording
/// the `(start, end)` state pair of its substream. At commit time the
/// executor validates the speculation against the live generator: if the
/// shared state still equals the recorded start — i.e. no earlier tick of
/// the edge drew — the speculative draws are exactly what serial execution
/// would have produced, and the live state jumps to the recorded end.
/// Otherwise the tick is rolled back and re-run serially (first mover wins),
/// so results stay bit-identical to serial either way.
#[derive(Debug)]
pub struct RngAccess<'a> {
    inner: RngInner<'a>,
}

#[derive(Debug)]
enum RngInner<'a> {
    Direct(&'a mut SplitMix64),
    Buffered {
        /// Shared generator state at the edge freeze.
        start: u64,
        local: SplitMix64,
        /// `(start, end)` of the speculative substream, recorded on every
        /// access for the executor's commit-time validation. `None` while
        /// the tick has not touched the RNG (no validation needed).
        speculation: &'a mut Option<(u64, u64)>,
    },
}

impl<'a> RngAccess<'a> {
    /// Pass-through handle over the shared generator (serial execution).
    pub(crate) fn direct(rng: &'a mut SplitMix64) -> Self {
        RngAccess {
            inner: RngInner::Direct(rng),
        }
    }

    /// Buffered handle over a private copy of the generator state frozen at
    /// the edge start; every access records the speculative `(start, end)`
    /// state pair for commit-time validation.
    pub(crate) fn buffered(state: u64, speculation: &'a mut Option<(u64, u64)>) -> Self {
        RngAccess {
            inner: RngInner::Buffered {
                start: state,
                local: SplitMix64::new(state),
                speculation,
            },
        }
    }

    fn with_rng<R>(&mut self, f: impl FnOnce(&mut SplitMix64) -> R) -> R {
        match &mut self.inner {
            RngInner::Direct(rng) => f(rng),
            RngInner::Buffered {
                start,
                local,
                speculation,
            } => {
                let r = f(local);
                **speculation = Some((*start, local.state()));
                r
            }
        }
    }

    /// See [`SplitMix64::fork`].
    pub fn fork(&mut self) -> SplitMix64 {
        self.with_rng(|rng| rng.fork())
    }

    /// See [`SplitMix64::state`]. Reading the stream position still counts
    /// as an RNG access in a parallel compute phase: the observed position
    /// is only correct if no earlier tick of the edge drew, which is exactly
    /// what commit-time validation checks.
    pub fn state(&mut self) -> u64 {
        self.with_rng(|rng| rng.state())
    }

    /// See [`SplitMix64::next_u64`].
    pub fn next_u64(&mut self) -> u64 {
        self.with_rng(|rng| rng.next_u64())
    }

    /// See [`SplitMix64::range`].
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.with_rng(|rng| rng.range(lo, hi))
    }

    /// See [`SplitMix64::unit`].
    pub fn unit(&mut self) -> f64 {
        self.with_rng(|rng| rng.unit())
    }

    /// See [`SplitMix64::chance`].
    pub fn chance(&mut self, p: f64) -> bool {
        self.with_rng(|rng| rng.chance(p))
    }

    /// See [`SplitMix64::geometric`].
    pub fn geometric(&mut self, p: f64, max: u64) -> u64 {
        self.with_rng(|rng| rng.geometric(p, max))
    }

    /// See [`SplitMix64::weighted_index`].
    pub fn weighted_index(&mut self, weights: &[u64]) -> usize {
        self.with_rng(|rng| rng.weighted_index(weights))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_stream_values() {
        // Reference values from the canonical splitmix64.c with seed 0.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(rng.next_u64(), 0x6e78_9e6a_a1b9_65f4);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_but_deterministic() {
        let mut parent1 = SplitMix64::new(9);
        let mut parent2 = SplitMix64::new(9);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(SplitMix64::new(9).next_u64(), c1.next_u64());
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = rng.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn unit_stays_in_unit_interval() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SplitMix64::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn geometric_capped() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..100 {
            assert!(rng.geometric(0.9, 4) <= 4);
            assert_eq!(rng.geometric(0.0, 10), 0);
        }
    }

    #[test]
    fn weighted_index_respects_zero_weights() {
        let mut rng = SplitMix64::new(17);
        for _ in 0..200 {
            let i = rng.weighted_index(&[0, 3, 0, 2]);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SplitMix64::new(0).range(4, 4);
    }

    #[test]
    fn direct_access_forwards_to_shared_stream() {
        let mut shared = SplitMix64::new(0);
        let expect = SplitMix64::new(0).next_u64();
        let mut access = RngAccess::direct(&mut shared);
        assert_eq!(access.next_u64(), expect);
        assert_ne!(shared.state(), 0, "shared stream must have advanced");
    }

    #[test]
    fn buffered_draws_speculate_the_serial_substream() {
        let mut speculation = None;
        let mut serial = SplitMix64::new(0);
        {
            let mut access = RngAccess::buffered(0, &mut speculation);
            for _ in 0..5 {
                assert_eq!(access.next_u64(), serial.next_u64());
            }
        }
        assert_eq!(
            speculation,
            Some((0, serial.state())),
            "speculation records the substream's start and end states"
        );
    }

    #[test]
    fn buffered_untouched_rng_records_no_speculation() {
        let mut speculation = None;
        {
            let _access = RngAccess::buffered(77, &mut speculation);
        }
        assert_eq!(speculation, None, "no draws, nothing to validate");
    }

    #[test]
    fn buffered_state_read_counts_as_speculation() {
        let mut speculation = None;
        {
            let mut access = RngAccess::buffered(77, &mut speculation);
            assert_eq!(access.state(), 77);
        }
        assert_eq!(
            speculation,
            Some((77, 77)),
            "a position read is valid only if no earlier tick drew"
        );
    }

    #[test]
    fn state_round_trips_mid_stream() {
        let mut a = SplitMix64::new(0x5eed);
        for _ in 0..13 {
            a.next_u64();
        }
        let mut b = SplitMix64::new(a.state());
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
