//! Kernel error types.

use crate::link::LinkId;
use crate::time::Time;
use std::error::Error;
use std::fmt;

/// Result alias for kernel operations.
pub type SimResult<T> = Result<T, SimError>;

/// Errors reported by the simulation kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A push was attempted on a full link.
    LinkFull {
        /// The link in question.
        link: LinkId,
    },
    /// A pop or peek was attempted on a link with no deliverable payload.
    LinkEmpty {
        /// The link in question.
        link: LinkId,
    },
    /// A link id did not resolve to a registered link.
    UnknownLink {
        /// The offending id.
        link: LinkId,
    },
    /// The simulation reached the configured horizon while components were
    /// still active (deadlock or runaway workload).
    Stalled {
        /// Time at which the run gave up.
        at: Time,
        /// Names of components that still reported activity.
        busy: Vec<String>,
    },
    /// A configuration value was rejected.
    InvalidConfig {
        /// Human-readable explanation.
        reason: String,
    },
    /// A snapshot blob could not be decoded or applied.
    Snapshot {
        /// The underlying snapshot decode/validation failure.
        source: crate::snapshot::SnapshotError,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::LinkFull { link } => write!(f, "link {link:?} is full"),
            SimError::LinkEmpty { link } => {
                write!(f, "link {link:?} has no deliverable payload")
            }
            SimError::UnknownLink { link } => write!(f, "link {link:?} is not registered"),
            SimError::Stalled { at, busy } => write!(
                f,
                "simulation stalled at {at} with busy components: {}",
                busy.join(", ")
            ),
            SimError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            SimError::Snapshot { source } => write!(f, "snapshot error: {source}"),
        }
    }
}

impl From<crate::snapshot::SnapshotError> for SimError {
    fn from(source: crate::snapshot::SnapshotError) -> Self {
        SimError::Snapshot { source }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_meaningfully() {
        let e = SimError::Stalled {
            at: Time::from_ns(10),
            busy: vec!["dsp".into(), "lmi".into()],
        };
        let s = e.to_string();
        assert!(s.contains("stalled"));
        assert!(s.contains("dsp"));
        assert!(s.contains("lmi"));
        assert!(SimError::InvalidConfig {
            reason: "bad".into()
        }
        .to_string()
        .contains("bad"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
