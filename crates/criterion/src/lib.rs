//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io mirror, so the real `criterion`
//! cannot be fetched. This shim keeps the API surface the workspace's
//! benches use — [`Criterion::benchmark_group`], `sample_size`,
//! `throughput`, `bench_function`, [`criterion_group!`]/[`criterion_main!`]
//! and [`black_box`] — and implements honest (if statistically simpler)
//! wall-clock measurement: each benchmark runs a warm-up iteration and
//! `sample_size` timed samples, then reports min/mean/max and, when a
//! throughput was declared, elements per second.
//!
//! # Examples
//!
//! ```
//! use criterion::{Criterion, Throughput};
//!
//! let mut c = Criterion::default();
//! let mut group = c.benchmark_group("demo");
//! group.sample_size(5);
//! group.throughput(Throughput::Elements(1000));
//! group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
//! group.finish();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declared throughput of one benchmark, for per-element rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timer handle passed to `bench_function` closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up iteration outside the timed samples.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let summary = summarize(&b.samples);
        print!(
            "{}/{id}: {} samples, min {:?}, mean {:?}, max {:?}",
            self.name,
            b.samples.len(),
            summary.min,
            summary.mean,
            summary.max
        );
        if let Some(t) = self.throughput {
            let per_iter = match t {
                Throughput::Elements(n) | Throughput::Bytes(n) => n,
            };
            let unit = match t {
                Throughput::Elements(_) => "elem/s",
                Throughput::Bytes(_) => "B/s",
            };
            let secs = summary.mean.as_secs_f64();
            if secs > 0.0 {
                print!(", {:.3e} {unit}", per_iter as f64 / secs);
            }
        }
        println!();
        self
    }

    /// Ends the group (kept for API parity; all reporting is immediate).
    pub fn finish(&mut self) {}
}

#[derive(Debug, Clone, Copy)]
struct Summary {
    min: Duration,
    mean: Duration,
    max: Duration,
}

fn summarize(samples: &[Duration]) -> Summary {
    if samples.is_empty() {
        let zero = Duration::ZERO;
        return Summary {
            min: zero,
            mean: zero,
            max: zero,
        };
    }
    let total: Duration = samples.iter().sum();
    Summary {
        min: *samples.iter().min().expect("non-empty"),
        mean: total / samples.len() as u32,
        max: *samples.iter().max().expect("non-empty"),
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn summary_of_empty_is_zero() {
        let s = summarize(&[]);
        assert_eq!(s.mean, Duration::ZERO);
    }

    fn demo(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(benches, demo);

    #[test]
    fn macros_compose() {
        benches();
    }
}
