//! The reference MPSoC platform and its architectural variants.
//!
//! The paper's Fig. 1 platform is an STMicroelectronics consumer-electronics
//! MPSoC: IP cores grouped into functional clusters (video decrypt/decode,
//! image resizing, generic DMA, audio), an ST220 VLIW DSP behind an
//! upsize/frequency converter, a central 64-bit node, and a unified memory
//! architecture with a single off-chip DDR SDRAM behind the LMI memory
//! controller. This module rebuilds that platform and the variants the
//! paper explores:
//!
//! * **Topology**: [`Topology::Distributed`] (the multi-layer platform with
//!   cluster nodes and bridges) versus [`Topology::Collapsed`] (every actor
//!   attached to the central node — the paper's collapsed/single-layer
//!   comparison point).
//! * **Protocol**: STBus Types 1–3, AMBA AHB or AMBA AXI for every layer
//!   (bridges adapt automatically; the LMI keeps its native STBus interface
//!   and non-STBus platforms reach it through a protocol-conversion
//!   bridge).
//! * **Memory**: a 1-wait-state-class on-chip memory with a blocking
//!   single-slot interface, or the LMI controller with DDR SDRAM.

use crate::builder::{BusHandle, BusSpec, PlatformBuilder};
use crate::report::RunReport;
use mpsoc_ahb::AhbBusConfig;
use mpsoc_axi::AxiInterconnectConfig;
use mpsoc_bridge::BridgeConfig;
use mpsoc_kernel::vcd::VcdWriter;
use mpsoc_kernel::{ClockDomain, SimResult, Simulation, Time};
use mpsoc_memory::{LmiConfig, OnChipMemoryConfig};
use mpsoc_protocol::{
    AddressRange, ArbitrationPolicy, DataWidth, Packet, ProtocolKind, TlmBusConfig,
};
use mpsoc_stbus::{ChannelTopology, StbusNodeConfig};
use mpsoc_traffic::workloads::{self, MemoryWindow};
use mpsoc_traffic::{DspConfig, IptgConfig};

/// Base address of the unified memory region all traffic targets.
pub const MEM_BASE: u64 = 0x8000_0000;
/// Size of the unified memory region.
pub const MEM_LEN: u64 = 64 << 20;

/// Communication architecture organisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Every communication actor on the central node (no bridges except
    /// the DSP's width converter): the pure single-layer comparison point.
    SingleLayer,
    /// The paper's *collapsed* variant: the most heavily congested cluster
    /// (N5, the DMA/imaging cluster) is removed and its actors attached
    /// directly to the central node, while the other clusters stay behind
    /// their bridges.
    Collapsed,
    /// The full multi-layer platform: three IP clusters behind bridges
    /// plus the DSP converter, all meeting at the central node that hosts
    /// the memory interface.
    Distributed,
}

/// The memory subsystem variant.
#[derive(Debug, Clone)]
pub enum MemorySystem {
    /// On-chip shared memory with a blocking single-slot interface.
    OnChip {
        /// Wait states per data beat (1 in the paper's baseline; Fig. 4
        /// sweeps this).
        wait_states: u32,
    },
    /// The LMI controller driving off-chip DDR SDRAM.
    Lmi(LmiConfig),
    /// Two LMI controllers, each owning half of the unified memory region —
    /// the I/O-architecture optimisation the paper's guideline 4 calls for
    /// ("optimizations of the I/O architecture to remove the system
    /// bottleneck").
    DualLmi(LmiConfig),
}

/// Modelling fidelity of the interconnect layers — the platform is
/// *multi-abstraction*, like the paper's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fidelity {
    /// Cycle-accurate bus models (arbitration, channel occupancy,
    /// back-pressure). The default, used by every paper experiment.
    #[default]
    CycleAccurate,
    /// Transaction-level transports: fixed latency, no contention. Orders
    /// of magnitude cheaper to simulate; timing is approximate.
    TransactionLevel,
}

/// Which traffic mix drives the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// The consumer-electronics mix: video decode, decrypt, DMA, image
    /// resize, audio.
    Standard,
    /// Every IP runs the two-phase profile of the paper's Figure 6
    /// (intense steady regime, then lower-rate bursty regime).
    TwoPhase,
    /// The bursty posted-write mix of the paper's Figure 4 memory-speed
    /// sweep: the N5 cluster carries heavy bursts, the other clusters
    /// light probes, and aggregate demand stays below memory saturation so
    /// latency and buffering effects are visible.
    BurstyPosted,
}

/// Complete description of a platform instance.
#[derive(Debug, Clone)]
pub struct PlatformSpec {
    /// Interconnect protocol used by every bus layer.
    pub protocol: ProtocolKind,
    /// Collapsed or distributed organisation.
    pub topology: Topology,
    /// Memory subsystem.
    pub memory: MemorySystem,
    /// Traffic mix.
    pub workload: Workload,
    /// Workload size multiplier.
    pub scale: u64,
    /// Simulation seed (also diversifies generator streams).
    pub seed: u64,
    /// Whether the DSP core is instantiated.
    pub with_dsp: bool,
    /// Bridge used between cluster nodes and the central node; `None`
    /// selects GenConv (split) for STBus platforms and the lightweight
    /// blocking bridge for AHB/AXI — the paper's arrangement.
    pub cluster_bridge: Option<BridgeConfig>,
    /// Bridge in front of the LMI for non-STBus platforms; `None` selects
    /// the lightweight blocking protocol converter.
    pub memory_bridge: Option<BridgeConfig>,
    /// Outstanding-transaction budget for initiator interfaces (clamped by
    /// the protocol's capability).
    pub max_outstanding: usize,
    /// Arbitration policy for every node.
    pub arbitration: ArbitrationPolicy,
    /// Interconnect modelling fidelity.
    pub fidelity: Fidelity,
}

impl Default for PlatformSpec {
    fn default() -> Self {
        PlatformSpec {
            protocol: ProtocolKind::StbusT3,
            topology: Topology::Distributed,
            memory: MemorySystem::OnChip { wait_states: 1 },
            workload: Workload::Standard,
            scale: 1,
            seed: 0x1a7f0,
            with_dsp: true,
            cluster_bridge: None,
            memory_bridge: None,
            max_outstanding: 4,
            arbitration: ArbitrationPolicy::RoundRobin,
            fidelity: Fidelity::CycleAccurate,
        }
    }
}

impl PlatformSpec {
    fn effective_cluster_bridge(&self) -> BridgeConfig {
        self.cluster_bridge.unwrap_or_else(|| {
            if self.protocol.is_stbus() {
                BridgeConfig::genconv()
            } else {
                BridgeConfig::lightweight()
            }
        })
    }

    fn effective_memory_bridge(&self) -> BridgeConfig {
        self.memory_bridge.unwrap_or_else(BridgeConfig::lightweight)
    }
}

/// A fully wired, runnable platform instance.
pub struct Platform {
    sim: Simulation<Packet>,
    reference_clock: ClockDomain,
    bus_names: Vec<String>,
    generator_names: Vec<String>,
    lmi_names: Vec<String>,
    expected_transactions: u64,
}

impl Platform {
    pub(crate) fn from_parts(
        sim: Simulation<Packet>,
        reference_clock: ClockDomain,
        bus_names: Vec<String>,
        generator_names: Vec<String>,
        lmi_names: Vec<String>,
        expected_transactions: u64,
    ) -> Platform {
        Platform {
            sim,
            reference_clock,
            bus_names,
            generator_names,
            lmi_names,
            expected_transactions,
        }
    }

    /// The underlying simulation (fine-grain experiments step it manually).
    pub fn sim(&self) -> &Simulation<Packet> {
        &self.sim
    }

    /// Mutable access to the underlying simulation.
    pub fn sim_mut(&mut self) -> &mut Simulation<Packet> {
        &mut self.sim
    }

    /// Total transactions the configured workload will inject.
    pub fn expected_transactions(&self) -> u64 {
        self.expected_transactions
    }

    /// Transactions injected so far, summed over every traffic generator.
    /// Cheap enough to sample mid-run; stepping experiments use it to
    /// locate traffic-anchored phase boundaries.
    pub fn injected_so_far(&self) -> u64 {
        self.generator_names
            .iter()
            .map(|name| {
                self.sim
                    .stats()
                    .counter_by_name(&format!("{name}.injected"))
            })
            .sum()
    }

    /// Produces a human-readable snapshot of what is in flight right now:
    /// non-empty links with their occupancy and the components still
    /// reporting activity. The first tool to reach for when a run stalls.
    pub fn diagnose(&self) -> String {
        let mut out = String::new();
        let now = self.sim.time();
        out.push_str(&format!("diagnosis at {now}\n"));
        let mut any = false;
        for (_, link) in self.sim.links().iter() {
            if !link.is_empty() {
                any = true;
                out.push_str(&format!(
                    "  link {:<28} {}/{} occupied\n",
                    link.name(),
                    link.len(),
                    link.capacity()
                ));
            }
        }
        if !any {
            out.push_str("  all links drained\n");
        }
        if self.sim.is_quiescent() {
            out.push_str("  platform quiescent\n");
        }
        out
    }

    /// Arms deterministic fault injection: every component on the tick path
    /// starts probing `schedule` from a fresh stream. Arming with an
    /// all-zero-rate schedule is behaviourally identical to not arming.
    pub fn arm_faults(&mut self, schedule: mpsoc_kernel::FaultSchedule) {
        self.sim.arm_faults(schedule);
    }

    /// Fault-injection bookkeeping accumulated so far (all zeros when no
    /// schedule was armed).
    pub fn fault_counts(&self) -> mpsoc_kernel::FaultCounts {
        self.sim.fault_counts()
    }

    /// Arms the fine-grain event trace with space for `capacity` records
    /// (grants, channel transfers, FIFO transitions). Retrieve them after
    /// the run through `self.sim().stats().trace()`.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.sim.stats_mut().trace_mut().enable(capacity);
    }

    /// Runs the workload while sampling a waveform: the occupancy of every
    /// link (issue FIFOs, prefetch FIFOs, bridge FIFOs) plus the LMI
    /// interface state, sampled every `sample_period`. Returns the run
    /// report and the rendered VCD document (viewable in GTKWave).
    ///
    /// # Errors
    ///
    /// Fails like [`Platform::run_with_horizon`] if the platform stalls.
    pub fn run_with_waveform(
        &mut self,
        sample_period: Time,
        horizon: Time,
    ) -> SimResult<(RunReport, String)> {
        let mut vcd = VcdWriter::new("platform");
        let link_signals: Vec<_> = self
            .sim
            .links()
            .iter()
            .map(|(id, link)| {
                let name: String = link
                    .name()
                    .chars()
                    .map(|c| if c.is_whitespace() { '_' } else { c })
                    .collect();
                (id, vcd.add_signal(name, 16))
            })
            .collect();
        let lmi_signals: Vec<_> = self
            .lmi_names
            .iter()
            .map(|name| {
                (
                    format!("{name}.iface"),
                    vcd.add_signal(format!("{name}_state"), 2),
                )
            })
            .collect();
        let mut next_sample = Time::ZERO;
        let exec = loop {
            if self.sim.is_quiescent() && self.sim.time() > Time::ZERO {
                break self.sim.time();
            }
            match self.sim.next_edge() {
                Some(edge) if edge <= horizon => {
                    self.sim.step();
                }
                _ => {
                    return Err(mpsoc_kernel::SimError::Stalled {
                        at: self.sim.time(),
                        busy: vec!["waveform run hit the horizon".into()],
                    })
                }
            }
            let now = self.sim.time();
            if now >= next_sample {
                next_sample = now + sample_period;
                let mut values = Vec::with_capacity(link_signals.len() + lmi_signals.len());
                for (link, sig) in &link_signals {
                    values.push((*sig, self.sim.links().link(*link).len() as u64));
                }
                for (residency, sig) in &lmi_signals {
                    let state = self
                        .sim
                        .stats()
                        .residency_by_name(residency)
                        .map_or(0, |r| r.current() as u64);
                    values.push((*sig, state));
                }
                vcd.sample(now, &values);
            }
        };
        Ok((self.report_at(exec), vcd.render()))
    }

    /// Hash of the platform's structure (component roster, clock-domain
    /// buckets, link wiring) — everything a checkpoint does *not* carry.
    /// Two platforms built from the same spec share a fingerprint; restore
    /// refuses blobs whose recorded fingerprint differs. The warm-cache
    /// server keys its checkpoint cache on this.
    pub fn structural_fingerprint(&self) -> u64 {
        self.sim.structural_fingerprint()
    }

    /// Serializes the platform's complete dynamic state (timeline, link
    /// contents, every component, RNG, fault cursor, statistics) into a
    /// versioned, checksummed blob. Restore it into a *structurally
    /// identical* platform — same spec — with [`Platform::restore`].
    pub fn checkpoint(&self) -> mpsoc_kernel::SnapshotBlob {
        self.sim.checkpoint()
    }

    /// Restores state captured by [`Platform::checkpoint`]. The platform
    /// must have been built from the same spec as the checkpointed one.
    ///
    /// # Errors
    ///
    /// Fails on corrupt blobs or a structural mismatch (different spec).
    pub fn restore(&mut self, blob: &mpsoc_kernel::SnapshotBlob) -> SimResult<()> {
        self.sim.restore(blob)
    }

    /// Re-parameterises the on-chip memory's wait states at runtime, so a
    /// restored warm fork can explore a different sweep point without
    /// rebuilding. Returns `false` when the platform has no on-chip memory
    /// (e.g. an LMI memory system).
    pub fn set_memory_wait_states(&mut self, wait_states: u32) -> bool {
        match self
            .sim
            .component_any_mut("mem")
            .and_then(|c| c.downcast_mut::<mpsoc_memory::OnChipMemory>())
        {
            Some(mem) => {
                mem.set_wait_states(wait_states);
                true
            }
            None => false,
        }
    }

    /// Runs the workload to completion with a generous default horizon.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`](mpsoc_kernel::SimError::Stalled) if
    /// the platform deadlocks or the horizon is reached first.
    pub fn run(&mut self) -> SimResult<RunReport> {
        self.run_with_horizon(Time::from_ms(60))
    }

    /// Runs the workload to completion with an explicit horizon.
    ///
    /// # Errors
    ///
    /// See [`Platform::run`].
    pub fn run_with_horizon(&mut self, horizon: Time) -> SimResult<RunReport> {
        let exec = self.sim.run_to_quiescence_strict(horizon)?;
        Ok(self.report_at(exec))
    }

    /// Builds a report for the current simulation state (used by stepping
    /// experiments).
    pub fn report_at(&self, exec: Time) -> RunReport {
        let stats = self.sim.stats().report(exec);
        RunReport::from_stats(
            exec,
            self.reference_clock.period(),
            &stats,
            &self.bus_names,
            &self.generator_names,
            &self.lmi_names,
        )
    }
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("buses", &self.bus_names)
            .field("generators", &self.generator_names)
            .field("expected_transactions", &self.expected_transactions)
            .finish()
    }
}

fn bus_spec(spec: &PlatformSpec, width: DataWidth) -> BusSpec {
    if spec.fidelity == Fidelity::TransactionLevel {
        return BusSpec::Tlm(TlmBusConfig::default(), width);
    }
    match spec.protocol {
        p if p.is_stbus() => BusSpec::Stbus(StbusNodeConfig {
            protocol: p,
            width,
            arbitration: spec.arbitration,
            message_arbitration: true,
            max_outstanding: spec.max_outstanding,
            topology: ChannelTopology::SharedBus,
        }),
        ProtocolKind::Ahb => BusSpec::Ahb(AhbBusConfig {
            width,
            arbitration: spec.arbitration,
        }),
        ProtocolKind::Axi => BusSpec::Axi(AxiInterconnectConfig {
            width,
            arbitration: spec.arbitration,
            max_outstanding: spec.max_outstanding,
            in_order: false,
        }),
        _ => unreachable!("is_stbus covered above"),
    }
}

/// Adapts a generator configuration to a protocol's capabilities: clamps
/// outstanding budgets and strips posted writes where unsupported.
fn adapt_to_protocol(mut cfg: IptgConfig, protocol: ProtocolKind) -> IptgConfig {
    for agent in &mut cfg.agents {
        agent.max_outstanding = protocol.clamp_outstanding(agent.max_outstanding);
        if !protocol.supports_posted_writes() {
            agent.posted_writes = false;
        }
    }
    cfg
}

/// The IP roster: `(name, cluster index, workload constructor)`.
type IpFactory = fn(mpsoc_protocol::InitiatorId, DataWidth, MemoryWindow, u64) -> IptgConfig;

fn ip_roster(workload: Workload) -> Vec<(&'static str, usize, IpFactory)> {
    match workload {
        Workload::Standard => vec![
            ("video_dec", 0, workloads::video_decoder as IpFactory),
            ("decrypt", 0, workloads::decryptor as IpFactory),
            ("dma0", 1, workloads::dma_engine as IpFactory),
            ("dma1", 1, workloads::dma_engine as IpFactory),
            ("resizer", 1, workloads::image_resizer as IpFactory),
            ("audio", 2, workloads::audio_interface as IpFactory),
            ("ts_input", 2, workloads::two_phase_stream as IpFactory),
        ],
        Workload::TwoPhase => vec![
            ("stream0", 0, workloads::two_phase_stream as IpFactory),
            ("stream1", 0, workloads::two_phase_stream as IpFactory),
            ("stream2", 1, workloads::two_phase_stream as IpFactory),
            ("stream3", 1, workloads::two_phase_stream as IpFactory),
            ("stream4", 2, workloads::two_phase_stream as IpFactory),
            ("stream5", 2, workloads::two_phase_stream as IpFactory),
        ],
        Workload::BurstyPosted => vec![
            ("probe_n1", 0, heavy_probe_light as IpFactory),
            ("burst0", 1, heavy_probe_heavy as IpFactory),
            ("burst1", 1, heavy_probe_heavy as IpFactory),
            ("burst2", 1, heavy_probe_heavy as IpFactory),
            ("probe_n3", 2, heavy_probe_light as IpFactory),
        ],
    }
}

fn heavy_probe_heavy(
    initiator: mpsoc_protocol::InitiatorId,
    width: DataWidth,
    window: MemoryWindow,
    scale: u64,
) -> IptgConfig {
    workloads::memory_speed_probe(initiator, width, window, scale, true)
}

fn heavy_probe_light(
    initiator: mpsoc_protocol::InitiatorId,
    width: DataWidth,
    window: MemoryWindow,
    scale: u64,
) -> IptgConfig {
    workloads::memory_speed_probe(initiator, width, window, scale, false)
}

/// A user-supplied IP for [`build_platform_with_ips`]: its diagnostic
/// name, the cluster that hosts it (0 = N1 video, 1 = N5 media, 2 = N3
/// audio/IO) and its full traffic configuration.
#[derive(Debug, Clone)]
pub struct CustomIp {
    /// Diagnostic name (unique per platform).
    pub name: String,
    /// Hosting cluster index (0..=2).
    pub cluster: usize,
    /// Traffic configuration; the initiator id is overwritten with a
    /// platform-unique one at build time.
    pub config: IptgConfig,
}

/// Builds the reference topology but with a caller-supplied IP roster
/// instead of the standard consumer-electronics mix — the entry point for
/// studying *your* SoC's traffic on the paper's platform variants.
///
/// # Errors
///
/// Fails on inconsistent configuration (cluster index out of range,
/// invalid traffic profiles, overlapping routes).
pub fn build_platform_with_ips(spec: &PlatformSpec, ips: &[CustomIp]) -> SimResult<Platform> {
    for ip in ips {
        if ip.cluster > 2 {
            return Err(mpsoc_kernel::SimError::InvalidConfig {
                reason: format!(
                    "IP '{}' names cluster {} (0..=2 exist)",
                    ip.name, ip.cluster
                ),
            });
        }
    }
    build_platform_inner(spec, Some(ips))
}

/// Builds a platform instance from a spec.
///
/// # Errors
///
/// Fails on inconsistent configuration (overlapping routes, invalid
/// traffic profiles).
pub fn build_platform(spec: &PlatformSpec) -> SimResult<Platform> {
    build_platform_inner(spec, None)
}

fn build_platform_inner(spec: &PlatformSpec, custom: Option<&[CustomIp]>) -> SimResult<Platform> {
    let central_clk = ClockDomain::from_mhz(250);
    let cluster_clks = [
        ClockDomain::from_mhz(200),
        ClockDomain::from_mhz(200),
        ClockDomain::from_mhz(133),
    ];
    let lmi_clk = ClockDomain::from_mhz(200);
    let dsp_clk = ClockDomain::from_mhz(400);
    let width = DataWidth::BITS64;
    let mem_range = AddressRange::new(MEM_BASE, MEM_BASE + MEM_LEN);
    let window = MemoryWindow {
        base: MEM_BASE,
        len: MEM_LEN,
    };

    let mut b = PlatformBuilder::new(spec.seed);
    let central = b.add_bus("n8", bus_spec(spec, width), central_clk);

    // Memory subsystem.
    match &spec.memory {
        MemorySystem::OnChip { wait_states } => {
            b.add_on_chip_memory(
                central,
                "mem",
                OnChipMemoryConfig {
                    wait_states: *wait_states,
                },
                mem_range,
            )?;
        }
        MemorySystem::Lmi(cfg) => {
            if spec.protocol.is_stbus() {
                b.add_lmi(central, "lmi", cfg.clone(), lmi_clk, mem_range)?;
            } else {
                b.add_lmi_behind_bridge(
                    central,
                    "lmi",
                    cfg.clone(),
                    lmi_clk,
                    spec.effective_memory_bridge(),
                    mem_range,
                )?;
            }
        }
        MemorySystem::DualLmi(cfg) => {
            let half = MEM_LEN / 2;
            for (idx, base) in [(0u32, MEM_BASE), (1, MEM_BASE + half)] {
                let range = AddressRange::new(base, base + half);
                let name = format!("lmi{idx}");
                if spec.protocol.is_stbus() {
                    b.add_lmi(central, &name, cfg.clone(), lmi_clk, range)?;
                } else {
                    b.add_lmi_behind_bridge(
                        central,
                        &name,
                        cfg.clone(),
                        lmi_clk,
                        spec.effective_memory_bridge(),
                        range,
                    )?;
                }
            }
        }
    }

    // Cluster nodes. The reference platform is genuinely multi-layer: the
    // N1 (video) and N5 (DMA/imaging) clusters reach the central node
    // through a shared backbone node N6, while the slower N3 cluster
    // attaches to the central node directly. The paper's *collapsed*
    // variant removes only the congested N5 cluster, attaching its actors
    // straight to the central node; the rest of the hierarchy is kept.
    let roster = ip_roster(spec.workload);
    let cluster_names = ["n1", "n5", "n3"];
    let instantiate_cluster = |idx: usize, topology: Topology| match topology {
        Topology::SingleLayer => false,
        Topology::Collapsed => idx != 1,
        Topology::Distributed => true,
    };
    let backbone = if (0..2).any(|i| instantiate_cluster(i, spec.topology)) {
        let n6 = b.add_bus("n6", bus_spec(spec, width), central_clk);
        b.add_bridge(
            "br_n6",
            spec.effective_cluster_bridge(),
            n6,
            central,
            &[mem_range],
        )?;
        Some(n6)
    } else {
        None
    };
    let mut clusters: Vec<Option<BusHandle>> = Vec::new();
    for i in 0..3 {
        if instantiate_cluster(i, spec.topology) {
            let h = b.add_bus(cluster_names[i], bus_spec(spec, width), cluster_clks[i]);
            // N1/N5 go through the backbone; N3 attaches directly.
            let uplink = if i < 2 {
                backbone.expect("backbone exists when n1/n5 do")
            } else {
                central
            };
            b.add_bridge(
                &format!("br_{}", cluster_names[i]),
                spec.effective_cluster_bridge(),
                h,
                uplink,
                &[mem_range],
            )?;
            clusters.push(Some(h));
        } else {
            clusters.push(None);
        }
    }

    // Traffic generators: the standard roster, or the caller's custom one.
    match custom {
        None => {
            for (i, (name, cluster_idx, factory)) in roster.iter().enumerate() {
                let initiator = b.alloc_initiator();
                let slice = window.slice(i as u64, 16);
                let cfg = factory(initiator, width, slice, spec.scale);
                let mut cfg = adapt_to_protocol(cfg, spec.protocol);
                cfg.seed ^= spec.seed;
                let bus = clusters[*cluster_idx].unwrap_or(central);
                b.add_iptg(bus, name, cfg, 2)?;
            }
        }
        Some(ips) => {
            for ip in ips {
                let mut cfg = adapt_to_protocol(ip.config.clone(), spec.protocol);
                cfg.initiator = b.alloc_initiator();
                cfg.seed ^= spec.seed;
                let bus = clusters[ip.cluster].unwrap_or(central);
                b.add_iptg(bus, &ip.name, cfg, 2)?;
            }
        }
    }

    // The DSP, behind its upsize/frequency converter.
    if spec.with_dsp {
        let initiator = b.alloc_initiator();
        let code = window.slice(14, 16);
        let data = window.slice(15, 16);
        let dsp_cfg = DspConfig {
            initiator,
            width: DataWidth::BITS32,
            code_base: code.base,
            code_len: 12 << 10,
            data_base: data.base,
            data_len: 512 << 10,
            locality: 0.9,
            mem_every: 4,
            instructions: 600 * spec.scale,
            posted_writebacks: spec.protocol.supports_posted_writes(),
            seed: 0xd5b ^ spec.seed,
            ..DspConfig::default()
        };
        let converter = if spec.protocol.is_stbus() {
            BridgeConfig::genconv()
        } else {
            BridgeConfig::lightweight()
        };
        b.add_dsp_with_converter(central, "dsp", dsp_cfg, dsp_clk, converter);
    }

    Ok(b.finish(central_clk))
}

/// Parameters of the single-layer experimental platform of Section 4.1.
#[derive(Debug, Clone)]
pub struct SingleLayerSpec {
    /// Interconnect protocol.
    pub protocol: ProtocolKind,
    /// Number of uniform bursty initiators.
    pub initiators: usize,
    /// Number of on-chip memory targets.
    pub targets: usize,
    /// Memory wait states per beat.
    pub wait_states: u32,
    /// Target-side prefetch-FIFO depth.
    pub prefetch_fifo: usize,
    /// Think-time range in cycles (controls offered load).
    pub think_cycles: (u64, u64),
    /// Probability a transaction is a read.
    pub read_fraction: f64,
    /// Transaction budget multiplier.
    pub scale: u64,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for SingleLayerSpec {
    fn default() -> Self {
        SingleLayerSpec {
            protocol: ProtocolKind::StbusT2,
            initiators: 8,
            targets: 4,
            wait_states: 1,
            prefetch_fifo: 1,
            think_cycles: (4, 16),
            read_fraction: 0.8,
            scale: 1,
            seed: 0x51,
        }
    }
}

/// Builds the single-layer experimental platform of Section 4.1: uniform
/// bursty initiators on one bus over one or more on-chip memories.
///
/// Used by the many-to-many and many-to-one experiments and the buffering
/// ablation.
///
/// # Errors
///
/// Fails on inconsistent configuration.
pub fn build_single_layer(spec: &SingleLayerSpec) -> SimResult<Platform> {
    let clk = ClockDomain::from_mhz(250);
    let width = DataWidth::BITS64;
    let pspec = PlatformSpec {
        protocol: spec.protocol,
        max_outstanding: 4,
        ..PlatformSpec::default()
    };
    let mut b = PlatformBuilder::new(spec.seed);
    let bus = b.add_bus("bus", bus_spec(&pspec, width), clk);

    let region = 16 << 20;
    for t in 0..spec.targets {
        let base = MEM_BASE + t as u64 * region;
        let range = AddressRange::new(base, base + region);
        let name = format!("mem{t}");
        let clock = b.bus_clock(bus);
        let iface = b.target_port(
            bus,
            &name,
            spec.prefetch_fifo,
            spec.prefetch_fifo.max(1),
            &[range],
        )?;
        b.add_component(
            Box::new(mpsoc_memory::OnChipMemory::new(
                name,
                OnChipMemoryConfig {
                    wait_states: spec.wait_states,
                },
                clock,
                iface.req,
                iface.resp,
            )),
            clock,
        );
    }

    for i in 0..spec.initiators {
        let initiator = b.alloc_initiator();
        // Spread initiators across targets round-robin so the many-to-many
        // pattern exercises parallel flows.
        let t = i % spec.targets;
        let base = MEM_BASE + t as u64 * region;
        let mut cfg = IptgConfig {
            initiator,
            width,
            seed: spec.seed ^ (0x9e37 + i as u64),
            agents: vec![mpsoc_traffic::AgentConfig {
                name: "load".into(),
                pattern: mpsoc_traffic::AddressPattern::Random { base, len: region },
                read_fraction: spec.read_fraction,
                beats_choices: vec![4, 8],
                message_len: 1,
                max_outstanding: 4,
                posted_writes: true,
                blocking: false,
                priority: 0,
                segments: vec![mpsoc_traffic::TrafficSegment {
                    transactions: 60 * spec.scale,
                    burst_len: (2, 6),
                    think_cycles: spec.think_cycles,
                }],
                start_after: None,
            }],
        };
        cfg = adapt_to_protocol(cfg, spec.protocol);
        b.add_iptg(bus, &format!("ip{i}"), cfg, 2)?;
    }
    Ok(b.finish(clk))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> PlatformSpec {
        PlatformSpec {
            scale: 1,
            ..PlatformSpec::default()
        }
    }

    #[test]
    fn collapsed_stbus_on_chip_runs() {
        let spec = PlatformSpec {
            topology: Topology::Collapsed,
            ..quick_spec()
        };
        let mut p = build_platform(&spec).expect("builds");
        let report = p.run().expect("drains");
        assert!(report.exec_time_ps > 0);
        assert!(report.injected > 100);
    }

    #[test]
    fn distributed_stbus_on_chip_runs() {
        let mut p = build_platform(&quick_spec()).expect("builds");
        let report = p.run().expect("drains");
        assert!(report.injected > 100);
    }

    #[test]
    fn ahb_platforms_run() {
        for topology in [Topology::Collapsed, Topology::Distributed] {
            let spec = PlatformSpec {
                protocol: ProtocolKind::Ahb,
                topology,
                ..quick_spec()
            };
            let mut p = build_platform(&spec).expect("builds");
            let report = p.run().expect("drains");
            assert!(report.injected > 100, "{topology:?}");
        }
    }

    #[test]
    fn axi_platforms_run() {
        for topology in [Topology::Collapsed, Topology::Distributed] {
            let spec = PlatformSpec {
                protocol: ProtocolKind::Axi,
                topology,
                ..quick_spec()
            };
            let mut p = build_platform(&spec).expect("builds");
            let report = p.run().expect("drains");
            assert!(report.injected > 100, "{topology:?}");
        }
    }

    #[test]
    fn lmi_platforms_run() {
        for protocol in [ProtocolKind::StbusT3, ProtocolKind::Axi, ProtocolKind::Ahb] {
            let spec = PlatformSpec {
                protocol,
                topology: Topology::Collapsed,
                memory: MemorySystem::Lmi(LmiConfig::default()),
                ..quick_spec()
            };
            let mut p = build_platform(&spec).expect("builds");
            let report = p.run().expect("drains");
            assert_eq!(report.lmi.len(), 1, "{protocol}");
            assert!(report.lmi[0].accesses > 0, "{protocol}");
        }
    }

    #[test]
    fn determinism_across_identical_builds() {
        let run = || {
            let mut p = build_platform(&quick_spec()).expect("builds");
            p.run().expect("drains").exec_time_ps
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn seeds_change_schedules() {
        let run = |seed: u64| {
            let spec = PlatformSpec {
                seed,
                ..quick_spec()
            };
            let mut p = build_platform(&spec).expect("builds");
            p.run().expect("drains").exec_time_ps
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn diagnose_names_occupied_links() {
        let mut p = build_platform(&quick_spec()).expect("builds");
        // Mid-run: something must be in flight.
        p.sim_mut().run_until(Time::from_us(4));
        let report = p.diagnose();
        assert!(report.contains("occupied"), "mid-run diagnosis: {report}");
        p.run().expect("drains");
        let report = p.diagnose();
        assert!(report.contains("all links drained"), "{report}");
        assert!(report.contains("quiescent"));
    }

    #[test]
    fn custom_ip_roster_builds_and_runs() {
        use mpsoc_traffic::workloads::{self, MemoryWindow};
        let window = MemoryWindow {
            base: MEM_BASE,
            len: MEM_LEN,
        };
        let ips = vec![
            CustomIp {
                name: "blitter".into(),
                cluster: 1,
                config: workloads::graphics_blitter(
                    mpsoc_protocol::InitiatorId::new(0),
                    DataWidth::BITS64,
                    window.slice(0, 4),
                    1,
                ),
            },
            CustomIp {
                name: "mac".into(),
                cluster: 2,
                config: workloads::network_mac(
                    mpsoc_protocol::InitiatorId::new(0),
                    DataWidth::BITS64,
                    window.slice(1, 4),
                    1,
                ),
            },
        ];
        let mut p = build_platform_with_ips(&quick_spec(), &ips).expect("builds");
        let report = p.run().expect("drains");
        assert!(report.generators.iter().any(|g| g.name == "blitter"));
        assert!(report.generators.iter().any(|g| g.name == "mac"));
        assert!(report.injected > 0);

        let bad = vec![CustomIp {
            name: "x".into(),
            cluster: 9,
            config: workloads::network_mac(
                mpsoc_protocol::InitiatorId::new(0),
                DataWidth::BITS64,
                window,
                1,
            ),
        }];
        assert!(build_platform_with_ips(&quick_spec(), &bad).is_err());
    }

    #[test]
    fn tracing_records_fine_grain_events() {
        use mpsoc_kernel::TraceKind;
        let mut p = build_platform(&quick_spec()).expect("builds");
        p.enable_tracing(4096);
        p.run().expect("drains");
        let trace = p.sim().stats().trace();
        assert!(!trace.is_empty(), "events must be recorded");
        let kinds: std::collections::HashSet<_> = trace.records().map(|r| r.kind).collect();
        assert!(kinds.contains(&TraceKind::Grant));
        assert!(kinds.contains(&TraceKind::Deliver));
        assert!(kinds.contains(&TraceKind::Forward));
        // A dump line mentions the central node.
        assert!(trace.dump().contains("n8"));
    }

    #[test]
    fn waveform_capture_produces_vcd() {
        let spec = PlatformSpec {
            memory: MemorySystem::Lmi(LmiConfig::default()),
            topology: Topology::SingleLayer,
            ..quick_spec()
        };
        let mut p = build_platform(&spec).expect("builds");
        let (report, vcd) = p
            .run_with_waveform(Time::from_ns(100), Time::from_ms(60))
            .expect("drains");
        assert!(report.injected > 0);
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.contains("lmi_state"));
        assert!(vcd.contains("lmi.req"), "link signals present");
        // There must be actual value changes beyond the header.
        assert!(vcd.matches('#').count() > 10, "samples recorded");
    }

    #[test]
    fn single_layer_platform_runs() {
        let spec = SingleLayerSpec {
            prefetch_fifo: 2,
            think_cycles: (0, 8),
            seed: 7,
            ..SingleLayerSpec::default()
        };
        let mut p = build_single_layer(&spec).expect("builds");
        let report = p.run().expect("drains");
        assert_eq!(report.injected, 8 * 60);
    }
}
