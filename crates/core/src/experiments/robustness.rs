//! EXP-ROB — fault injection and graceful degradation.
//!
//! The paper's platform is engineered for the *fault-free* steady state;
//! this experiment measures how the communication, memory and I/O
//! subsystems degrade when that assumption is relaxed. A deterministic
//! fault schedule (see `mpsoc_kernel::fault`) is armed on the distributed
//! STBus/LMI reference platform and swept over fault intensity × retry
//! budget. Every injected fault must be accounted for: recovered by the
//! retry/replay machinery, or abandoned with an explicit error completion —
//! never silently dropped. The zero-rate row reproduces the fault-free
//! baseline bit-for-bit, which is what makes the degradation numbers
//! trustworthy.

use super::parallel_map;
use crate::platforms::{build_platform, MemorySystem, PlatformSpec, Topology};
use mpsoc_kernel::{FaultSchedule, SimResult};
use mpsoc_memory::LmiConfig;
use mpsoc_protocol::ProtocolKind;
use std::fmt;

/// One fault-intensity × retry-budget measurement.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct RobustnessRow {
    /// Per-probe fault rate in events per million.
    pub rate_per_million: u32,
    /// Retransmission budget per transaction.
    pub retry_budget: u32,
    /// Execution time in reference-clock cycles.
    pub exec_cycles: u64,
    /// Throughput relative to the fault-free baseline (1.0 = no slowdown).
    pub relative_throughput: f64,
    /// Faults injected by the schedule.
    pub faults_injected: u64,
    /// Faults absorbed by retry/replay/degradation machinery.
    pub recovered: u64,
    /// Transactions abandoned after exhausting the retry budget.
    pub lost: u64,
    /// Retransmissions performed.
    pub retries: u64,
    /// Error completions delivered to initiators (one per lost
    /// response-expecting transaction).
    pub error_completions: u64,
    /// Times an LMI controller entered degraded (prefetch-shedding) mode.
    pub degraded_entries: u64,
    /// Mean end-to-end latency over all generators, in nanoseconds.
    pub mean_latency_ns: f64,
}

/// Result table of the robustness experiment.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Robustness {
    /// All measurements, ordered by (rate, retry budget).
    pub rows: Vec<RobustnessRow>,
}

impl Robustness {
    /// The measurement for a given fault rate and retry budget, if present.
    pub fn row(&self, rate_per_million: u32, retry_budget: u32) -> Option<&RobustnessRow> {
        self.rows
            .iter()
            .find(|r| r.rate_per_million == rate_per_million && r.retry_budget == retry_budget)
    }

    /// The fault-free baseline row.
    pub fn baseline(&self) -> Option<&RobustnessRow> {
        self.rows.iter().find(|r| r.rate_per_million == 0)
    }
}

impl fmt::Display for Robustness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXP-ROB fault injection, distributed STBus/LMI platform (degradation table)"
        )?;
        writeln!(
            f,
            "{:>7} {:>6} {:>12} {:>6} {:>7} {:>9} {:>5} {:>7} {:>6} {:>8} {:>10}",
            "rate/M",
            "budget",
            "exec cycles",
            "thru",
            "faults",
            "recovered",
            "lost",
            "retries",
            "errors",
            "degraded",
            "mean ns"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>7} {:>6} {:>12} {:>6.3} {:>7} {:>9} {:>5} {:>7} {:>6} {:>8} {:>10.1}",
                r.rate_per_million,
                r.retry_budget,
                r.exec_cycles,
                r.relative_throughput,
                r.faults_injected,
                r.recovered,
                r.lost,
                r.retries,
                r.error_completions,
                r.degraded_entries,
                r.mean_latency_ns
            )?;
        }
        Ok(())
    }
}

/// Runs the robustness sweep sequentially.
///
/// # Errors
///
/// Fails if any platform instance stalls or a fault goes unaccounted
/// (conservation violation — a model bug).
pub fn robustness(scale: u64, seed: u64) -> SimResult<Robustness> {
    robustness_with_jobs(scale, seed, 1)
}

/// Runs the robustness sweep with up to `jobs` worker threads.
///
/// Every grid cell builds its own platform with its own fault engine, so
/// the result table is identical to [`robustness`] for any `jobs`.
///
/// # Errors
///
/// Same as [`robustness`].
pub fn robustness_with_jobs(scale: u64, seed: u64, jobs: usize) -> SimResult<Robustness> {
    // Fault intensity sweep: 0 (baseline) to 5 % of probes faulting. The
    // baseline is measured once — with no faults the retry budget is dead
    // configuration and would only duplicate the row.
    let rates: [u32; 4] = [0, 2_000, 10_000, 50_000];
    let budgets: [u32; 2] = [1, 3];
    let mut grid = Vec::new();
    for &rate in &rates {
        for &budget in &budgets {
            if rate == 0 && budget != FaultSchedule::none().retry_budget {
                continue;
            }
            grid.push((rate, budget));
        }
    }
    let mut rows = parallel_map(grid, jobs, |(rate, budget)| {
        let mut platform = build_platform(&PlatformSpec {
            topology: Topology::Distributed,
            protocol: ProtocolKind::StbusT3,
            memory: MemorySystem::Lmi(LmiConfig::default()),
            scale,
            seed,
            ..PlatformSpec::default()
        })?;
        platform.arm_faults(FaultSchedule::uniform(rate, seed).with_retry_budget(budget));
        let report = platform.run()?;
        let counts = platform.fault_counts();
        if counts.unresolved() != 0 {
            return Err(mpsoc_kernel::SimError::InvalidConfig {
                reason: format!(
                    "fault conservation violated at rate {rate}: {} injected, {} recovered, {} lost",
                    counts.injected(),
                    counts.recovered,
                    counts.lost
                ),
            });
        }
        let sum_suffix = |suffix: &str| -> u64 {
            report
                .counters
                .iter()
                .filter(|(k, _)| k.ends_with(suffix))
                .map(|(_, v)| *v)
                .sum()
        };
        let completed: f64 = report.generators.iter().map(|g| g.completed as f64).sum();
        let mean_latency_ns = if completed > 0.0 {
            report
                .generators
                .iter()
                .map(|g| g.mean_latency_ns * g.completed as f64)
                .sum::<f64>()
                / completed
        } else {
            0.0
        };
        Ok(RobustnessRow {
            rate_per_million: rate,
            retry_budget: budget,
            exec_cycles: report.exec_cycles,
            relative_throughput: 0.0, // filled against the baseline below
            faults_injected: counts.injected(),
            recovered: counts.recovered,
            lost: counts.lost,
            retries: counts.retries,
            error_completions: sum_suffix(".error_responses"),
            degraded_entries: sum_suffix(".degraded_entries"),
            mean_latency_ns,
        })
    })
    .into_iter()
    .collect::<SimResult<Vec<_>>>()?;
    let baseline_cycles = rows
        .iter()
        .find(|r| r.rate_per_million == 0)
        .map(|r| r.exec_cycles)
        .unwrap_or(1);
    for row in &mut rows {
        row.relative_throughput = baseline_cycles as f64 / row.exec_cycles.max(1) as f64;
    }
    Ok(Robustness { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_reproduces_the_fault_free_baseline() {
        // An armed all-zero schedule must be behaviourally invisible: the
        // baseline row has to match an entirely un-armed run bit-for-bit.
        let result = robustness(1, 11).expect("runs");
        let baseline = result.baseline().expect("baseline measured");
        assert_eq!(baseline.faults_injected, 0);
        assert_eq!(baseline.lost, 0);
        assert!((baseline.relative_throughput - 1.0).abs() < 1e-12);

        let mut unarmed = build_platform(&PlatformSpec {
            topology: Topology::Distributed,
            protocol: ProtocolKind::StbusT3,
            memory: MemorySystem::Lmi(LmiConfig::default()),
            scale: 1,
            seed: 11,
            ..PlatformSpec::default()
        })
        .expect("builds");
        let report = unarmed.run().expect("drains");
        assert_eq!(baseline.exec_cycles, report.exec_cycles);
    }

    #[test]
    fn faults_degrade_throughput_but_conserve_transactions() {
        let result = robustness(1, 11).expect("runs");
        let stressed = result.row(50_000, 3).expect("measured");
        assert!(stressed.faults_injected > 0, "faults must fire at 5 %");
        assert_eq!(
            stressed.faults_injected,
            stressed.recovered + stressed.lost,
            "every fault accounted for"
        );
        assert!(
            stressed.relative_throughput <= 1.0 + 1e-12,
            "faults cannot speed the platform up: {}",
            stressed.relative_throughput
        );
    }

    #[test]
    fn jobs_do_not_change_the_table() {
        let seq = robustness_with_jobs(1, 11, 1).expect("runs");
        let par = robustness_with_jobs(1, 11, 4).expect("runs");
        assert_eq!(seq.to_string(), par.to_string());
    }

    #[test]
    fn bigger_retry_budget_loses_no_more_transactions() {
        let result = robustness(1, 11).expect("runs");
        let tight = result.row(10_000, 1).expect("measured");
        let roomy = result.row(10_000, 3).expect("measured");
        assert!(
            roomy.lost <= tight.lost,
            "budget 3 lost {} vs budget 1 lost {}",
            roomy.lost,
            tight.lost
        );
    }
}
