//! FIG-5 — platform instances with the LMI memory controller and off-chip
//! DDR SDRAM.
//!
//! The memory response latency is now high (11 cycles to the first read
//! data word) and the controller optimises queued transactions, so
//! interconnects are differentiated by how well they keep the LMI input
//! FIFO filled:
//!
//! * collapsed STBus needs no bridge and exploits multiple outstanding
//!   transactions — it approaches the distributed STBus platform;
//! * collapsed AXI reaches the LMI through a simple protocol converter
//!   that cannot issue split transactions, so the FIFO never holds more
//!   than one entry and every controller optimisation is lost;
//! * the distributed AHB platform is the worst, its non-split blocking
//!   bridges compounding with the higher memory latency.

use crate::platforms::{build_platform, MemorySystem, PlatformSpec, Topology};
use mpsoc_kernel::SimResult;
use mpsoc_memory::LmiConfig;
use mpsoc_protocol::ProtocolKind;
use std::fmt;

/// One bar of Figure 5.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Fig5Bar {
    /// Instance label.
    pub label: String,
    /// Execution time in central-node cycles.
    pub exec_cycles: u64,
    /// Normalised to the full STBus platform.
    pub normalized: f64,
    /// SDRAM accesses issued by the controller.
    pub lmi_accesses: u64,
    /// Transactions absorbed by opcode merging.
    pub lmi_merged: u64,
    /// Row-buffer hit fraction.
    pub row_hit_rate: f64,
}

/// The Figure 5 bar chart.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Fig5 {
    /// Bars in the paper's order.
    pub bars: Vec<Fig5Bar>,
}

impl Fig5 {
    /// Normalised execution time of a labelled instance.
    pub fn normalized(&self, label: &str) -> Option<f64> {
        self.bars
            .iter()
            .find(|b| b.label == label)
            .map(|b| b.normalized)
    }

    /// A labelled bar.
    pub fn bar(&self, label: &str) -> Option<&Fig5Bar> {
        self.bars.iter().find(|b| b.label == label)
    }
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "FIG-5 platform instances with LMI controller + DDR SDRAM"
        )?;
        for b in &self.bars {
            let hashes = "#".repeat((b.normalized * 12.0).round() as usize);
            writeln!(
                f,
                "{:<18} {:>10} cycles  {:>6.3}  merged {:>4}  row-hit {:>5.1}%  {}",
                b.label,
                b.exec_cycles,
                b.normalized,
                b.lmi_merged,
                b.row_hit_rate * 100.0,
                hashes
            )?;
        }
        Ok(())
    }
}

/// Runs Figure 5.
///
/// # Errors
///
/// Fails if any platform instance stalls (model bug).
pub fn fig5(scale: u64, seed: u64) -> SimResult<Fig5> {
    let variants: [(&str, ProtocolKind, Topology); 4] = [
        (
            "collapsed STBus",
            ProtocolKind::StbusT3,
            Topology::SingleLayer,
        ),
        ("collapsed AXI", ProtocolKind::Axi, Topology::SingleLayer),
        ("full STBus", ProtocolKind::StbusT3, Topology::Distributed),
        ("full AHB", ProtocolKind::Ahb, Topology::Distributed),
    ];
    let mut bars = Vec::new();
    for (label, protocol, topology) in variants {
        let spec = PlatformSpec {
            protocol,
            topology,
            memory: MemorySystem::Lmi(LmiConfig::default()),
            scale,
            seed,
            ..PlatformSpec::default()
        };
        let mut platform = build_platform(&spec)?;
        let report = platform.run()?;
        let lmi = report.lmi.first();
        let (accesses, merged, hit_rate) = lmi.map_or((0, 0, 0.0), |l| {
            let total = (l.row_hits + l.row_misses).max(1);
            (l.accesses, l.merged_txns, l.row_hits as f64 / total as f64)
        });
        bars.push(Fig5Bar {
            label: label.to_owned(),
            exec_cycles: report.exec_cycles,
            normalized: 0.0,
            lmi_accesses: accesses,
            lmi_merged: merged,
            row_hit_rate: hit_rate,
        });
    }
    let baseline = bars
        .iter()
        .find(|b| b.label == "full STBus")
        .map(|b| b.exec_cycles)
        .unwrap_or(1)
        .max(1);
    for b in &mut bars {
        b.normalized = b.exec_cycles as f64 / baseline as f64;
    }
    Ok(Fig5 { bars })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shape_matches_paper() {
        let fig = fig5(2, 0x0dab).expect("runs");
        let col_stbus = fig.normalized("collapsed STBus").unwrap();
        let col_axi = fig.normalized("collapsed AXI").unwrap();
        let full_ahb = fig.normalized("full AHB").unwrap();

        // Collapsed STBus approaches the distributed STBus platform.
        assert!(
            col_stbus < 1.25,
            "collapsed STBus should stay close, got {col_stbus}"
        );
        // Collapsed AXI is much worse than collapsed STBus.
        assert!(
            col_axi > col_stbus * 1.3,
            "split-less converter must hurt AXI: {col_axi} vs {col_stbus}"
        );
        // The AHB gap has grown with respect to Fig. 3.
        assert!(full_ahb > 2.0, "AHB gap grows with LMI, got {full_ahb}");
    }

    #[test]
    fn collapsed_axi_loses_controller_optimizations() {
        let fig = fig5(2, 0x0dab).expect("runs");
        let stbus = fig.bar("collapsed STBus").unwrap();
        let axi = fig.bar("collapsed AXI").unwrap();
        // The blocking converter starves the input FIFO: fewer merges.
        assert!(
            axi.lmi_merged < stbus.lmi_merged,
            "axi merged {} vs stbus merged {}",
            axi.lmi_merged,
            stbus.lmi_merged
        );
    }
}
