//! EXT-TLM — the multi-abstraction trade-off, quantified.
//!
//! The paper's virtual platform supports multiple abstraction levels so the
//! analysis can trade simulation speed against timing accuracy. This
//! extension experiment runs the same reference workload at cycle-accurate
//! and at transaction-level fidelity and reports both the predicted
//! execution time (accuracy) and the host wall-clock time (speed).
//!
//! Against the reference (memory-bound) workload the TLM estimate lands
//! within a few percent of the cycle-accurate one — an experimental echo of
//! the paper's guideline 2: with a centralized slave bottleneck the
//! interconnect detail contributes little. The divergence grows exactly
//! where guideline 1 says it should: under many-to-many contention.

use crate::platforms::{build_platform, Fidelity, PlatformSpec};
use mpsoc_kernel::SimResult;
use std::fmt;

/// One fidelity measurement.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct FidelityRow {
    /// Fidelity label.
    pub fidelity: String,
    /// Predicted platform execution time (central-node cycles).
    pub exec_cycles: u64,
    /// Host wall-clock microseconds spent simulating.
    pub wall_us: u128,
}

/// The EXT-TLM comparison.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct FidelityStudy {
    /// Cycle-accurate and transaction-level rows.
    pub rows: Vec<FidelityRow>,
    /// Timing estimation error of the TLM run versus cycle-accurate.
    pub timing_error: f64,
    /// Host-time speedup of the TLM run.
    pub speedup: f64,
}

impl fmt::Display for FidelityStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "EXT-TLM multi-abstraction speed/accuracy trade-off")?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<18} {:>10} cycles  {:>8} us host time",
                r.fidelity, r.exec_cycles, r.wall_us
            )?;
        }
        writeln!(
            f,
            "TLM timing error {:.1}%  /  host-time speedup {:.2}x",
            self.timing_error * 100.0,
            self.speedup
        )
    }
}

/// Runs EXT-TLM.
///
/// # Errors
///
/// Fails if a platform instance stalls.
pub fn fidelity_study(scale: u64, seed: u64) -> SimResult<FidelityStudy> {
    let mut rows = Vec::new();
    let mut cycles = [0u64; 2];
    let mut wall = [0u128; 2];
    for (i, (label, fidelity)) in [
        ("cycle-accurate", Fidelity::CycleAccurate),
        ("transaction-level", Fidelity::TransactionLevel),
    ]
    .into_iter()
    .enumerate()
    {
        let spec = PlatformSpec {
            fidelity,
            scale,
            seed,
            ..PlatformSpec::default()
        };
        let mut platform = build_platform(&spec)?;
        let started = std::time::Instant::now();
        let report = platform.run()?;
        wall[i] = started.elapsed().as_micros();
        cycles[i] = report.exec_cycles;
        rows.push(FidelityRow {
            fidelity: label.to_owned(),
            exec_cycles: report.exec_cycles,
            wall_us: wall[i],
        });
    }
    let timing_error = (cycles[1] as f64 - cycles[0] as f64).abs() / cycles[0].max(1) as f64;
    let speedup = wall[0] as f64 / wall[1].max(1) as f64;
    Ok(FidelityStudy {
        rows,
        timing_error,
        speedup,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tlm_tracks_cycle_accurate_timing_when_memory_bound() {
        let study = fidelity_study(2, 0x0dab).expect("runs");
        assert_eq!(study.rows.len(), 2);
        // Under the reference workload the single memory is the bottleneck,
        // so the contention-free transport should land close to the
        // cycle-accurate estimate (the paper's guideline 2/4 in disguise:
        // interconnect detail matters little against a centralized slave).
        assert!(
            study.timing_error < 0.15,
            "TLM should track the memory-bound estimate, error {}",
            study.timing_error
        );
        assert!(study.rows.iter().all(|r| r.exec_cycles > 0));
    }
}
