//! FIG-6 — fine-grain statistics at the LMI bus interface.
//!
//! The paper samples the state of the LMI input FIFO over two working
//! regimes of the application: an intense steady phase (FIFO full 47 % of
//! the time, storing 24 %, no incoming requests 29 %, almost never empty)
//! and a burstier, lower-intensity phase (full time unchanged, but the
//! FIFO is empty much more often). Repeating the measurement on the full
//! AHB platform shows the FIFO **never** full and no incoming requests
//! ~98 % of the time — proof that the interconnect, not the controller, is
//! the bottleneck there.

use crate::platforms::{build_platform, MemorySystem, PlatformSpec, Topology, Workload};
use mpsoc_kernel::{SimError, SimResult, Time};
use mpsoc_memory::LmiConfig;
use mpsoc_protocol::ProtocolKind;
use std::fmt;

/// FIFO-state residency over one phase.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Fig6Phase {
    /// Phase label.
    pub label: String,
    /// Fraction of the phase the FIFO was full.
    pub full: f64,
    /// Fraction spent storing a new request.
    pub storing: f64,
    /// Fraction with no incoming request.
    pub no_request: f64,
    /// Fraction the FIFO was completely empty.
    pub empty: f64,
}

/// The Figure 6 measurement for one platform.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Fig6Platform {
    /// Platform label (full STBus / full AHB).
    pub label: String,
    /// Per-phase residencies.
    pub phases: Vec<Fig6Phase>,
}

/// The complete Figure 6 result.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Fig6 {
    /// STBus and AHB measurements.
    pub platforms: Vec<Fig6Platform>,
}

impl Fig6 {
    /// Lookup by platform label.
    pub fn platform(&self, label: &str) -> Option<&Fig6Platform> {
        self.platforms.iter().find(|p| p.label == label)
    }
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "FIG-6 LMI bus-interface statistics (two working regimes)"
        )?;
        for p in &self.platforms {
            writeln!(f, "{}:", p.label)?;
            writeln!(
                f,
                "  {:<10} {:>7} {:>9} {:>8} {:>7}",
                "phase", "full", "storing", "no-req", "empty"
            )?;
            for ph in &p.phases {
                writeln!(
                    f,
                    "  {:<10} {:>6.1}% {:>8.1}% {:>7.1}% {:>6.1}%",
                    ph.label,
                    ph.full * 100.0,
                    ph.storing * 100.0,
                    ph.no_request * 100.0,
                    ph.empty * 100.0
                )?;
            }
        }
        Ok(())
    }
}

fn frac(deltas: &[Time], idx: usize) -> f64 {
    let total: u64 = deltas.iter().map(|t| t.as_ps()).sum();
    if total == 0 {
        0.0
    } else {
        deltas[idx].as_ps() as f64 / total as f64
    }
}

fn measure(protocol: ProtocolKind, scale: u64, seed: u64) -> SimResult<Fig6Platform> {
    let spec = PlatformSpec {
        protocol,
        topology: Topology::Distributed,
        memory: MemorySystem::Lmi(LmiConfig::default()),
        workload: Workload::TwoPhase,
        scale,
        seed,
        with_dsp: false,
        ..PlatformSpec::default()
    };
    let mut platform = build_platform(&spec)?;
    // Phase 1 of the two-phase profile has 90·scale transactions per
    // generator, phase 2 has 20·scale; six generators total.
    let phase1_budget = 6 * 90 * scale;
    let gen_names: Vec<String> = (0..6).map(|i| format!("stream{i}")).collect();

    // Step until the aggregate injection count crosses the phase boundary.
    let horizon = Time::from_ms(60);
    loop {
        let injected: u64 = gen_names
            .iter()
            .map(|n| {
                platform
                    .sim()
                    .stats()
                    .counter_by_name(&format!("{n}.injected"))
            })
            .sum();
        if injected >= phase1_budget {
            break;
        }
        if platform.sim_mut().step().is_none() || platform.sim().time() > horizon {
            return Err(SimError::Stalled {
                at: platform.sim().time(),
                busy: vec!["fig6 phase-1 boundary never reached".into()],
            });
        }
    }
    let t1 = platform.sim().time();
    let stats = platform.sim().stats();
    let iface1 = stats
        .residency_by_name("lmi.iface")
        .expect("lmi registered")
        .totals(t1);
    let empty1 = stats
        .residency_by_name("lmi.empty")
        .expect("lmi registered")
        .totals(t1);

    // Run the remaining (bursty) phase to completion.
    let end = platform.sim_mut().run_to_quiescence_strict(horizon)?;
    let stats = platform.sim().stats();
    let iface2 = stats
        .residency_by_name("lmi.iface")
        .expect("lmi registered")
        .totals(end);
    let empty2 = stats
        .residency_by_name("lmi.empty")
        .expect("lmi registered")
        .totals(end);

    let diff = |a: &[Time], b: &[Time]| -> Vec<Time> {
        b.iter().zip(a).map(|(x, y)| x.saturating_sub(*y)).collect()
    };
    let iface_d = diff(&iface1, &iface2);
    let empty_d = diff(&empty1, &empty2);

    // State order in the LMI residency: no_request, storing, full.
    let phase = |label: &str, iface: &[Time], empty: &[Time]| Fig6Phase {
        label: label.to_owned(),
        no_request: frac(iface, 0),
        storing: frac(iface, 1),
        full: frac(iface, 2),
        empty: frac(empty, 0),
    };
    Ok(Fig6Platform {
        label: format!("full {}", if protocol.is_stbus() { "STBus" } else { "AHB" }),
        phases: vec![
            phase("intense", &iface1, &empty1),
            phase("bursty", &iface_d, &empty_d),
        ],
    })
}

/// Runs Figure 6 for the full STBus and full AHB platforms.
///
/// # Errors
///
/// Fails if a platform stalls or the phase boundary is never reached.
pub fn fig6(scale: u64, seed: u64) -> SimResult<Fig6> {
    Ok(Fig6 {
        platforms: vec![
            measure(ProtocolKind::StbusT3, scale, seed)?,
            measure(ProtocolKind::Ahb, scale, seed)?,
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stbus_phases_show_the_papers_signature() {
        let fig = fig6(2, 0x0dab).expect("runs");
        let stbus = fig.platform("full STBus").expect("measured");
        let intense = &stbus.phases[0];
        let bursty = &stbus.phases[1];
        // The intense phase keeps the FIFO meaningfully full and rarely
        // empty; the bursty phase is empty far more often.
        assert!(
            intense.full > 0.10,
            "intense phase should fill the FIFO, full={}",
            intense.full
        );
        assert!(
            bursty.empty > intense.empty + 0.02 && bursty.empty > 3.0 * intense.empty,
            "bursty phase must be empty much more: {} vs {}",
            bursty.empty,
            intense.empty
        );
    }

    #[test]
    fn ahb_interconnect_is_the_bottleneck() {
        let fig = fig6(2, 0x0dab).expect("runs");
        let ahb = fig.platform("full AHB").expect("measured");
        for phase in &ahb.phases {
            assert!(
                phase.full < 0.02,
                "AHB can never fill the FIFO, full={}",
                phase.full
            );
        }
        let intense = &ahb.phases[0];
        assert!(
            intense.no_request > 0.8,
            "AHB starves the controller, no_request={}",
            intense.no_request
        );
    }
}
