//! Deterministic fan-out for embarrassingly parallel experiment sweeps.
//!
//! Several experiments (the FIG-4 wait-state sweep, the many-to-many
//! protocol grid) are collections of *independent* simulations: each point
//! builds its own platform from a fixed spec and seed, so the points can run
//! on worker threads without changing any result. This module provides the
//! one primitive they need: an order-preserving parallel map built on
//! `std::thread::scope` — no external dependencies, no unsafe code.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every input, using up to `jobs` worker threads, and
/// returns the outputs **in input order**.
///
/// Determinism: each input is claimed by exactly one worker via an atomic
/// index dispenser and its output is written back to the slot with the same
/// index, so the returned `Vec` is byte-for-byte the same as the sequential
/// `inputs.into_iter().map(f).collect()` for any pure `f` — only wall-clock
/// time changes with `jobs`.
///
/// With `jobs <= 1` (or a single input) no threads are spawned at all and
/// the map runs inline on the caller's thread.
///
/// # Examples
///
/// ```
/// use mpsoc_platform::experiments::parallel_map;
///
/// let squares = parallel_map(vec![1u64, 2, 3, 4], 4, |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<I, O, F>(inputs: Vec<I>, jobs: usize, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = inputs.len();
    let jobs = jobs.clamp(1, n.max(1));
    if jobs == 1 {
        return inputs.into_iter().map(f).collect();
    }

    // Work items and result slots live behind per-slot mutexes so the whole
    // thing stays safe-Rust; each slot is locked exactly twice (claim, then
    // write-back), so contention is negligible next to a simulation run.
    let tasks: Vec<Mutex<Option<I>>> = inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let slots: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let input = tasks[idx]
                    .lock()
                    .expect("task mutex poisoned")
                    .take()
                    .expect("each index is dispensed once");
                let output = f(input);
                *slots[idx].lock().expect("slot mutex poisoned") = Some(output);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot mutex poisoned")
                .expect("every slot is filled before the scope ends")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = parallel_map((0..64u64).collect(), 8, |x| x * 2);
        assert_eq!(out, (0..64u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn inline_when_single_job() {
        let out = parallel_map(vec![5u32, 6], 1, |x| x + 1);
        assert_eq!(out, vec![6, 7]);
    }

    #[test]
    fn handles_empty_input() {
        let out: Vec<u8> = parallel_map(Vec::<u8>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_jobs_than_items() {
        let out = parallel_map(vec![1u8, 2], 16, |x| x);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn matches_sequential_for_stateless_work() {
        let seq = parallel_map((0..33u64).collect(), 1, |x| x.wrapping_mul(0x9e37));
        let par = parallel_map((0..33u64).collect(), 4, |x| x.wrapping_mul(0x9e37));
        assert_eq!(seq, par);
    }
}
