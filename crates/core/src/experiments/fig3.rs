//! FIG-3 — performance of MPSoC platform instances (on-chip memory, simple
//! controller, 1 wait state).
//!
//! The paper's bars: the collapsed AXI and STBus instances are almost
//! identical (with bridges out of the picture the interconnects all hit the
//! same memory bound); the full multi-layer STBus matches the single-layer
//! STBus (outstanding-transaction support compensates the longer path);
//! the full AHB platform collapses because its non-split bridges serialise
//! every transaction; and the distributed AXI platform with lightweight
//! blocking bridges loses most of AXI's advantage.

use crate::platforms::{build_platform, MemorySystem, PlatformSpec, Topology};
use mpsoc_kernel::SimResult;
use mpsoc_protocol::ProtocolKind;
use std::fmt;

/// One bar of Figure 3.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Fig3Bar {
    /// Instance label, as in the paper.
    pub label: String,
    /// Execution time in central-node cycles.
    pub exec_cycles: u64,
    /// Normalised to the full STBus platform.
    pub normalized: f64,
}

/// The Figure 3 bar chart.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Fig3 {
    /// Bars in the paper's order.
    pub bars: Vec<Fig3Bar>,
}

impl Fig3 {
    /// Normalised execution time of a labelled instance.
    pub fn normalized(&self, label: &str) -> Option<f64> {
        self.bars
            .iter()
            .find(|b| b.label == label)
            .map(|b| b.normalized)
    }
}

impl fmt::Display for Fig3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "FIG-3 platform instances, on-chip memory (1 ws), normalized exec time"
        )?;
        for b in &self.bars {
            let hashes = "#".repeat((b.normalized * 24.0).round() as usize);
            writeln!(
                f,
                "{:<22} {:>10} cycles  {:>6.3}  {}",
                b.label, b.exec_cycles, b.normalized, hashes
            )?;
        }
        Ok(())
    }
}

/// Runs Figure 3.
///
/// # Errors
///
/// Fails if any platform instance stalls (model bug).
pub fn fig3(scale: u64, seed: u64) -> SimResult<Fig3> {
    let variants: [(&str, ProtocolKind, Topology); 6] = [
        ("collapsed AXI", ProtocolKind::Axi, Topology::SingleLayer),
        (
            "collapsed STBus",
            ProtocolKind::StbusT3,
            Topology::SingleLayer,
        ),
        (
            "single-layer STBus",
            ProtocolKind::StbusT3,
            Topology::SingleLayer,
        ),
        ("full STBus", ProtocolKind::StbusT3, Topology::Distributed),
        ("full AHB", ProtocolKind::Ahb, Topology::Distributed),
        ("distributed AXI", ProtocolKind::Axi, Topology::Distributed),
    ];
    let mut bars = Vec::new();
    for (label, protocol, topology) in variants {
        // The paper's "collapsed" bars make "the role of the bridges ...
        // negligible", i.e. they are single-layer instances; we also list
        // the single-layer STBus explicitly as its own bar (third bar of
        // the figure).
        let spec = PlatformSpec {
            protocol,
            topology,
            memory: MemorySystem::OnChip { wait_states: 1 },
            scale,
            seed,
            ..PlatformSpec::default()
        };
        let mut platform = build_platform(&spec)?;
        let report = platform.run()?;
        bars.push(Fig3Bar {
            label: label.to_owned(),
            exec_cycles: report.exec_cycles,
            normalized: 0.0,
        });
    }
    let baseline = bars
        .iter()
        .find(|b| b.label == "full STBus")
        .map(|b| b.exec_cycles)
        .unwrap_or(1)
        .max(1);
    for b in &mut bars {
        b.normalized = b.exec_cycles as f64 / baseline as f64;
    }
    Ok(Fig3 { bars })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shape_matches_paper() {
        let fig = fig3(2, 0x0dab).expect("runs");
        let collapsed_axi = fig.normalized("collapsed AXI").unwrap();
        let collapsed_stbus = fig.normalized("collapsed STBus").unwrap();
        let full_stbus = fig.normalized("full STBus").unwrap();
        let full_ahb = fig.normalized("full AHB").unwrap();
        let dist_axi = fig.normalized("distributed AXI").unwrap();
        let single = fig.normalized("single-layer STBus").unwrap();

        // Collapsed AXI ~ collapsed STBus.
        assert!(
            (collapsed_axi / collapsed_stbus - 1.0).abs() < 0.12,
            "collapsed variants nearly equal: {collapsed_axi} vs {collapsed_stbus}"
        );
        // Single-layer STBus ~ full STBus.
        assert!(
            (single / full_stbus - 1.0).abs() < 0.12,
            "single-layer vs full STBus: {single} vs {full_stbus}"
        );
        // Full AHB is clearly the worst.
        assert!(full_ahb > 1.3, "full AHB should collapse, got {full_ahb}");
        // Distributed AXI loses its advantage (between STBus and AHB,
        // clearly above the STBus instances).
        assert!(
            dist_axi > 1.1 && dist_axi < full_ahb + 0.2,
            "distributed AXI degraded by blocking bridges, got {dist_axi}"
        );
    }
}
