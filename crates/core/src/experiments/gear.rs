//! EXT-FAST — the loosely-timed fast-forward gear, quantified.
//!
//! The kernel's `Fidelity::Fast { quantum }` gear advances components in
//! multi-cycle windows with approximate (occupancy-slack) contention
//! instead of per-edge arbitration. This experiment publishes the
//! speedup-versus-error curve of that gear on the workload it was built
//! for: fig4's shared warm-up phase, which every sweep point replays
//! before diverging.
//!
//! For each quantum the fig4 warm phase (probe + prefix + checkpoint) runs
//! once in `Fast { quantum }` and the sweep is finished by cycle-accurate
//! tails forked from the warm checkpoint; the row reports the warm-phase
//! wall-clock speedup over the `Cycle` gear and the worst per-cell error
//! of the resulting table against the cycle-accurate reference. The
//! `quantum = 1` row must be byte-identical to the reference — the
//! kernel's degenerate-gear identity — and is flagged as such.

use super::fig4::{fig4_finish, fig4_warm_state, Fig4};
use mpsoc_kernel::{Fidelity, SimResult};
use std::fmt;

/// The quanta swept by [`fast_forward_study`]: the identity gear, two
/// intermediate points and the kernel's default quantum.
pub const FAST_FORWARD_QUANTA: [u64; 4] = [1, 4, 16, Fidelity::DEFAULT_QUANTUM];

/// One quantum's measurement.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct FastForwardRow {
    /// The window length, in edges of each component's own clock.
    pub quantum: u64,
    /// Wall-clock seconds of the loosely-timed warm phase.
    pub warm_seconds: f64,
    /// Cycle-gear warm seconds over this row's warm seconds.
    pub speedup: f64,
    /// Worst per-cell relative error of the finished sweep against the
    /// cycle-accurate reference, in permille.
    pub max_err_permille: u64,
    /// Whether the finished table is byte-identical to the reference
    /// (required at `quantum = 1`).
    pub identical: bool,
}

/// The EXT-FAST speedup-versus-error curve.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct FastForwardStudy {
    /// Wall-clock seconds of the cycle-gear warm phase (the reference).
    pub cycle_warm_seconds: f64,
    /// One row per entry of [`FAST_FORWARD_QUANTA`].
    pub rows: Vec<FastForwardRow>,
}

impl FastForwardStudy {
    /// The row measured at the kernel's default quantum.
    pub fn default_quantum_row(&self) -> &FastForwardRow {
        self.rows
            .iter()
            .find(|r| r.quantum == Fidelity::DEFAULT_QUANTUM)
            .expect("the default quantum is part of the sweep")
    }

    /// The `quantum = 1` identity row.
    pub fn q1_row(&self) -> &FastForwardRow {
        self.rows
            .iter()
            .find(|r| r.quantum == 1)
            .expect("quantum 1 is part of the sweep")
    }
}

impl fmt::Display for FastForwardStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXT-FAST loosely-timed fast-forward: fig4 warm phase, speedup vs error"
        )?;
        writeln!(
            f,
            "{:>8} {:>10} {:>9} {:>14} {:>10}",
            "quantum", "warm ms", "speedup", "max err (\u{2030})", "table"
        )?;
        writeln!(
            f,
            "{:>8} {:>10.2} {:>8.2}x {:>14} {:>10}",
            "cycle",
            self.cycle_warm_seconds * 1e3,
            1.0,
            "-",
            "reference"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8} {:>10.2} {:>8.2}x {:>14} {:>10}",
                r.quantum,
                r.warm_seconds * 1e3,
                r.speedup,
                r.max_err_permille,
                if r.identical { "identical" } else { "approx" }
            )?;
        }
        Ok(())
    }
}

/// Worst per-cell relative error of `fast` against `reference`, permille.
fn max_err_permille(reference: &Fig4, fast: &Fig4) -> u64 {
    let mut worst = 0.0f64;
    for (c, f) in reference.points.iter().zip(&fast.points) {
        for (a, b) in [
            (c.collapsed_cycles, f.collapsed_cycles),
            (c.distributed_cycles, f.distributed_cycles),
        ] {
            worst = worst.max(a.abs_diff(b) as f64 / a.max(1) as f64);
        }
    }
    (worst * 1000.0).round() as u64
}

/// Runs EXT-FAST: the fig4 warm phase once per gear, each finished by
/// cycle-accurate tails (`jobs` worker threads).
///
/// Only the warm phases are timed — the tails are identical work in every
/// row, and the gear only ever runs the warm region.
///
/// # Errors
///
/// Fails if a platform instance stalls.
pub fn fast_forward_study(scale: u64, seed: u64, jobs: usize) -> SimResult<FastForwardStudy> {
    let started = std::time::Instant::now();
    let cycle_state = fig4_warm_state(scale, seed, Fidelity::Cycle)?;
    let cycle_warm_seconds = started.elapsed().as_secs_f64().max(1e-9);
    let reference = fig4_finish(&cycle_state, scale, seed, jobs)?;
    let reference_table = reference.to_string();

    let mut rows = Vec::with_capacity(FAST_FORWARD_QUANTA.len());
    for quantum in FAST_FORWARD_QUANTA {
        let started = std::time::Instant::now();
        let state = fig4_warm_state(scale, seed, Fidelity::Fast { quantum })?;
        let warm_seconds = started.elapsed().as_secs_f64().max(1e-9);
        let fast = fig4_finish(&state, scale, seed, jobs)?;
        rows.push(FastForwardRow {
            quantum,
            warm_seconds,
            speedup: cycle_warm_seconds / warm_seconds,
            max_err_permille: max_err_permille(&reference, &fast),
            identical: fast.to_string() == reference_table,
        });
    }
    Ok(FastForwardStudy {
        cycle_warm_seconds,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantum_one_is_identical_and_error_grows_with_quantum() {
        let study = fast_forward_study(1, 0x0dab, 1).expect("runs");
        assert_eq!(study.rows.len(), FAST_FORWARD_QUANTA.len());
        let q1 = study.q1_row();
        assert!(q1.identical, "quantum 1 must reproduce the cycle table");
        assert_eq!(q1.max_err_permille, 0);
        // Temporal decoupling trades accuracy for speed: the documented
        // curve is monotone in error from the identity gear to the
        // default quantum.
        let errs: Vec<u64> = study.rows.iter().map(|r| r.max_err_permille).collect();
        assert!(
            errs.windows(2).all(|w| w[0] <= w[1]),
            "error should grow with the quantum: {errs:?}"
        );
        assert!(
            !study.default_quantum_row().identical,
            "the default quantum is an approximation"
        );
    }
}
