//! FIG-4 — distributed vs centralized communication architectures as a
//! function of memory speed.
//!
//! The paper sweeps the memory response latency and finds that a fast
//! memory penalises the multi-hop distributed architecture, while a slow
//! memory favours it: distributed buffering lets multiple-outstanding
//! initiator interfaces keep pushing transactions into the bus while the
//! collapsed instance's masters stall at their shallow issue FIFOs.
//!
//! The workload is the bursty, posted-write-heavy sweep mix
//! ([`Workload::BurstyPosted`](crate::Workload)) with the congested N5
//! cluster either attached locally (collapsed) or behind the two-hop
//! bridge path (distributed).

use super::parallel_map;
use crate::platforms::{build_platform, MemorySystem, Platform, PlatformSpec, Topology, Workload};
use crate::service::{self, WarmProfile};
use mpsoc_kernel::{Fidelity, SimResult, SnapshotBlob, Time};
use mpsoc_protocol::ProtocolKind;
use std::fmt;

/// Wait states of the shared warm-up phase every sweep point starts from.
/// The probe machinery (warm boundary, chunk sampling, horizon) is shared
/// with the sweep service in [`crate::service`] — fig4 *is* that sweep for
/// one fixed platform configuration.
const BASE_WS: u32 = service::BASE_WAIT_STATES;
/// The swept wait-state values. The first entry is [`BASE_WS`], the wait
/// states the shared warm prefix runs at.
const SWEEP: [u32; 6] = [1, 2, 4, 8, 16, 32];
/// Default run horizon, matching [`Platform::run`].
const HORIZON: Time = service::SERVICE_HORIZON;

/// One sweep point.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Fig4Point {
    /// Memory wait states per beat.
    pub wait_states: u32,
    /// Collapsed execution time (central-node cycles).
    pub collapsed_cycles: u64,
    /// Distributed execution time.
    pub distributed_cycles: u64,
    /// `collapsed / distributed` — above 1 means distributed wins.
    pub ratio: f64,
}

/// The Figure 4 series.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Fig4 {
    /// Sweep points in ascending wait-state order.
    pub points: Vec<Fig4Point>,
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "FIG-4 distributed vs centralized as a function of memory speed"
        )?;
        writeln!(
            f,
            "{:>4} {:>14} {:>14} {:>16}",
            "ws", "collapsed", "distributed", "col/dist ratio"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>4} {:>14} {:>14} {:>16.4}",
                p.wait_states, p.collapsed_cycles, p.distributed_cycles, p.ratio
            )?;
        }
        Ok(())
    }
}

/// The spec every sweep point starts from: memory at [`BASE_WS`]; the
/// point's own wait states are applied at the warm boundary.
fn point_spec(scale: u64, seed: u64, topology: Topology) -> PlatformSpec {
    PlatformSpec {
        protocol: ProtocolKind::StbusT3,
        topology,
        memory: MemorySystem::OnChip {
            wait_states: BASE_WS,
        },
        workload: Workload::BurstyPosted,
        scale,
        seed,
        ..PlatformSpec::default()
    }
}

/// The shared prefix of one topology's sweep: the base-run result and the
/// instant at which the sweep points diverge from it (see
/// [`service::probe_warm`], which owns the sampling machinery).
type WarmPhase = WarmProfile;

/// Runs the probe (the `ws = BASE_WS` point) and derives the warm boundary.
fn probe(scale: u64, seed: u64, topology: Topology) -> SimResult<WarmPhase> {
    probe_with(scale, seed, topology, None)
}

/// [`probe`], with the kernel gear forced to `gear` when given (instead of
/// the process-wide default the platform builder applies). See
/// [`service::probe_warm`] for the gear caveats.
fn probe_with(
    scale: u64,
    seed: u64,
    topology: Topology,
    gear: Option<Fidelity>,
) -> SimResult<WarmPhase> {
    service::probe_warm(&point_spec(scale, seed, topology), gear)
}

/// Switches `platform` (already advanced to the warm boundary) to the
/// point's wait states and finishes the run.
fn finish_point(mut platform: Platform, wait_states: u32) -> SimResult<u64> {
    assert!(
        platform.set_memory_wait_states(wait_states),
        "fig4 platforms use on-chip memory"
    );
    let exec = platform.sim_mut().run_to_quiescence_strict(HORIZON)?;
    Ok(platform.report_at(exec).exec_cycles)
}

fn assemble(warm: &[WarmPhase; 2], tails: Vec<SimResult<[u64; 2]>>) -> SimResult<Fig4> {
    let mut points = vec![Fig4Point {
        wait_states: BASE_WS,
        collapsed_cycles: warm[0].base_cycles,
        distributed_cycles: warm[1].base_cycles,
        ratio: warm[0].base_cycles as f64 / warm[1].base_cycles.max(1) as f64,
    }];
    for (ws, tail) in SWEEP[1..].iter().zip(tails) {
        let cycles = tail?;
        points.push(Fig4Point {
            wait_states: *ws,
            collapsed_cycles: cycles[0],
            distributed_cycles: cycles[1],
            ratio: cycles[0] as f64 / cycles[1].max(1) as f64,
        });
    }
    Ok(Fig4 { points })
}

/// Runs the Figure 4 sweep sequentially.
///
/// # Errors
///
/// Fails if any platform instance stalls (model bug).
pub fn fig4(scale: u64, seed: u64) -> SimResult<Fig4> {
    fig4_with_jobs(scale, seed, 1)
}

/// Runs the Figure 4 sweep with up to `jobs` worker threads.
///
/// Every point shares the same warm-up phase — the platform runs at
/// `BASE_WS` (1 ws) until the warm boundary, then switches to the point's wait
/// states — so the sweep isolates the memory-speed effect on an identical
/// in-flight state. Points are independent simulations built from the same
/// spec and seed, so the result is identical to [`fig4`] for any `jobs`;
/// only wall-clock time changes.
///
/// # Errors
///
/// Fails if any platform instance stalls (model bug).
pub fn fig4_with_jobs(scale: u64, seed: u64, jobs: usize) -> SimResult<Fig4> {
    let warm = [
        probe(scale, seed, Topology::Collapsed)?,
        probe(scale, seed, Topology::Distributed)?,
    ];
    let tails = parallel_map(SWEEP[1..].to_vec(), jobs, |ws| -> SimResult<[u64; 2]> {
        let mut cycles = [0u64; 2];
        for (i, topology) in [Topology::Collapsed, Topology::Distributed]
            .into_iter()
            .enumerate()
        {
            let mut platform = build_platform(&point_spec(scale, seed, topology))?;
            platform.sim_mut().run_until(warm[i].warm_until);
            cycles[i] = finish_point(platform, ws)?;
        }
        Ok(cycles)
    });
    assemble(&warm, tails)
}

/// Runs the Figure 4 sweep via checkpoint/fork: each topology's warm phase
/// is simulated **once**, checkpointed at the warm boundary, and every
/// sweep point restores the (reference-counted) blob into a fresh platform
/// instead of re-simulating the prefix.
///
/// The result is bit-identical to [`fig4_with_jobs`] — snapshot restore is
/// exact — only wall-clock time changes.
///
/// # Errors
///
/// Fails if any platform instance stalls (model bug).
pub fn fig4_warm_fork_with_jobs(scale: u64, seed: u64, jobs: usize) -> SimResult<Fig4> {
    let warm = [
        probe(scale, seed, Topology::Collapsed)?,
        probe(scale, seed, Topology::Distributed)?,
    ];
    let mut blobs: Vec<SnapshotBlob> = Vec::with_capacity(2);
    for (i, topology) in [Topology::Collapsed, Topology::Distributed]
        .into_iter()
        .enumerate()
    {
        let mut platform = build_platform(&point_spec(scale, seed, topology))?;
        platform.sim_mut().run_until(warm[i].warm_until);
        blobs.push(platform.checkpoint());
    }
    let tails = parallel_map(SWEEP[1..].to_vec(), jobs, |ws| -> SimResult<[u64; 2]> {
        let mut cycles = [0u64; 2];
        for (i, topology) in [Topology::Collapsed, Topology::Distributed]
            .into_iter()
            .enumerate()
        {
            let mut platform = build_platform(&point_spec(scale, seed, topology))?;
            platform.restore(&blobs[i])?;
            cycles[i] = finish_point(platform, ws)?;
        }
        Ok(cycles)
    });
    assemble(&warm, tails)
}

/// The reusable warm phase of the sweep: per-topology base-point results
/// and warm-boundary checkpoints, produced by [`fig4_warm_state`] at a
/// chosen kernel gear and consumed by [`fig4_finish`].
pub struct Fig4WarmState {
    warm: [WarmPhase; 2],
    blobs: [SnapshotBlob; 2],
}

impl Fig4WarmState {
    /// The warm boundary of each topology (collapsed, distributed).
    pub fn warm_until(&self) -> [Time; 2] {
        [self.warm[0].warm_until, self.warm[1].warm_until]
    }
}

/// Runs fig4's warm phase — the base-point probe plus the shared warm
/// prefix up to its checkpoint — with the kernel in `gear`.
///
/// The warm boundary is a quiescence-sampled chunk boundary, so in
/// `Fast { quantum }` gear it lands on the deterministic gear-shift
/// boundary: after `run_until` every clock domain's next edge is strictly
/// past it in either gear. The simulation is shifted back to
/// [`Fidelity::Cycle`] *before* the checkpoint is taken, so the blobs are
/// ordinary cycle-gear checkpoints (identical structural fingerprint) and
/// the sweep tails are always cycle-accurate continuations.
///
/// At `Fast { quantum: 1 }` the produced state is byte-identical to the
/// `Cycle` one — the kernel's degenerate-gear identity.
///
/// # Errors
///
/// Fails if a platform instance stalls (model bug).
pub fn fig4_warm_state(scale: u64, seed: u64, gear: Fidelity) -> SimResult<Fig4WarmState> {
    let warm = [
        probe_with(scale, seed, Topology::Collapsed, Some(gear))?,
        probe_with(scale, seed, Topology::Distributed, Some(gear))?,
    ];
    let mut blobs = Vec::with_capacity(2);
    for (i, topology) in [Topology::Collapsed, Topology::Distributed]
        .into_iter()
        .enumerate()
    {
        let mut platform = build_platform(&point_spec(scale, seed, topology))?;
        platform.sim_mut().set_fidelity(gear);
        platform.sim_mut().run_until(warm[i].warm_until);
        // Deterministic gear-shift: land cycle-accurate on the boundary,
        // then settle briefly before the checkpoint. The settle lets the
        // run-ahead the fast gear's occupancy slack leaves behind
        // (over-filled wires beyond strict capacity) drain back to a state
        // cycle-accurate arbitration could have produced, so the tails
        // forked from the checkpoint do not inherit an illegal backlog.
        platform.sim_mut().set_fidelity(Fidelity::Cycle);
        platform.sim_mut().run_until(warm[i].warm_until);
        blobs.push(platform.checkpoint());
    }
    Ok(Fig4WarmState {
        warm,
        blobs: blobs.try_into().expect("two topologies"),
    })
}

/// Completes the sweep cycle-accurately from a warm state: every point —
/// including the `ws = BASE_WS` base point — restores the boundary
/// checkpoint into a fresh platform and runs its own wait states to
/// quiescence, exactly like [`fig4_warm_fork_with_jobs`]'s tails.
///
/// Deriving the base cell from a cycle-accurate tail (rather than from the
/// probe's own quiescence instant) keeps a loosely-timed warm phase's
/// timing error confined to the warm region: the drain — where stretched
/// read round-trips accumulate up to a quantum of error per hop — is
/// always simulated cycle-accurately.
///
/// # Errors
///
/// Fails if a platform instance stalls (model bug).
pub fn fig4_finish(state: &Fig4WarmState, scale: u64, seed: u64, jobs: usize) -> SimResult<Fig4> {
    let tails = parallel_map(SWEEP.to_vec(), jobs, |ws| -> SimResult<[u64; 2]> {
        let mut cycles = [0u64; 2];
        for (i, topology) in [Topology::Collapsed, Topology::Distributed]
            .into_iter()
            .enumerate()
        {
            let mut platform = build_platform(&point_spec(scale, seed, topology))?;
            platform.sim_mut().set_fidelity(Fidelity::Cycle);
            platform.restore(&state.blobs[i])?;
            cycles[i] = finish_point(platform, ws)?;
        }
        Ok(cycles)
    });
    let mut points = Vec::with_capacity(SWEEP.len());
    for (ws, tail) in SWEEP.iter().zip(tails) {
        let cycles = tail?;
        points.push(Fig4Point {
            wait_states: *ws,
            collapsed_cycles: cycles[0],
            distributed_cycles: cycles[1],
            ratio: cycles[0] as f64 / cycles[1].max(1) as f64,
        });
    }
    Ok(Fig4 { points })
}

/// Runs the Figure 4 sweep with its warm phase in the loosely-timed
/// `Fast { quantum }` gear: the probe and the shared warm prefix
/// fast-forward through multi-cycle windows, gear-shift to cycle-accurate
/// at the warm boundary, and every sweep point continues cycle-accurately
/// from the boundary checkpoint.
///
/// At `quantum = 1` the result is byte-identical to
/// [`fig4_warm_fork_with_jobs`]; at larger quanta the warm phase is
/// approximate (per-hop error bounded by roughly one quantum), which
/// perturbs the table cells by a bounded amount — the `fidelity`
/// experiment publishes the measured speedup-vs-error curve.
///
/// # Errors
///
/// Fails if a platform instance stalls (model bug).
pub fn fig4_fast_warm_with_jobs(
    scale: u64,
    seed: u64,
    jobs: usize,
    quantum: u64,
) -> SimResult<Fig4> {
    let state = fig4_warm_state(
        scale,
        seed,
        Fidelity::Fast {
            quantum: quantum.max(1),
        },
    )?;
    fig4_finish(&state, scale, seed, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_gains_as_memory_slows() {
        let fig = fig4(2, 0x0dab).expect("runs");
        let first = &fig.points[0];
        let last = fig.points.last().expect("non-empty");
        // Fast memory: the two organisations are on par (the multi-hop
        // penalty is compensated, paper Fig. 3 / Fig. 4 left end).
        assert!(
            (first.ratio - 1.0).abs() < 0.05,
            "near-parity at 1 ws, got {}",
            first.ratio
        );
        // Slow memory: distributed must not lose, and the absolute gap in
        // favour of distributed must have grown.
        assert!(
            last.ratio >= 1.0,
            "distributed must win with slow memory, ratio {}",
            last.ratio
        );
        let first_gap = first.collapsed_cycles as i64 - first.distributed_cycles as i64;
        let last_gap = last.collapsed_cycles as i64 - last.distributed_cycles as i64;
        assert!(
            last_gap > first_gap,
            "the distributed advantage should grow: {first_gap} -> {last_gap}"
        );
    }

    #[test]
    fn fast_warm_quantum_one_matches_the_cold_sweep() {
        let cold = fig4(1, 0x0dab).expect("runs").to_string();
        let fast = fig4_fast_warm_with_jobs(1, 0x0dab, 1, 1)
            .expect("runs")
            .to_string();
        assert_eq!(cold, fast, "Fast {{ quantum: 1 }} warm phase must be exact");
    }

    #[test]
    fn fast_warm_default_quantum_error_is_bounded() {
        // Loosely-timed warm-up is an approximation: a read round trip
        // crosses the component ring twice, so it stretches by up to two
        // quanta, and cores fall behind by the boundary; the remaining work
        // then costs roughly the point's wait states per miss in the tail.
        // The measured per-cell error at scale 1 grows from ~0.03 (q=4)
        // through ~0.9 (q=16) to ~1.4 (q=64, the default quantum) on the
        // slowest-memory cell; 2.0 is the regression tripwire. The sweep's
        // qualitative shape must survive: distributed still wins at the
        // slow-memory end.
        let cold = fig4(1, 0x0dab).expect("runs");
        let fast = fig4_fast_warm_with_jobs(1, 0x0dab, 1, Fidelity::DEFAULT_QUANTUM).expect("runs");
        for (c, f) in cold.points.iter().zip(&fast.points) {
            assert_eq!(c.wait_states, f.wait_states);
            for (a, b) in [
                (c.collapsed_cycles, f.collapsed_cycles),
                (c.distributed_cycles, f.distributed_cycles),
            ] {
                let err = a.abs_diff(b) as f64 / a.max(1) as f64;
                assert!(
                    err < 2.0,
                    "LT-warmed cell drifted {err:.3} (ws {}): {a} vs {b}",
                    c.wait_states
                );
            }
        }
        let last = fast.points.last().expect("non-empty");
        assert!(
            last.ratio >= 1.0,
            "fast warm-up must preserve the slow-memory trend, ratio {}",
            last.ratio
        );
    }

    #[test]
    fn execution_time_scales_with_wait_states() {
        let fig = fig4(2, 0x0dab).expect("runs");
        for w in fig.points.windows(2) {
            assert!(
                w[1].distributed_cycles > w[0].distributed_cycles,
                "slower memory means longer runs"
            );
        }
    }
}
