//! FIG-4 — distributed vs centralized communication architectures as a
//! function of memory speed.
//!
//! The paper sweeps the memory response latency and finds that a fast
//! memory penalises the multi-hop distributed architecture, while a slow
//! memory favours it: distributed buffering lets multiple-outstanding
//! initiator interfaces keep pushing transactions into the bus while the
//! collapsed instance's masters stall at their shallow issue FIFOs.
//!
//! The workload is the bursty, posted-write-heavy sweep mix
//! ([`Workload::BurstyPosted`](crate::Workload)) with the congested N5
//! cluster either attached locally (collapsed) or behind the two-hop
//! bridge path (distributed).

use super::parallel_map;
use crate::platforms::{build_platform, MemorySystem, Platform, PlatformSpec, Topology, Workload};
use mpsoc_kernel::{RunOutcome, SimResult, SnapshotBlob, Time};
use mpsoc_protocol::ProtocolKind;
use std::fmt;

/// Wait states of the shared warm-up phase every sweep point starts from.
const BASE_WS: u32 = 1;
/// Fraction (permille) of the base run's **injected transactions** covered
/// by the shared warm prefix before a point switches to its own wait
/// states. Anchoring the boundary to traffic rather than execution time
/// keeps it meaningful at every scale: large runs end with a long
/// low-traffic drain tail, so a time fraction would land past all the
/// memory activity and flatten the sweep.
const WARM_PERMILLE: u64 = 980;
/// Granularity at which the probe samples injection progress. The warm
/// boundary is always a multiple of this, which keeps it a deterministic
/// function of the spec alone.
const CHUNK: Time = Time::from_us(1);
/// The swept wait-state values. The first entry must be [`BASE_WS`]: its
/// point *is* the probe run that defines the warm boundary.
const SWEEP: [u32; 6] = [1, 2, 4, 8, 16, 32];
/// Default run horizon, matching [`Platform::run`].
const HORIZON: Time = Time::from_ms(60);

/// One sweep point.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Fig4Point {
    /// Memory wait states per beat.
    pub wait_states: u32,
    /// Collapsed execution time (central-node cycles).
    pub collapsed_cycles: u64,
    /// Distributed execution time.
    pub distributed_cycles: u64,
    /// `collapsed / distributed` — above 1 means distributed wins.
    pub ratio: f64,
}

/// The Figure 4 series.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Fig4 {
    /// Sweep points in ascending wait-state order.
    pub points: Vec<Fig4Point>,
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "FIG-4 distributed vs centralized as a function of memory speed"
        )?;
        writeln!(
            f,
            "{:>4} {:>14} {:>14} {:>16}",
            "ws", "collapsed", "distributed", "col/dist ratio"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>4} {:>14} {:>14} {:>16.4}",
                p.wait_states, p.collapsed_cycles, p.distributed_cycles, p.ratio
            )?;
        }
        Ok(())
    }
}

/// The spec every sweep point starts from: memory at [`BASE_WS`]; the
/// point's own wait states are applied at the warm boundary.
fn point_spec(scale: u64, seed: u64, topology: Topology) -> PlatformSpec {
    PlatformSpec {
        protocol: ProtocolKind::StbusT3,
        topology,
        memory: MemorySystem::OnChip {
            wait_states: BASE_WS,
        },
        workload: Workload::BurstyPosted,
        scale,
        seed,
        ..PlatformSpec::default()
    }
}

/// The shared prefix of one topology's sweep: the base-run result and the
/// instant at which the sweep points diverge from it.
struct WarmPhase {
    /// Execution cycles of the straight [`BASE_WS`] run (the first point).
    base_cycles: u64,
    /// Simulation time up to which every point runs at [`BASE_WS`].
    warm_until: Time,
}

/// Runs the probe (the `ws = BASE_WS` point) and derives the warm boundary.
///
/// The base run is stepped in [`CHUNK`]-sized slices, sampling the injected
/// transaction count at every boundary; stepping a run this way is
/// bit-identical to running it uninterrupted. The warm boundary is the
/// earliest chunk boundary at which at least [`WARM_PERMILLE`] of the run's
/// total injections have happened — a deterministic instant every sweep
/// point can replay at [`BASE_WS`] before diverging.
fn probe(scale: u64, seed: u64, topology: Topology) -> SimResult<WarmPhase> {
    let mut platform = build_platform(&point_spec(scale, seed, topology))?;
    let mut samples: Vec<(Time, u64)> = Vec::new();
    let mut horizon = Time::ZERO;
    let exec = loop {
        horizon += CHUNK;
        match platform.sim_mut().run_to_quiescence(horizon) {
            RunOutcome::Quiescent { at } => break at,
            RunOutcome::HorizonReached { .. } if horizon >= HORIZON => {
                return platform
                    .sim_mut()
                    .run_to_quiescence_strict(HORIZON)
                    .map(|_| unreachable!("probe already hit the horizon"));
            }
            RunOutcome::HorizonReached { .. } => {
                samples.push((horizon, platform.injected_so_far()));
            }
        }
    };
    let total = platform.injected_so_far();
    let threshold = total * WARM_PERMILLE / 1000;
    let warm_until = samples
        .iter()
        .find(|(_, injected)| *injected >= threshold)
        .or(samples.last())
        .map_or(Time::ZERO, |(at, _)| *at);
    Ok(WarmPhase {
        base_cycles: platform.report_at(exec).exec_cycles,
        warm_until,
    })
}

/// Switches `platform` (already advanced to the warm boundary) to the
/// point's wait states and finishes the run.
fn finish_point(mut platform: Platform, wait_states: u32) -> SimResult<u64> {
    assert!(
        platform.set_memory_wait_states(wait_states),
        "fig4 platforms use on-chip memory"
    );
    let exec = platform.sim_mut().run_to_quiescence_strict(HORIZON)?;
    Ok(platform.report_at(exec).exec_cycles)
}

fn assemble(warm: &[WarmPhase; 2], tails: Vec<SimResult<[u64; 2]>>) -> SimResult<Fig4> {
    let mut points = vec![Fig4Point {
        wait_states: BASE_WS,
        collapsed_cycles: warm[0].base_cycles,
        distributed_cycles: warm[1].base_cycles,
        ratio: warm[0].base_cycles as f64 / warm[1].base_cycles.max(1) as f64,
    }];
    for (ws, tail) in SWEEP[1..].iter().zip(tails) {
        let cycles = tail?;
        points.push(Fig4Point {
            wait_states: *ws,
            collapsed_cycles: cycles[0],
            distributed_cycles: cycles[1],
            ratio: cycles[0] as f64 / cycles[1].max(1) as f64,
        });
    }
    Ok(Fig4 { points })
}

/// Runs the Figure 4 sweep sequentially.
///
/// # Errors
///
/// Fails if any platform instance stalls (model bug).
pub fn fig4(scale: u64, seed: u64) -> SimResult<Fig4> {
    fig4_with_jobs(scale, seed, 1)
}

/// Runs the Figure 4 sweep with up to `jobs` worker threads.
///
/// Every point shares the same warm-up phase — the platform runs at
/// `BASE_WS` (1 ws) until the warm boundary, then switches to the point's wait
/// states — so the sweep isolates the memory-speed effect on an identical
/// in-flight state. Points are independent simulations built from the same
/// spec and seed, so the result is identical to [`fig4`] for any `jobs`;
/// only wall-clock time changes.
///
/// # Errors
///
/// Fails if any platform instance stalls (model bug).
pub fn fig4_with_jobs(scale: u64, seed: u64, jobs: usize) -> SimResult<Fig4> {
    let warm = [
        probe(scale, seed, Topology::Collapsed)?,
        probe(scale, seed, Topology::Distributed)?,
    ];
    let tails = parallel_map(SWEEP[1..].to_vec(), jobs, |ws| -> SimResult<[u64; 2]> {
        let mut cycles = [0u64; 2];
        for (i, topology) in [Topology::Collapsed, Topology::Distributed]
            .into_iter()
            .enumerate()
        {
            let mut platform = build_platform(&point_spec(scale, seed, topology))?;
            platform.sim_mut().run_until(warm[i].warm_until);
            cycles[i] = finish_point(platform, ws)?;
        }
        Ok(cycles)
    });
    assemble(&warm, tails)
}

/// Runs the Figure 4 sweep via checkpoint/fork: each topology's warm phase
/// is simulated **once**, checkpointed at the warm boundary, and every
/// sweep point restores the (reference-counted) blob into a fresh platform
/// instead of re-simulating the prefix.
///
/// The result is bit-identical to [`fig4_with_jobs`] — snapshot restore is
/// exact — only wall-clock time changes.
///
/// # Errors
///
/// Fails if any platform instance stalls (model bug).
pub fn fig4_warm_fork_with_jobs(scale: u64, seed: u64, jobs: usize) -> SimResult<Fig4> {
    let warm = [
        probe(scale, seed, Topology::Collapsed)?,
        probe(scale, seed, Topology::Distributed)?,
    ];
    let mut blobs: Vec<SnapshotBlob> = Vec::with_capacity(2);
    for (i, topology) in [Topology::Collapsed, Topology::Distributed]
        .into_iter()
        .enumerate()
    {
        let mut platform = build_platform(&point_spec(scale, seed, topology))?;
        platform.sim_mut().run_until(warm[i].warm_until);
        blobs.push(platform.checkpoint());
    }
    let tails = parallel_map(SWEEP[1..].to_vec(), jobs, |ws| -> SimResult<[u64; 2]> {
        let mut cycles = [0u64; 2];
        for (i, topology) in [Topology::Collapsed, Topology::Distributed]
            .into_iter()
            .enumerate()
        {
            let mut platform = build_platform(&point_spec(scale, seed, topology))?;
            platform.restore(&blobs[i])?;
            cycles[i] = finish_point(platform, ws)?;
        }
        Ok(cycles)
    });
    assemble(&warm, tails)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_gains_as_memory_slows() {
        let fig = fig4(2, 0x0dab).expect("runs");
        let first = &fig.points[0];
        let last = fig.points.last().expect("non-empty");
        // Fast memory: the two organisations are on par (the multi-hop
        // penalty is compensated, paper Fig. 3 / Fig. 4 left end).
        assert!(
            (first.ratio - 1.0).abs() < 0.05,
            "near-parity at 1 ws, got {}",
            first.ratio
        );
        // Slow memory: distributed must not lose, and the absolute gap in
        // favour of distributed must have grown.
        assert!(
            last.ratio >= 1.0,
            "distributed must win with slow memory, ratio {}",
            last.ratio
        );
        let first_gap = first.collapsed_cycles as i64 - first.distributed_cycles as i64;
        let last_gap = last.collapsed_cycles as i64 - last.distributed_cycles as i64;
        assert!(
            last_gap > first_gap,
            "the distributed advantage should grow: {first_gap} -> {last_gap}"
        );
    }

    #[test]
    fn execution_time_scales_with_wait_states() {
        let fig = fig4(2, 0x0dab).expect("runs");
        for w in fig.points.windows(2) {
            assert!(
                w[1].distributed_cycles > w[0].distributed_cycles,
                "slower memory means longer runs"
            );
        }
    }
}
