//! FIG-4 — distributed vs centralized communication architectures as a
//! function of memory speed.
//!
//! The paper sweeps the memory response latency and finds that a fast
//! memory penalises the multi-hop distributed architecture, while a slow
//! memory favours it: distributed buffering lets multiple-outstanding
//! initiator interfaces keep pushing transactions into the bus while the
//! collapsed instance's masters stall at their shallow issue FIFOs.
//!
//! The workload is the bursty, posted-write-heavy sweep mix
//! ([`Workload::BurstyPosted`](crate::Workload)) with the congested N5
//! cluster either attached locally (collapsed) or behind the two-hop
//! bridge path (distributed).

use super::parallel_map;
use crate::platforms::{build_platform, MemorySystem, PlatformSpec, Topology, Workload};
use mpsoc_kernel::SimResult;
use mpsoc_protocol::ProtocolKind;
use std::fmt;

/// One sweep point.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Fig4Point {
    /// Memory wait states per beat.
    pub wait_states: u32,
    /// Collapsed execution time (central-node cycles).
    pub collapsed_cycles: u64,
    /// Distributed execution time.
    pub distributed_cycles: u64,
    /// `collapsed / distributed` — above 1 means distributed wins.
    pub ratio: f64,
}

/// The Figure 4 series.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Fig4 {
    /// Sweep points in ascending wait-state order.
    pub points: Vec<Fig4Point>,
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "FIG-4 distributed vs centralized as a function of memory speed"
        )?;
        writeln!(
            f,
            "{:>4} {:>14} {:>14} {:>16}",
            "ws", "collapsed", "distributed", "col/dist ratio"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>4} {:>14} {:>14} {:>16.4}",
                p.wait_states, p.collapsed_cycles, p.distributed_cycles, p.ratio
            )?;
        }
        Ok(())
    }
}

/// Runs the Figure 4 sweep sequentially.
///
/// # Errors
///
/// Fails if any platform instance stalls (model bug).
pub fn fig4(scale: u64, seed: u64) -> SimResult<Fig4> {
    fig4_with_jobs(scale, seed, 1)
}

/// Runs the Figure 4 sweep with up to `jobs` worker threads.
///
/// Every sweep point is an independent simulation built from the same spec
/// and seed, so the result is identical to [`fig4`] for any `jobs`; only
/// wall-clock time changes.
///
/// # Errors
///
/// Fails if any platform instance stalls (model bug).
pub fn fig4_with_jobs(scale: u64, seed: u64, jobs: usize) -> SimResult<Fig4> {
    let sweep: Vec<u32> = vec![1, 2, 4, 8, 16, 32];
    let points = parallel_map(sweep, jobs, |wait_states| -> SimResult<Fig4Point> {
        let mut cycles = [0u64; 2];
        for (i, topology) in [Topology::Collapsed, Topology::Distributed]
            .into_iter()
            .enumerate()
        {
            let spec = PlatformSpec {
                protocol: ProtocolKind::StbusT3,
                topology,
                memory: MemorySystem::OnChip { wait_states },
                workload: Workload::BurstyPosted,
                scale,
                seed,
                ..PlatformSpec::default()
            };
            let mut platform = build_platform(&spec)?;
            cycles[i] = platform.run()?.exec_cycles;
        }
        Ok(Fig4Point {
            wait_states,
            collapsed_cycles: cycles[0],
            distributed_cycles: cycles[1],
            ratio: cycles[0] as f64 / cycles[1].max(1) as f64,
        })
    })
    .into_iter()
    .collect::<SimResult<Vec<_>>>()?;
    Ok(Fig4 { points })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_gains_as_memory_slows() {
        let fig = fig4(2, 0x0dab).expect("runs");
        let first = &fig.points[0];
        let last = fig.points.last().expect("non-empty");
        // Fast memory: the two organisations are on par (the multi-hop
        // penalty is compensated, paper Fig. 3 / Fig. 4 left end).
        assert!(
            (first.ratio - 1.0).abs() < 0.05,
            "near-parity at 1 ws, got {}",
            first.ratio
        );
        // Slow memory: distributed must not lose, and the absolute gap in
        // favour of distributed must have grown.
        assert!(
            last.ratio >= 1.0,
            "distributed must win with slow memory, ratio {}",
            last.ratio
        );
        let first_gap = first.collapsed_cycles as i64 - first.distributed_cycles as i64;
        let last_gap = last.collapsed_cycles as i64 - last.distributed_cycles as i64;
        assert!(
            last_gap > first_gap,
            "the distributed advantage should grow: {first_gap} -> {last_gap}"
        );
    }

    #[test]
    fn execution_time_scales_with_wait_states() {
        let fig = fig4(2, 0x0dab).expect("runs");
        for w in fig.points.windows(2) {
            assert!(
                w[1].distributed_cycles > w[0].distributed_cycles,
                "slower memory means longer runs"
            );
        }
    }
}
