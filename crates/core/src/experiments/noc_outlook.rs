//! EXT-NOC — the guideline-5 outlook, quantified.
//!
//! The paper closes by asking whether it is "really worth increasing bridge
//! complexity, instead of keeping lightweight bridges for path segmentation
//! ... and pushing complexity at the system interconnect boundaries, which
//! is known as the network-on-chip solution". This extension experiment
//! (beyond the paper's own evaluation) runs the saturated many-to-many
//! workload of §4.1.1 on three transport fabrics of growing parallelism:
//! a shared STBus node, an STBus full crossbar, and a 3×3 mesh NoC.

use crate::platforms::MEM_BASE;
use mpsoc_kernel::{ClockDomain, SimResult, Simulation, Time};
use mpsoc_memory::{OnChipMemory, OnChipMemoryConfig};
use mpsoc_noc::{Mesh, NocConfig};
use mpsoc_protocol::{AddressRange, DataWidth, Packet, ProtocolKind};
use mpsoc_stbus::{ChannelTopology, StbusNode, StbusNodeConfig};
use mpsoc_traffic::{AddressPattern, AgentConfig, IpTrafficGenerator, IptgConfig, TrafficSegment};
use std::fmt;

/// One fabric measurement.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct NocOutlookRow {
    /// Fabric label.
    pub fabric: String,
    /// Execution time in fabric cycles (250 MHz reference).
    pub exec_cycles: u64,
    /// Normalised to the shared bus.
    pub normalized: f64,
}

/// The EXT-NOC comparison.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct NocOutlook {
    /// Rows in increasing-parallelism order.
    pub rows: Vec<NocOutlookRow>,
}

impl NocOutlook {
    /// Lookup by fabric label.
    pub fn normalized(&self, fabric: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.fabric == fabric)
            .map(|r| r.normalized)
    }
}

impl fmt::Display for NocOutlook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXT-NOC transport fabrics under saturated many-to-many traffic"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<16} {:>10} cycles  {:>6.3}",
                r.fabric, r.exec_cycles, r.normalized
            )?;
        }
        Ok(())
    }
}

const INITIATORS: usize = 8;
const TARGETS: usize = 4;
const REGION: u64 = 16 << 20;

fn workload(i: usize, scale: u64, seed: u64, width: DataWidth) -> IptgConfig {
    let t = i % TARGETS;
    let base = MEM_BASE + t as u64 * REGION;
    IptgConfig {
        initiator: mpsoc_protocol::InitiatorId::new(i as u16),
        width,
        seed: seed ^ (0x77 + i as u64),
        agents: vec![AgentConfig {
            name: "load".into(),
            pattern: AddressPattern::Random { base, len: REGION },
            read_fraction: 0.7,
            beats_choices: vec![4, 8],
            message_len: 1,
            max_outstanding: 4,
            posted_writes: true,
            blocking: false,
            priority: 0,
            segments: vec![TrafficSegment {
                transactions: 60 * scale,
                burst_len: (2, 6),
                think_cycles: (0, 4),
            }],
            start_after: None,
        }],
    }
}

fn run_stbus(topology: ChannelTopology, scale: u64, seed: u64) -> SimResult<u64> {
    let clk = ClockDomain::from_mhz(250);
    let width = DataWidth::BITS64;
    let mut sim: Simulation<Packet> = Simulation::with_seed(seed);
    let mut node = StbusNode::new(
        "fabric",
        StbusNodeConfig {
            protocol: ProtocolKind::StbusT3,
            topology,
            ..StbusNodeConfig::default()
        },
        clk,
    );
    for t in 0..TARGETS {
        let base = MEM_BASE + t as u64 * REGION;
        let req = sim
            .links_mut()
            .add_link(format!("m{t}.req"), 2, clk.period());
        let resp = sim
            .links_mut()
            .add_link(format!("m{t}.resp"), 2, clk.period());
        let port = node.add_target(req, resp);
        node.add_route(AddressRange::new(base, base + REGION), port)
            .map_err(|e| mpsoc_kernel::SimError::InvalidConfig {
                reason: e.to_string(),
            })?;
        sim.add_component(
            Box::new(OnChipMemory::new(
                format!("m{t}"),
                OnChipMemoryConfig { wait_states: 1 },
                clk,
                req,
                resp,
            )),
            clk,
        );
    }
    for i in 0..INITIATORS {
        let req = sim
            .links_mut()
            .add_link(format!("i{i}.req"), 2, clk.period());
        let resp = sim
            .links_mut()
            .add_link(format!("i{i}.resp"), 2, clk.period());
        node.add_initiator(req, resp);
        let gen =
            IpTrafficGenerator::new(format!("i{i}"), workload(i, scale, seed, width), req, resp)
                .map_err(|e| mpsoc_kernel::SimError::InvalidConfig {
                    reason: e.to_string(),
                })?;
        sim.add_component(Box::new(gen), clk);
    }
    sim.add_component(Box::new(node), clk);
    let end = sim.run_to_quiescence_strict(Time::from_ms(60))?;
    Ok(end.as_ps() / clk.period().as_ps())
}

fn run_mesh(scale: u64, seed: u64) -> SimResult<u64> {
    let clk = ClockDomain::from_mhz(250);
    let width = DataWidth::BITS64;
    let mut sim: Simulation<Packet> = Simulation::with_seed(seed);
    let mut mesh = Mesh::new(
        "noc",
        NocConfig {
            width,
            ..NocConfig::default()
        },
        clk,
        4,
        3,
    );
    // Targets in the middle row, initiators along the outer rows.
    let target_spots = [(0u32, 1u32), (1, 1), (2, 1), (3, 1)];
    for (t, (x, y)) in target_spots.iter().enumerate() {
        let base = MEM_BASE + t as u64 * REGION;
        let iface = mesh
            .attach_target(
                sim.links_mut(),
                *x,
                *y,
                AddressRange::new(base, base + REGION),
            )
            .map_err(|e| mpsoc_kernel::SimError::InvalidConfig {
                reason: e.to_string(),
            })?;
        sim.add_component(
            Box::new(OnChipMemory::new(
                format!("m{t}"),
                OnChipMemoryConfig { wait_states: 1 },
                clk,
                iface.req,
                iface.resp,
            )),
            clk,
        );
    }
    let initiator_spots = [
        (0u32, 0u32),
        (1, 0),
        (2, 0),
        (3, 0),
        (0, 2),
        (1, 2),
        (2, 2),
        (3, 2),
    ];
    for (i, (x, y)) in initiator_spots.iter().enumerate() {
        let (req, resp) = mesh
            .try_attach_initiator(sim.links_mut(), *x, *y)
            .map_err(|e| mpsoc_kernel::SimError::InvalidConfig {
                reason: e.to_string(),
            })?;
        let gen =
            IpTrafficGenerator::new(format!("i{i}"), workload(i, scale, seed, width), req, resp)
                .map_err(|e| mpsoc_kernel::SimError::InvalidConfig {
                    reason: e.to_string(),
                })?;
        sim.add_component(Box::new(gen), clk);
    }
    for router in mesh.build(sim.links_mut()) {
        sim.add_component(router, clk);
    }
    let end = sim.run_to_quiescence_strict(Time::from_ms(60))?;
    Ok(end.as_ps() / clk.period().as_ps())
}

/// Runs EXT-NOC.
///
/// # Errors
///
/// Fails if any fabric instance stalls.
pub fn noc_outlook(scale: u64, seed: u64) -> SimResult<NocOutlook> {
    let shared = run_stbus(ChannelTopology::SharedBus, scale, seed)?;
    let crossbar = run_stbus(ChannelTopology::FullCrossbar, scale, seed)?;
    let mesh = run_mesh(scale, seed)?;
    let rows = vec![
        NocOutlookRow {
            fabric: "STBus shared".into(),
            exec_cycles: shared,
            normalized: 1.0,
        },
        NocOutlookRow {
            fabric: "STBus crossbar".into(),
            exec_cycles: crossbar,
            normalized: crossbar as f64 / shared as f64,
        },
        NocOutlookRow {
            fabric: "3x4 mesh NoC".into(),
            exec_cycles: mesh,
            normalized: mesh as f64 / shared as f64,
        },
    ];
    Ok(NocOutlook { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_fabrics_beat_the_shared_bus() {
        let outlook = noc_outlook(2, 0x0dab).expect("runs");
        let crossbar = outlook.normalized("STBus crossbar").expect("row");
        let mesh = outlook.normalized("3x4 mesh NoC").expect("row");
        assert!(crossbar < 1.0, "crossbar must win: {crossbar}");
        assert!(mesh < 1.0, "the mesh must win: {mesh}");
    }
}
