//! EXP-MM — Section 4.1.1: single-layer bus, many-to-many traffic.
//!
//! Eight bursty initiators over four independent on-chip memories, with the
//! offered load swept from relaxed to saturating by shrinking the think
//! time. The paper's finding: STBus and AXI mask memory wait states by
//! processing parallel flows and perform similarly up to ~80 % utilisation,
//! above which AXI's five physical channels and cycle-granular arbitration
//! win — unless STBus is given deeper target FIFOs.

use super::parallel_map;
use crate::platforms::{build_single_layer, SingleLayerSpec};
use mpsoc_kernel::SimResult;
use mpsoc_protocol::ProtocolKind;
use std::fmt;

/// One protocol × offered-load measurement.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct ManyToManyRow {
    /// Protocol under test.
    pub protocol: String,
    /// Target-FIFO depth used.
    pub prefetch_fifo: usize,
    /// Mean think-time parameter (cycles) controlling offered load.
    pub think_cycles: u64,
    /// Execution time in bus cycles.
    pub exec_cycles: u64,
    /// Request-path utilisation of the bus.
    pub request_utilization: f64,
    /// Response-path utilisation of the bus.
    pub response_utilization: f64,
}

/// Result table of the many-to-many experiment.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct ManyToMany {
    /// All measurements.
    pub rows: Vec<ManyToManyRow>,
}

impl ManyToMany {
    /// Execution time of a given configuration, if measured.
    pub fn exec_cycles(&self, protocol: &str, think: u64, fifo: usize) -> Option<u64> {
        self.rows
            .iter()
            .find(|r| r.protocol == protocol && r.think_cycles == think && r.prefetch_fifo == fifo)
            .map(|r| r.exec_cycles)
    }
}

impl fmt::Display for ManyToMany {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXP-MM (§4.1.1) single-layer, 8 initiators x 4 memories, bursty reads"
        )?;
        writeln!(
            f,
            "{:<14} {:>5} {:>7} {:>12} {:>8} {:>8}",
            "protocol", "fifo", "think", "exec cycles", "req%", "resp%"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:>5} {:>7} {:>12} {:>7.1}% {:>7.1}%",
                r.protocol,
                r.prefetch_fifo,
                r.think_cycles,
                r.exec_cycles,
                r.request_utilization * 100.0,
                r.response_utilization * 100.0
            )?;
        }
        Ok(())
    }
}

/// Runs the many-to-many sweep sequentially.
///
/// # Errors
///
/// Fails if any platform instance stalls (model bug).
pub fn many_to_many(scale: u64, seed: u64) -> SimResult<ManyToMany> {
    many_to_many_with_jobs(scale, seed, 1)
}

/// Runs the many-to-many sweep with up to `jobs` worker threads.
///
/// Every grid cell is an independent single-layer simulation, so the result
/// table is identical to [`many_to_many`] for any `jobs`.
///
/// # Errors
///
/// Fails if any platform instance stalls (model bug).
pub fn many_to_many_with_jobs(scale: u64, seed: u64, jobs: usize) -> SimResult<ManyToMany> {
    // Offered load: high think = relaxed, zero think = saturating.
    let loads: [(u64, u64); 3] = [(600, 1000), (12, 36), (0, 4)];
    let mut grid = Vec::new();
    for protocol in [ProtocolKind::Ahb, ProtocolKind::StbusT2, ProtocolKind::Axi] {
        for &(lo, hi) in &loads {
            for fifo in [1usize, 4] {
                // The deep-FIFO variant only matters for STBus (the paper's
                // buffering counter-measure); keep the grid small elsewhere.
                if fifo > 1 && !protocol.is_stbus() {
                    continue;
                }
                grid.push((protocol, lo, hi, fifo));
            }
        }
    }
    let rows = parallel_map(grid, jobs, |(protocol, lo, hi, fifo)| {
        let mut platform = build_single_layer(&SingleLayerSpec {
            protocol,
            prefetch_fifo: fifo,
            think_cycles: (lo, hi),
            scale,
            seed,
            ..SingleLayerSpec::default()
        })?;
        let report = platform.run()?;
        let bus = &report.buses[0];
        Ok(ManyToManyRow {
            protocol: protocol.to_string(),
            prefetch_fifo: fifo,
            think_cycles: (lo + hi) / 2,
            exec_cycles: report.exec_cycles,
            request_utilization: bus.request_utilization,
            response_utilization: bus.response_utilization,
        })
    })
    .into_iter()
    .collect::<SimResult<Vec<_>>>()?;
    Ok(ManyToMany { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advanced_protocols_beat_ahb_under_saturation() {
        let result = many_to_many(2, 7).expect("runs");
        let ahb = result.exec_cycles("AMBA AHB", 2, 1).expect("measured");
        let stbus = result.exec_cycles("STBus Type 2", 2, 1).expect("measured");
        let axi = result.exec_cycles("AMBA AXI", 2, 1).expect("measured");
        // Split protocols mask wait states across parallel targets; the
        // non-split AHB cannot.
        assert!(
            stbus < ahb && axi < ahb,
            "stbus {stbus}, axi {axi}, ahb {ahb}"
        );
    }

    #[test]
    fn deeper_stbus_fifos_help_under_saturation() {
        let result = many_to_many(2, 7).expect("runs");
        let shallow = result.exec_cycles("STBus Type 2", 2, 1).expect("measured");
        let deep = result.exec_cycles("STBus Type 2", 2, 4).expect("measured");
        assert!(deep <= shallow, "deep {deep} vs shallow {shallow}");
    }

    #[test]
    fn relaxed_load_equalizes_protocols() {
        let result = many_to_many(2, 7).expect("runs");
        let ahb = result.exec_cycles("AMBA AHB", 800, 1).expect("measured");
        let axi = result.exec_cycles("AMBA AXI", 800, 1).expect("measured");
        let ratio = ahb as f64 / axi as f64;
        assert!(
            ratio < 1.15,
            "at low load the protocols should be close, ratio {ratio}"
        );
    }
}
