//! Ablation experiments for the design choices the paper calls out.

use crate::platforms::{
    build_platform, build_single_layer, MemorySystem, PlatformSpec, SingleLayerSpec, Topology,
};
use mpsoc_bridge::{BridgeConfig, ReadPolicy};
use mpsoc_kernel::SimResult;
use mpsoc_memory::LmiConfig;
use mpsoc_protocol::{ArbitrationPolicy, ProtocolKind};
use std::fmt;

/// ABL-BUF — STBus target-FIFO depth sweep under many-to-many saturation.
///
/// The paper notes STBus "bridges the performance gap by adding more
/// buffering resources at the target interfaces"; this sweep quantifies
/// that knob against the AXI reference.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct BufferingAblation {
    /// `(fifo depth, exec cycles)` for STBus.
    pub stbus: Vec<(usize, u64)>,
    /// AXI reference execution time at minimum buffering.
    pub axi_reference: u64,
}

impl fmt::Display for BufferingAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ABL-BUF STBus target-FIFO depth vs AXI (saturated many-to-many)"
        )?;
        for (depth, cycles) in &self.stbus {
            let gap = *cycles as f64 / self.axi_reference as f64;
            writeln!(
                f,
                "STBus fifo={depth:<2} {cycles:>10} cycles  ({gap:.3}x AXI @ {})",
                self.axi_reference
            )?;
        }
        Ok(())
    }
}

/// Runs ABL-BUF.
///
/// # Errors
///
/// Fails if a platform instance stalls.
pub fn buffering_ablation(scale: u64, seed: u64) -> SimResult<BufferingAblation> {
    // Saturating, write-heavy traffic: write data shares the STBus request
    // channel with read requests, which is where target-side buffering can
    // claw performance back.
    let base = SingleLayerSpec {
        think_cycles: (0, 4),
        read_fraction: 0.45,
        scale,
        seed,
        ..SingleLayerSpec::default()
    };
    let mut stbus = Vec::new();
    for depth in [1usize, 2, 4, 8] {
        let mut p = build_single_layer(&SingleLayerSpec {
            protocol: ProtocolKind::StbusT2,
            prefetch_fifo: depth,
            ..base.clone()
        })?;
        stbus.push((depth, p.run()?.exec_cycles));
    }
    let mut axi = build_single_layer(&SingleLayerSpec {
        protocol: ProtocolKind::Axi,
        ..base
    })?;
    Ok(BufferingAblation {
        stbus,
        axi_reference: axi.run()?.exec_cycles,
    })
}

/// ABL-BRG — bridge functionality in the distributed AXI platform.
///
/// Guideline 5 of the paper: protocol features are "vanished by the
/// deployment of lightweight bridges with basic functionality". This
/// ablation swaps the blocking bridges of the distributed AXI platform for
/// split-capable ones and measures the recovery.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct BridgeAblation {
    /// Execution time with blocking (lightweight) bridges.
    pub blocking_cycles: u64,
    /// Execution time with split-capable bridges.
    pub split_cycles: u64,
    /// Full STBus reference (proprietary GenConv bridges).
    pub stbus_reference: u64,
}

impl fmt::Display for BridgeAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ABL-BRG distributed AXI bridge functionality")?;
        writeln!(f, "blocking bridges   {:>10} cycles", self.blocking_cycles)?;
        writeln!(f, "split bridges      {:>10} cycles", self.split_cycles)?;
        writeln!(f, "full STBus (ref)   {:>10} cycles", self.stbus_reference)?;
        Ok(())
    }
}

/// Runs ABL-BRG.
///
/// # Errors
///
/// Fails if a platform instance stalls.
pub fn bridge_ablation(scale: u64, seed: u64) -> SimResult<BridgeAblation> {
    let base = PlatformSpec {
        protocol: ProtocolKind::Axi,
        topology: Topology::Distributed,
        memory: MemorySystem::OnChip { wait_states: 1 },
        scale,
        seed,
        ..PlatformSpec::default()
    };
    let blocking_cycles = {
        let mut p = build_platform(&base)?;
        p.run()?.exec_cycles
    };
    let split_cycles = {
        let mut split = BridgeConfig::lightweight();
        split.read_policy = ReadPolicy::Split { max_outstanding: 8 };
        split.req_fifo_depth = 4;
        split.resp_fifo_depth = 4;
        let spec = PlatformSpec {
            cluster_bridge: Some(split),
            ..base.clone()
        };
        let mut p = build_platform(&spec)?;
        p.run()?.exec_cycles
    };
    let stbus_reference = {
        let spec = PlatformSpec {
            protocol: ProtocolKind::StbusT3,
            ..base
        };
        let mut p = build_platform(&spec)?;
        p.run()?.exec_cycles
    };
    Ok(BridgeAblation {
        blocking_cycles,
        split_cycles,
        stbus_reference,
    })
}

/// ABL-LMI — the controller's optimization engine under full-platform
/// traffic: lookahead depth × opcode merging.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct LmiAblation {
    /// `(lookahead, merging, exec cycles, row-hit rate, merged txns)`.
    pub rows: Vec<LmiAblationRow>,
}

/// One configuration of the LMI ablation.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct LmiAblationRow {
    /// Lookahead window depth.
    pub lookahead: usize,
    /// Whether opcode merging is enabled.
    pub merging: bool,
    /// Execution time in central-node cycles.
    pub exec_cycles: u64,
    /// Row-buffer hit fraction.
    pub row_hit_rate: f64,
    /// Transactions absorbed by merging.
    pub merged_txns: u64,
}

impl fmt::Display for LmiAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ABL-LMI lookahead x merging under full-platform traffic")?;
        writeln!(
            f,
            "{:>9} {:>8} {:>12} {:>9} {:>7}",
            "lookahead", "merging", "exec cycles", "row-hit", "merged"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>9} {:>8} {:>12} {:>8.1}% {:>7}",
                r.lookahead,
                r.merging,
                r.exec_cycles,
                r.row_hit_rate * 100.0,
                r.merged_txns
            )?;
        }
        Ok(())
    }
}

/// Runs ABL-LMI.
///
/// # Errors
///
/// Fails if a platform instance stalls.
pub fn lmi_ablation(scale: u64, seed: u64) -> SimResult<LmiAblation> {
    let mut rows = Vec::new();
    for lookahead in [0usize, 2, 4, 8] {
        for merging in [false, true] {
            let cfg = LmiConfig {
                lookahead_depth: lookahead,
                opcode_merging: merging,
                ..LmiConfig::default()
            };
            let spec = PlatformSpec {
                protocol: ProtocolKind::StbusT3,
                topology: Topology::Distributed,
                memory: MemorySystem::Lmi(cfg),
                scale,
                seed,
                ..PlatformSpec::default()
            };
            let mut p = build_platform(&spec)?;
            let report = p.run()?;
            let lmi = report.lmi.first().expect("lmi present");
            let total = (lmi.row_hits + lmi.row_misses).max(1);
            rows.push(LmiAblationRow {
                lookahead,
                merging,
                exec_cycles: report.exec_cycles,
                row_hit_rate: lmi.row_hits as f64 / total as f64,
                merged_txns: lmi.merged_txns,
            });
        }
    }
    Ok(LmiAblation { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffering_depth_monotonically_helps() {
        let abl = buffering_ablation(2, 3).expect("runs");
        let first = abl.stbus.first().expect("rows").1;
        let last = abl.stbus.last().expect("rows").1;
        assert!(
            last <= first,
            "deeper FIFOs must not hurt: {first} -> {last}"
        );
    }

    #[test]
    fn split_bridges_recover_axi_performance() {
        let abl = bridge_ablation(2, 3).expect("runs");
        assert!(
            abl.split_cycles < abl.blocking_cycles,
            "split {} vs blocking {}",
            abl.split_cycles,
            abl.blocking_cycles
        );
    }

    #[test]
    fn arbitration_policies_all_complete() {
        let study = arbitration_study(1, 3).expect("runs");
        assert_eq!(study.rows.len(), 3);
        for row in &study.rows {
            assert!(row.exec_cycles > 0);
            assert!(row.worst_max_latency_ns > 0);
        }
    }

    #[test]
    fn lmi_optimizations_pay_off() {
        let abl = lmi_ablation(2, 3).expect("runs");
        let worst = abl
            .rows
            .iter()
            .find(|r| r.lookahead == 0 && !r.merging)
            .expect("row");
        let best = abl
            .rows
            .iter()
            .find(|r| r.lookahead == 8 && r.merging)
            .expect("row");
        assert!(
            best.exec_cycles < worst.exec_cycles,
            "optimizations must help: {} vs {}",
            best.exec_cycles,
            worst.exec_cycles
        );
        assert!(best.merged_txns > 0);
    }
}

/// ABL-ARB — arbitration-policy study on the full platform.
///
/// The paper builds on earlier arbitration-policy analyses (its reference
/// \[13\]); this ablation quantifies how the node arbitration policy
/// trades aggregate execution time against worst-case initiator latency on
/// the reference platform.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct ArbitrationStudy {
    /// One row per policy.
    pub rows: Vec<ArbitrationStudyRow>,
}

/// One arbitration-policy measurement.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct ArbitrationStudyRow {
    /// Policy name.
    pub policy: String,
    /// Execution time in central-node cycles.
    pub exec_cycles: u64,
    /// Worst per-generator mean latency (ns) — the fairness casualty.
    pub worst_mean_latency_ns: f64,
    /// Worst per-generator maximum latency (ns).
    pub worst_max_latency_ns: u64,
}

impl fmt::Display for ArbitrationStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ABL-ARB arbitration policies on the full platform")?;
        writeln!(
            f,
            "{:<16} {:>12} {:>16} {:>15}",
            "policy", "exec cycles", "worst mean (ns)", "worst max (ns)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<16} {:>12} {:>16.1} {:>15}",
                r.policy, r.exec_cycles, r.worst_mean_latency_ns, r.worst_max_latency_ns
            )?;
        }
        Ok(())
    }
}

/// Runs ABL-ARB.
///
/// # Errors
///
/// Fails if a platform instance stalls.
pub fn arbitration_study(scale: u64, seed: u64) -> SimResult<ArbitrationStudy> {
    let mut rows = Vec::new();
    for policy in [
        ArbitrationPolicy::RoundRobin,
        ArbitrationPolicy::FixedPriority,
        ArbitrationPolicy::OldestFirst,
    ] {
        let spec = PlatformSpec {
            protocol: ProtocolKind::StbusT3,
            topology: Topology::Distributed,
            memory: MemorySystem::Lmi(LmiConfig::default()),
            arbitration: policy,
            scale,
            seed,
            ..PlatformSpec::default()
        };
        let mut p = build_platform(&spec)?;
        let report = p.run()?;
        let worst_mean = report
            .generators
            .iter()
            .map(|g| g.mean_latency_ns)
            .fold(0.0f64, f64::max);
        let worst_max = report
            .generators
            .iter()
            .map(|g| g.max_latency_ns)
            .max()
            .unwrap_or(0);
        rows.push(ArbitrationStudyRow {
            policy: policy.to_string(),
            exec_cycles: report.exec_cycles,
            worst_mean_latency_ns: worst_mean,
            worst_max_latency_ns: worst_max,
        });
    }
    Ok(ArbitrationStudy { rows })
}
