//! EXT-DUAL — removing the memory bottleneck (guideline 4).
//!
//! Guideline 4 of the paper observes that once competent interconnects
//! converge on the centralized memory bottleneck, the leverage "calls for
//! optimizations of the I/O architecture to remove the system bottleneck".
//! This extension experiment does exactly that: it splits the unified
//! memory region across **two** LMI controllers and measures how much of
//! the single-channel execution time comes back, with the IP footprints
//! spread evenly across the two channels.

use crate::platforms::{
    build_platform_with_ips, CustomIp, MemorySystem, PlatformSpec, Topology, MEM_BASE, MEM_LEN,
};
use mpsoc_kernel::SimResult;
use mpsoc_memory::LmiConfig;
use mpsoc_protocol::{DataWidth, InitiatorId, ProtocolKind};
use mpsoc_traffic::workloads::{self, MemoryWindow};
use std::fmt;

/// The EXT-DUAL comparison.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct DualChannelStudy {
    /// Execution time with one LMI channel.
    pub single_cycles: u64,
    /// Execution time with two interleaved LMI channels.
    pub dual_cycles: u64,
    /// `dual / single` — below 1 means the bottleneck was removed.
    pub speed_ratio: f64,
    /// Aggregate FIFO-full fraction, single channel.
    pub single_full: f64,
    /// Worst per-channel FIFO-full fraction, dual channel.
    pub dual_full: f64,
}

impl fmt::Display for DualChannelStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "EXT-DUAL removing the memory bottleneck (guideline 4)")?;
        writeln!(
            f,
            "single LMI channel {:>10} cycles  (fifo full {:>5.1}%)",
            self.single_cycles,
            self.single_full * 100.0
        )?;
        writeln!(
            f,
            "dual LMI channels  {:>10} cycles  (worst fifo full {:>5.1}%)",
            self.dual_cycles,
            self.dual_full * 100.0
        )?;
        writeln!(f, "ratio {:.3}", self.speed_ratio)
    }
}

/// The IP roster used by the study: the standard consumer mix, with the
/// footprints alternating between the low and high memory halves so a dual
/// channel configuration can serve them in parallel.
fn roster(scale: u64) -> Vec<CustomIp> {
    let width = DataWidth::BITS64;
    let window = MemoryWindow {
        base: MEM_BASE,
        len: MEM_LEN,
    };
    // Even slice indices land in the low half, odd ones in the high half
    // (16 slices over the region; the halves split at slice 8).
    let slice = |i: u64| window.slice(i, 16);
    let id = InitiatorId::new(0); // overwritten at build time
    vec![
        CustomIp {
            name: "video_dec".into(),
            cluster: 0,
            config: workloads::video_decoder(id, width, slice(0), scale),
        },
        CustomIp {
            name: "decrypt".into(),
            cluster: 0,
            config: workloads::decryptor(id, width, slice(9), scale),
        },
        CustomIp {
            name: "dma0".into(),
            cluster: 1,
            config: workloads::dma_engine(id, width, slice(2), scale),
        },
        CustomIp {
            name: "dma1".into(),
            cluster: 1,
            config: workloads::dma_engine(id, width, slice(11), scale),
        },
        CustomIp {
            name: "resizer".into(),
            cluster: 1,
            config: workloads::image_resizer(id, width, slice(4), scale),
        },
        CustomIp {
            name: "blitter".into(),
            cluster: 2,
            config: workloads::graphics_blitter(id, width, slice(13), scale),
        },
        CustomIp {
            name: "audio".into(),
            cluster: 2,
            config: workloads::audio_interface(id, width, slice(6), scale),
        },
    ]
}

/// Runs EXT-DUAL.
///
/// # Errors
///
/// Fails if a platform instance stalls.
pub fn dual_channel_study(scale: u64, seed: u64) -> SimResult<DualChannelStudy> {
    let run = |memory: MemorySystem| -> SimResult<(u64, f64)> {
        let spec = PlatformSpec {
            protocol: ProtocolKind::StbusT3,
            topology: Topology::Distributed,
            memory,
            with_dsp: false,
            scale,
            seed,
            ..PlatformSpec::default()
        };
        let mut p = build_platform_with_ips(&spec, &roster(scale))?;
        let report = p.run()?;
        let worst_full = report.lmi.iter().map(|l| l.full).fold(0.0f64, f64::max);
        Ok((report.exec_cycles, worst_full))
    };
    let (single_cycles, single_full) = run(MemorySystem::Lmi(LmiConfig::default()))?;
    let (dual_cycles, dual_full) = run(MemorySystem::DualLmi(LmiConfig::default()))?;
    Ok(DualChannelStudy {
        single_cycles,
        dual_cycles,
        speed_ratio: dual_cycles as f64 / single_cycles.max(1) as f64,
        single_full,
        dual_full,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_channel_removes_the_bottleneck() {
        let study = dual_channel_study(2, 0x0dab).expect("runs");
        assert!(
            study.speed_ratio < 0.92,
            "a second channel must pay off, ratio {}",
            study.speed_ratio
        );
        assert!(
            study.dual_full <= study.single_full,
            "pressure per channel must drop: {} vs {}",
            study.dual_full,
            study.single_full
        );
    }
}
