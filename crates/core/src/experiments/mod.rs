//! One entry point per table and figure of the paper's evaluation.
//!
//! Every experiment returns a structured, `serde`-serialisable result that
//! also implements [`Display`](std::fmt::Display) as the table/series the
//! paper reports. The experiment index (id ↔ paper reference ↔ modules ↔
//! bench target) lives in `DESIGN.md`; measured-versus-paper values are
//! recorded in `EXPERIMENTS.md`.
//!
//! All experiments accept a `scale` (workload multiplier) and a `seed`.
//! The default scale used by the `repro` binary and the Criterion benches
//! is [`DEFAULT_SCALE`]; results are qualitatively stable from scale 2
//! upwards.

mod ablations;
mod dual_channel;
mod fidelity;
mod fig3;
mod fig4;
mod fig5;
mod fig6;
mod gear;
mod many_to_many;
mod many_to_one;
mod noc_outlook;
mod parallel;
mod robustness;

pub use ablations::{
    arbitration_study, bridge_ablation, buffering_ablation, lmi_ablation, ArbitrationStudy,
    ArbitrationStudyRow, BridgeAblation, BufferingAblation, LmiAblation,
};
pub use dual_channel::{dual_channel_study, DualChannelStudy};
pub use fidelity::{fidelity_study, FidelityRow, FidelityStudy};
pub use fig3::{fig3, Fig3, Fig3Bar};
pub use fig4::{
    fig4, fig4_fast_warm_with_jobs, fig4_finish, fig4_warm_fork_with_jobs, fig4_warm_state,
    fig4_with_jobs, Fig4, Fig4Point, Fig4WarmState,
};
pub use fig5::{fig5, Fig5, Fig5Bar};
pub use fig6::{fig6, Fig6, Fig6Phase};
pub use gear::{fast_forward_study, FastForwardRow, FastForwardStudy, FAST_FORWARD_QUANTA};
pub use many_to_many::{many_to_many, many_to_many_with_jobs, ManyToMany, ManyToManyRow};
pub use many_to_one::{many_to_one, ManyToOne, ManyToOneRow};
pub use noc_outlook::{noc_outlook, NocOutlook, NocOutlookRow};
pub use parallel::parallel_map;
pub use robustness::{robustness, robustness_with_jobs, Robustness, RobustnessRow};

/// Default workload multiplier for experiment runs.
pub const DEFAULT_SCALE: u64 = 4;

/// Default seed for experiment runs.
pub const DEFAULT_SEED: u64 = 0x0dab;
