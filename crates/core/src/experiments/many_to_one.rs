//! EXP-MO — Section 4.1.2: single-layer bus, many-to-one traffic.
//!
//! Twelve bursty initiators against one on-chip memory with 1 wait state.
//! The memory bounds the achievable response-channel efficiency at 50 %
//! (one transfer, one idle cycle); each protocol hides the handover
//! overhead by its own mechanism (early `HGRANTx`, same-cycle grant
//! propagation, burst overlapping), so the paper reports **no significant
//! performance differences** in this scenario.

use crate::platforms::{build_single_layer, SingleLayerSpec};
use mpsoc_kernel::SimResult;
use mpsoc_protocol::ProtocolKind;
use std::fmt;

/// One protocol measurement.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct ManyToOneRow {
    /// Protocol under test.
    pub protocol: String,
    /// Execution time in bus cycles.
    pub exec_cycles: u64,
    /// Execution time normalised to the fastest protocol.
    pub normalized: f64,
    /// Response-channel efficiency (data cycles / busy cycles), where the
    /// model exposes it. ~0.5 against the 1-wait-state memory.
    pub response_efficiency: Option<f64>,
}

/// Result table of the many-to-one experiment.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct ManyToOne {
    /// Per-protocol rows.
    pub rows: Vec<ManyToOneRow>,
}

impl fmt::Display for ManyToOne {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXP-MO (§4.1.2) single-layer, 12 initiators x 1 memory (1 ws)"
        )?;
        writeln!(
            f,
            "{:<14} {:>12} {:>10} {:>12}",
            "protocol", "exec cycles", "normalized", "resp-eff"
        )?;
        for r in &self.rows {
            write!(
                f,
                "{:<14} {:>12} {:>10.3}",
                r.protocol, r.exec_cycles, r.normalized
            )?;
            match r.response_efficiency {
                Some(e) => writeln!(f, " {:>11.1}%", e * 100.0)?,
                None => writeln!(f, " {:>12}", "-")?,
            }
        }
        Ok(())
    }
}

/// Runs the many-to-one comparison.
///
/// # Errors
///
/// Fails if any platform instance stalls (model bug).
pub fn many_to_one(scale: u64, seed: u64) -> SimResult<ManyToOne> {
    let mut rows = Vec::new();
    for protocol in [ProtocolKind::Ahb, ProtocolKind::StbusT2, ProtocolKind::Axi] {
        let mut platform = build_single_layer(&SingleLayerSpec {
            protocol,
            initiators: 12,
            targets: 1,
            scale,
            seed,
            ..SingleLayerSpec::default()
        })?;
        let report = platform.run()?;
        let bus = &report.buses[0];
        rows.push(ManyToOneRow {
            protocol: protocol.to_string(),
            exec_cycles: report.exec_cycles,
            normalized: 0.0,
            response_efficiency: bus.response_efficiency,
        });
    }
    let best = rows.iter().map(|r| r.exec_cycles).min().unwrap_or(1).max(1);
    for r in &mut rows {
        r.normalized = r.exec_cycles as f64 / best as f64;
    }
    Ok(ManyToOne { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocols_perform_within_a_small_band() {
        let result = many_to_one(2, 11).expect("runs");
        let worst = result
            .rows
            .iter()
            .map(|r| r.normalized)
            .fold(0.0f64, f64::max);
        assert!(
            worst < 1.25,
            "many-to-one should not differentiate protocols much, worst {worst}"
        );
    }

    #[test]
    fn response_efficiency_is_near_half() {
        let result = many_to_one(2, 11).expect("runs");
        let stbus = result
            .rows
            .iter()
            .find(|r| r.protocol.contains("STBus"))
            .expect("stbus row");
        let eff = stbus.response_efficiency.expect("stbus exposes efficiency");
        assert!(
            (0.42..=0.60).contains(&eff),
            "1 ws memory caps efficiency near 50 %, got {eff}"
        );
    }
}
