//! Low-level platform wiring.

use mpsoc_ahb::{AhbBus, AhbBusConfig};
use mpsoc_axi::{AxiInterconnect, AxiInterconnectConfig};
use mpsoc_bridge::{Bridge, BridgeConfig};
use mpsoc_kernel::{ClockDomain, Component, LinkId, SimError, SimResult, Simulation};
use mpsoc_memory::{LmiConfig, LmiController, OnChipMemory, OnChipMemoryConfig};
use mpsoc_protocol::{
    AddressRange, DataWidth, InitiatorId, Packet, ProtocolKind, TlmBus, TlmBusConfig,
};
use mpsoc_stbus::{StbusNode, StbusNodeConfig};
use mpsoc_traffic::{DspConfig, DspCore, IpTrafficGenerator, IptgConfig};

/// Which interconnect model a bus is built from.
#[derive(Debug, Clone, Copy)]
pub enum BusSpec {
    /// An STBus node.
    Stbus(StbusNodeConfig),
    /// An AMBA AHB shared bus.
    Ahb(AhbBusConfig),
    /// An AMBA AXI interconnect.
    Axi(AxiInterconnectConfig),
    /// A transaction-level transport (fast, contention-free); the
    /// [`DataWidth`] is carried alongside because the TLM bus itself is
    /// width-agnostic.
    Tlm(TlmBusConfig, DataWidth),
}

impl BusSpec {
    /// The bus data width.
    pub fn width(&self) -> DataWidth {
        match self {
            BusSpec::Stbus(c) => c.width,
            BusSpec::Ahb(c) => c.width,
            BusSpec::Axi(c) => c.width,
            BusSpec::Tlm(_, width) => *width,
        }
    }

    /// The protocol this spec models.
    pub fn protocol(&self) -> ProtocolKind {
        match self {
            BusSpec::Stbus(c) => c.protocol,
            BusSpec::Ahb(_) => ProtocolKind::Ahb,
            BusSpec::Axi(_) => ProtocolKind::Axi,
            // The TLM transport behaves like an idealised split protocol.
            BusSpec::Tlm(..) => ProtocolKind::StbusT3,
        }
    }
}

enum BusUnderConstruction {
    Stbus(StbusNode),
    Ahb(AhbBus),
    Axi(AxiInterconnect),
    Tlm(TlmBus),
}

impl BusUnderConstruction {
    fn add_initiator(&mut self, req: LinkId, resp: LinkId) -> usize {
        match self {
            BusUnderConstruction::Stbus(b) => b.add_initiator(req, resp),
            BusUnderConstruction::Ahb(b) => b.add_initiator(req, resp),
            BusUnderConstruction::Axi(b) => b.add_initiator(req, resp),
            BusUnderConstruction::Tlm(b) => b.add_initiator(req, resp),
        }
    }

    fn add_target(&mut self, req: LinkId, resp: LinkId) -> usize {
        match self {
            BusUnderConstruction::Stbus(b) => b.add_target(req, resp),
            BusUnderConstruction::Ahb(b) => b.add_target(req, resp),
            BusUnderConstruction::Axi(b) => b.add_target(req, resp),
            BusUnderConstruction::Tlm(b) => b.add_target(req, resp),
        }
    }

    fn add_route(&mut self, range: AddressRange, target: usize) -> SimResult<()> {
        let result = match self {
            BusUnderConstruction::Stbus(b) => b.add_route(range, target),
            BusUnderConstruction::Ahb(b) => b.add_route(range, target),
            BusUnderConstruction::Axi(b) => b.add_route(range, target),
            BusUnderConstruction::Tlm(b) => b.add_route(range, target),
        };
        result.map_err(|e| SimError::InvalidConfig {
            reason: e.to_string(),
        })
    }

    fn into_component(self) -> Box<dyn Component<Packet>> {
        match self {
            BusUnderConstruction::Stbus(b) => Box::new(b),
            BusUnderConstruction::Ahb(b) => Box::new(b),
            BusUnderConstruction::Axi(b) => Box::new(b),
            BusUnderConstruction::Tlm(b) => Box::new(b),
        }
    }
}

/// Handle to a bus registered with the builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusHandle(usize);

/// The link pair through which a target is attached to a bus, returned so
/// callers can attach custom target components.
#[derive(Debug, Clone, Copy)]
pub struct TargetIface {
    /// Requests flowing towards the target.
    pub req: LinkId,
    /// Responses flowing back.
    pub resp: LinkId,
}

struct BusSlot {
    bus: BusUnderConstruction,
    clock: ClockDomain,
    name: String,
}

/// Incremental constructor for a complete platform simulation.
///
/// The builder owns the link-capacity conventions of the workspace:
///
/// * initiator request links (the master's posting/issue FIFO) default to a
///   capacity of 2;
/// * target request links model the target-side *prefetch FIFO*; their
///   depth is a per-target argument (1 = the blocking single-slot interface
///   of the paper's simple memory);
/// * bridge-internal FIFO depths come from the [`BridgeConfig`].
///
/// See [`build_platform`](crate::build_platform) for the pre-assembled
/// reference platform.
pub struct PlatformBuilder {
    sim: Simulation<Packet>,
    buses: Vec<BusSlot>,
    bus_widths: Vec<DataWidth>,
    next_initiator: u16,
    generator_names: Vec<String>,
    lmi_names: Vec<String>,
    expected_transactions: u64,
}

impl PlatformBuilder {
    /// Creates a builder whose simulation RNG is seeded with `seed`.
    ///
    /// The simulation honours the process-wide execution defaults: the
    /// dense/sparse schedule and the tick-job count (see
    /// [`set_tick_jobs_default`](mpsoc_kernel::set_tick_jobs_default)).
    pub fn new(seed: u64) -> Self {
        let mut sim = Simulation::with_seed(seed);
        sim.set_tick_jobs(mpsoc_kernel::tick_jobs_default());
        PlatformBuilder {
            sim,
            buses: Vec::new(),
            bus_widths: Vec::new(),
            next_initiator: 0,
            generator_names: Vec::new(),
            lmi_names: Vec::new(),
            expected_transactions: 0,
        }
    }

    /// Allocates a platform-unique initiator id.
    pub fn alloc_initiator(&mut self) -> InitiatorId {
        let id = InitiatorId::new(self.next_initiator);
        self.next_initiator += 1;
        id
    }

    /// Registers a bus.
    pub fn add_bus(
        &mut self,
        name: impl Into<String>,
        spec: BusSpec,
        clock: ClockDomain,
    ) -> BusHandle {
        let name = name.into();
        let bus = match spec {
            BusSpec::Stbus(cfg) => {
                BusUnderConstruction::Stbus(StbusNode::new(name.clone(), cfg, clock))
            }
            BusSpec::Ahb(cfg) => BusUnderConstruction::Ahb(AhbBus::new(name.clone(), cfg, clock)),
            BusSpec::Axi(cfg) => {
                BusUnderConstruction::Axi(AxiInterconnect::new(name.clone(), cfg, clock))
            }
            BusSpec::Tlm(cfg, _) => {
                BusUnderConstruction::Tlm(TlmBus::new(name.clone(), cfg, clock))
            }
        };
        self.bus_widths.push(spec.width());
        self.buses.push(BusSlot { bus, clock, name });
        BusHandle(self.buses.len() - 1)
    }

    /// The clock of a bus.
    pub fn bus_clock(&self, bus: BusHandle) -> ClockDomain {
        self.buses[bus.0].clock
    }

    /// Creates the link pair for attaching an initiator to `bus` and
    /// registers the port. Returns `(req, resp)` for the initiator
    /// component to use.
    pub fn initiator_port(
        &mut self,
        bus: BusHandle,
        name: &str,
        issue_fifo: usize,
    ) -> (LinkId, LinkId) {
        let clock = self.buses[bus.0].clock;
        let req =
            self.sim
                .links_mut()
                .add_link(format!("{name}.req"), issue_fifo.max(1), clock.period());
        let resp = self.sim.links_mut().add_link(
            format!("{name}.resp"),
            issue_fifo.max(1),
            clock.period(),
        );
        self.buses[bus.0].bus.add_initiator(req, resp);
        (req, resp)
    }

    /// Creates the link pair for attaching a target to `bus`, registers the
    /// port and routes `ranges` to it.
    ///
    /// `prefetch_fifo` is the target-side request FIFO depth; `resp_fifo`
    /// the response-side depth.
    ///
    /// # Errors
    ///
    /// Fails if a route overlaps an existing one.
    pub fn target_port(
        &mut self,
        bus: BusHandle,
        name: &str,
        prefetch_fifo: usize,
        resp_fifo: usize,
        ranges: &[AddressRange],
    ) -> SimResult<TargetIface> {
        let clock = self.buses[bus.0].clock;
        let req = self.sim.links_mut().add_link(
            format!("{name}.req"),
            prefetch_fifo.max(1),
            clock.period(),
        );
        let resp =
            self.sim
                .links_mut()
                .add_link(format!("{name}.resp"), resp_fifo.max(1), clock.period());
        let idx = self.buses[bus.0].bus.add_target(req, resp);
        for range in ranges {
            self.buses[bus.0].bus.add_route(*range, idx)?;
        }
        Ok(TargetIface { req, resp })
    }

    /// Attaches an on-chip memory with a single-slot (blocking) interface.
    ///
    /// # Errors
    ///
    /// Fails on route overlap.
    pub fn add_on_chip_memory(
        &mut self,
        bus: BusHandle,
        name: &str,
        config: OnChipMemoryConfig,
        range: AddressRange,
    ) -> SimResult<()> {
        let clock = self.buses[bus.0].clock;
        let iface = self.target_port(bus, name, 1, 1, &[range])?;
        self.sim.add_component(
            Box::new(OnChipMemory::new(
                name, config, clock, iface.req, iface.resp,
            )),
            clock,
        );
        Ok(())
    }

    /// Attaches an LMI controller + DDR SDRAM.
    ///
    /// The LMI runs on its own `clock`; its request wire is capacity 1 (the
    /// interface sampling register — queueing happens in the controller's
    /// own input FIFO) and its response wire is the output FIFO.
    ///
    /// # Errors
    ///
    /// Fails on route overlap.
    pub fn add_lmi(
        &mut self,
        bus: BusHandle,
        name: &str,
        config: LmiConfig,
        clock: ClockDomain,
        range: AddressRange,
    ) -> SimResult<()> {
        let out_fifo = config.output_fifo_depth;
        let iface = self.target_port(bus, name, 1, out_fifo, &[range])?;
        self.sim.add_component(
            Box::new(LmiController::new(
                name, config, clock, iface.req, iface.resp,
            )),
            clock,
        );
        self.lmi_names.push(name.to_owned());
        Ok(())
    }

    /// Attaches an LMI controller behind a protocol-conversion bridge — the
    /// arrangement every non-STBus platform needs, since the LMI natively
    /// exposes an STBus interface. A blocking `bridge` here is exactly the
    /// "simple protocol converter unable to perform split transactions"
    /// that cripples the collapsed AXI platform in the paper's Figure 5.
    ///
    /// # Errors
    ///
    /// Fails on route overlap.
    pub fn add_lmi_behind_bridge(
        &mut self,
        bus: BusHandle,
        name: &str,
        config: LmiConfig,
        lmi_clock: ClockDomain,
        bridge: BridgeConfig,
        range: AddressRange,
    ) -> SimResult<()> {
        let bus_clock = self.buses[bus.0].clock;
        let out_fifo = config.output_fifo_depth;
        let lmi_req = self
            .sim
            .links_mut()
            .add_link(format!("{name}.req"), 1, lmi_clock.period());
        let lmi_resp =
            self.sim
                .links_mut()
                .add_link(format!("{name}.resp"), out_fifo, lmi_clock.period());
        self.sim.add_component(
            Box::new(LmiController::new(
                name, config, lmi_clock, lmi_req, lmi_resp,
            )),
            lmi_clock,
        );
        let a = self.target_port(bus, &format!("{name}.conv.a"), 2, 2, &[range])?;
        let halves = Bridge::build(
            format!("{name}.conv"),
            bridge,
            self.sim.links_mut(),
            bus_clock,
            lmi_clock,
            (a.req, a.resp),
            (lmi_req, lmi_resp),
        );
        self.sim
            .add_component(Box::new(halves.target_side), bus_clock);
        self.sim
            .add_component(Box::new(halves.initiator_side), lmi_clock);
        self.lmi_names.push(name.to_owned());
        Ok(())
    }

    /// Attaches an IPTG to a bus.
    ///
    /// # Errors
    ///
    /// Fails if the IPTG configuration is invalid.
    pub fn add_iptg(
        &mut self,
        bus: BusHandle,
        name: &str,
        config: IptgConfig,
        issue_fifo: usize,
    ) -> SimResult<()> {
        let clock = self.buses[bus.0].clock;
        self.expected_transactions += config.total_transactions();
        let (req, resp) = self.initiator_port(bus, name, issue_fifo);
        let gen = IpTrafficGenerator::new(name, config, req, resp).map_err(|e| {
            SimError::InvalidConfig {
                reason: e.to_string(),
            }
        })?;
        self.sim.add_component(Box::new(gen), clock);
        self.generator_names.push(name.to_owned());
        Ok(())
    }

    /// Attaches a DSP core running on its own clock, connected through a
    /// converter bridge (frequency and width adaptation) to `bus` — the
    /// ST220 arrangement of the reference platform.
    pub fn add_dsp_with_converter(
        &mut self,
        bus: BusHandle,
        name: &str,
        config: DspConfig,
        dsp_clock: ClockDomain,
        converter: BridgeConfig,
    ) {
        let bus_clock = self.buses[bus.0].clock;
        let bus_width = self.bus_width_of(bus);
        // DSP-side links (its private layer).
        let d_req = self
            .sim
            .links_mut()
            .add_link(format!("{name}.req"), 2, dsp_clock.period());
        let d_resp = self
            .sim
            .links_mut()
            .add_link(format!("{name}.resp"), 2, dsp_clock.period());
        // Bus-side initiator port.
        let (b_req, b_resp) = self.initiator_port(bus, &format!("{name}.conv"), 2);
        let halves = Bridge::build(
            format!("{name}.conv"),
            converter.with_out_width(bus_width),
            self.sim.links_mut(),
            dsp_clock,
            bus_clock,
            (d_req, d_resp),
            (b_req, b_resp),
        );
        self.sim
            .add_component(Box::new(halves.target_side), dsp_clock);
        self.sim
            .add_component(Box::new(halves.initiator_side), bus_clock);
        self.sim.add_component(
            Box::new(DspCore::new(name, config, d_req, d_resp)),
            dsp_clock,
        );
        self.generator_names.push(name.to_owned());
    }

    fn bus_width_of(&self, bus: BusHandle) -> DataWidth {
        self.bus_widths[bus.0]
    }

    /// Connects `from` to `to` through a bridge: the bridge appears as a
    /// target on `from` (serving `ranges`) and as an initiator on `to`.
    ///
    /// # Errors
    ///
    /// Fails on route overlap.
    pub fn add_bridge(
        &mut self,
        name: &str,
        config: BridgeConfig,
        from: BusHandle,
        to: BusHandle,
        ranges: &[AddressRange],
    ) -> SimResult<()> {
        let src_clock = self.buses[from.0].clock;
        let dst_clock = self.buses[to.0].clock;
        let dst_width = self.bus_width_of(to);
        let src_width = self.bus_width_of(from);
        // The bridge's source-side interface FIFOs scale with its internal
        // buffering: a split-capable GenConv offers deep distributed
        // buffering, a lightweight bridge only a couple of slots.
        let a_depth = config.req_fifo_depth.max(2);
        let a = self.target_port(from, &format!("{name}.a"), a_depth, a_depth, ranges)?;
        let (b_req, b_resp) = self.initiator_port(to, &format!("{name}.b"), 2);
        let config = if src_width != dst_width {
            config.with_out_width(dst_width)
        } else {
            config
        };
        let halves = Bridge::build(
            name,
            config,
            self.sim.links_mut(),
            src_clock,
            dst_clock,
            (a.req, a.resp),
            (b_req, b_resp),
        );
        self.sim
            .add_component(Box::new(halves.target_side), src_clock);
        self.sim
            .add_component(Box::new(halves.initiator_side), dst_clock);
        Ok(())
    }

    /// Adds an arbitrary component (custom initiators/targets).
    pub fn add_component(&mut self, component: Box<dyn Component<Packet>>, clock: ClockDomain) {
        self.sim.add_component(component, clock);
    }

    /// Direct access to the simulation during wiring (links, stats).
    pub fn sim_mut(&mut self) -> &mut Simulation<Packet> {
        &mut self.sim
    }

    /// Finalises the platform: boxes the buses into the simulation.
    pub fn finish(mut self, reference_clock: ClockDomain) -> crate::platforms::Platform {
        let bus_names: Vec<String> = self.buses.iter().map(|s| s.name.clone()).collect();
        for slot in self.buses.drain(..) {
            let clock = slot.clock;
            self.sim.add_component(slot.bus.into_component(), clock);
        }
        crate::platforms::Platform::from_parts(
            self.sim,
            reference_clock,
            bus_names,
            self.generator_names,
            self.lmi_names,
            self.expected_transactions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_kernel::Time;
    use mpsoc_memory::OnChipMemoryConfig;
    use mpsoc_stbus::StbusNodeConfig;
    use mpsoc_traffic::{AddressPattern, AgentConfig, IptgConfig};

    fn stbus_spec() -> BusSpec {
        BusSpec::Stbus(StbusNodeConfig::default())
    }

    #[test]
    fn initiator_ids_are_unique() {
        let mut b = PlatformBuilder::new(0);
        let a = b.alloc_initiator();
        let c = b.alloc_initiator();
        assert_ne!(a, c);
    }

    #[test]
    fn bus_spec_exposes_protocol_and_width() {
        let spec = stbus_spec();
        assert!(spec.protocol().is_stbus());
        assert_eq!(spec.width(), DataWidth::BITS64);
        let ahb = BusSpec::Ahb(mpsoc_ahb::AhbBusConfig::default());
        assert_eq!(ahb.protocol(), ProtocolKind::Ahb);
        let axi = BusSpec::Axi(mpsoc_axi::AxiInterconnectConfig::default());
        assert_eq!(axi.protocol(), ProtocolKind::Axi);
    }

    #[test]
    fn overlapping_memory_ranges_are_rejected() {
        let clk = ClockDomain::from_mhz(250);
        let mut b = PlatformBuilder::new(0);
        let bus = b.add_bus("n", stbus_spec(), clk);
        b.add_on_chip_memory(
            bus,
            "m0",
            OnChipMemoryConfig::default(),
            AddressRange::new(0, 0x1000),
        )
        .expect("first range fits");
        let err = b
            .add_on_chip_memory(
                bus,
                "m1",
                OnChipMemoryConfig::default(),
                AddressRange::new(0x800, 0x2000),
            )
            .expect_err("overlap must fail");
        assert!(err.to_string().contains("overlaps"));
    }

    #[test]
    fn invalid_iptg_config_is_rejected() {
        let clk = ClockDomain::from_mhz(250);
        let mut b = PlatformBuilder::new(0);
        let bus = b.add_bus("n", stbus_spec(), clk);
        let initiator = b.alloc_initiator();
        let mut agent =
            AgentConfig::simple("a", AddressPattern::Sequential { base: 0, len: 4096 }, 5);
        agent.start_after = Some((7, 0.5)); // dangling dependency
        let cfg = IptgConfig {
            initiator,
            width: DataWidth::BITS64,
            agents: vec![agent],
            seed: 1,
        };
        let err = b.add_iptg(bus, "bad", cfg, 2).expect_err("must fail");
        assert!(err.to_string().contains("depends on missing agent"));
    }

    #[test]
    fn minimal_hand_built_platform_runs() {
        let clk = ClockDomain::from_mhz(250);
        let mut b = PlatformBuilder::new(3);
        let bus = b.add_bus("n", stbus_spec(), clk);
        assert_eq!(b.bus_clock(bus), clk);
        b.add_on_chip_memory(
            bus,
            "mem",
            OnChipMemoryConfig::default(),
            AddressRange::new(0, 1 << 20),
        )
        .expect("wires");
        let initiator = b.alloc_initiator();
        let cfg = IptgConfig {
            initiator,
            width: DataWidth::BITS64,
            agents: vec![AgentConfig::simple(
                "a",
                AddressPattern::Sequential {
                    base: 0,
                    len: 1 << 16,
                },
                20,
            )],
            seed: 5,
        };
        b.add_iptg(bus, "ip", cfg, 2).expect("wires");
        let mut platform = b.finish(clk);
        assert_eq!(platform.expected_transactions(), 20);
        let report = platform
            .run_with_horizon(Time::from_ms(10))
            .expect("drains");
        assert_eq!(report.injected, 20);
        assert_eq!(report.buses.len(), 1);
        assert_eq!(report.buses[0].name, "n");
    }
}
