//! # mpsoc-platform
//!
//! The virtual platform itself: this crate assembles the substrate crates
//! (kernel, protocols, buses, bridges, memories, traffic) into complete,
//! runnable MPSoC platform instances and reproduces every experiment of
//! Medardoni et al., *"Capturing the interaction of the communication,
//! memory and I/O subsystems in memory-centric industrial MPSoC platforms"*
//! (DATE 2007).
//!
//! ## Layers
//!
//! * [`PlatformBuilder`] — low-level wiring API: add buses (STBus, AHB,
//!   AXI), memories (on-chip or LMI + DDR SDRAM), bridges, traffic
//!   generators and DSP cores; the builder owns link creation and
//!   capacity conventions.
//! * [`PlatformSpec`] / [`build_platform`] — the reference
//!   consumer-electronics platform (Fig. 1 of the paper) and its
//!   architectural variants: *collapsed* (every actor on the central node)
//!   versus *distributed* (clustered, multi-layer with bridges), each
//!   instantiable over STBus, AHB or AXI and over either memory system.
//! * [`Platform::run`] — executes a workload to completion and produces a
//!   [`RunReport`] with execution time, bus utilisation, memory-interface
//!   statistics and per-IP latency figures.
//! * [`experiments`] — one entry point per table/figure of the paper,
//!   returning structured, printable results (see `DESIGN.md` for the
//!   experiment index).
//!
//! ## Quickstart
//!
//! ```
//! use mpsoc_platform::{build_platform, PlatformSpec, Topology, MemorySystem};
//! use mpsoc_protocol::ProtocolKind;
//!
//! let spec = PlatformSpec {
//!     protocol: ProtocolKind::StbusT3,
//!     topology: Topology::Collapsed,
//!     memory: MemorySystem::OnChip { wait_states: 1 },
//!     scale: 1,
//!     ..PlatformSpec::default()
//! };
//! let mut platform = build_platform(&spec)?;
//! let report = platform.run()?;
//! assert!(report.exec_time().as_ns() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod experiments;
mod platforms;
mod report;
pub mod service;

pub use builder::{BusHandle, BusSpec, PlatformBuilder, TargetIface};
pub use platforms::{
    build_platform, build_platform_with_ips, build_single_layer, CustomIp, Fidelity, MemorySystem,
    Platform, PlatformSpec, SingleLayerSpec, Topology, Workload,
};
pub use report::{BusUtilization, LmiInterfaceReport, RunReport};
