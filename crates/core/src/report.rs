//! Run reports: the measurements a platform run produces.

use mpsoc_kernel::stats::StatsReport;
use mpsoc_kernel::Time;
use std::collections::BTreeMap;
use std::fmt;

/// Utilisation of one bus, derived from its busy-time counters.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct BusUtilization {
    /// Bus name.
    pub name: String,
    /// Fraction of the run the request path was busy (STBus request
    /// channel, AXI AW+AR+W aggregate, AHB whole-bus hold time).
    pub request_utilization: f64,
    /// Fraction of the run the response path was busy (0 for AHB, whose
    /// single channel is captured by `request_utilization`).
    pub response_utilization: f64,
    /// Data cycles over busy cycles on the response path — the *efficiency*
    /// of Section 4.1.2 (≈ 0.5 against a 1-wait-state memory). `None` when
    /// the bus does not expose the breakdown.
    pub response_efficiency: Option<f64>,
}

/// Bus-interface statistics of one LMI controller (the paper's Figure 6).
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct LmiInterfaceReport {
    /// Controller name.
    pub name: String,
    /// Fraction of time the input FIFO was full.
    pub full: f64,
    /// Fraction of time a new request was being stored.
    pub storing: f64,
    /// Fraction of time no request was incoming (request = 0, grant = 1).
    pub no_request: f64,
    /// Fraction of time the input FIFO was completely empty.
    pub empty: f64,
    /// Row-buffer hits of the SDRAM behind the controller.
    pub row_hits: u64,
    /// Row-buffer misses.
    pub row_misses: u64,
    /// Transactions absorbed by opcode merging.
    pub merged_txns: u64,
    /// SDRAM accesses issued.
    pub accesses: u64,
    /// Auto-refreshes performed.
    pub refreshes: u64,
}

/// Per-generator latency summary.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct GeneratorLatency {
    /// Generator name.
    pub name: String,
    /// Transactions injected.
    pub injected: u64,
    /// Transactions completed (posted writes complete at injection and are
    /// counted there, not here).
    pub completed: u64,
    /// Mean end-to-end latency in nanoseconds.
    pub mean_latency_ns: f64,
    /// Approximate 95th-percentile latency in nanoseconds.
    pub p95_latency_ns: u64,
    /// Maximum end-to-end latency in nanoseconds.
    pub max_latency_ns: u64,
}

/// Everything measured by one platform run.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct RunReport {
    /// Execution time (workload injection to full drain) in picoseconds.
    pub exec_time_ps: u64,
    /// Execution time in cycles of the platform's reference clock.
    pub exec_cycles: u64,
    /// Total transactions injected by all traffic generators.
    pub injected: u64,
    /// Per-bus utilisation.
    pub buses: Vec<BusUtilization>,
    /// Per-LMI interface statistics (empty for on-chip-memory platforms).
    pub lmi: Vec<LmiInterfaceReport>,
    /// Per-generator latency summaries.
    pub generators: Vec<GeneratorLatency>,
    /// Raw counter dump for ad-hoc analysis.
    pub counters: BTreeMap<String, u64>,
}

impl RunReport {
    /// Execution time as kernel [`Time`].
    pub fn exec_time(&self) -> Time {
        Time::from_ps(self.exec_time_ps)
    }

    /// Execution time normalised against a baseline report.
    pub fn normalized_to(&self, baseline: &RunReport) -> f64 {
        self.exec_time_ps as f64 / baseline.exec_time_ps as f64
    }

    /// Builds a report from the final statistics snapshot.
    pub(crate) fn from_stats(
        exec_time: Time,
        ref_period: Time,
        stats: &StatsReport,
        bus_names: &[String],
        generator_names: &[String],
        lmi_names: &[String],
    ) -> RunReport {
        let elapsed = exec_time.as_ps().max(1) as f64;
        let counter = |name: &str| stats.counters.get(name).copied().unwrap_or(0);

        let buses = bus_names
            .iter()
            .map(|name| {
                // STBus counters, AXI counters or the AHB aggregate — take
                // whichever exist.
                let req_ps = counter(&format!("{name}.req_busy_ps"))
                    + counter(&format!("{name}.busy_ps"))
                    + counter(&format!("{name}.w_busy_ps"));
                let resp_busy = counter(&format!("{name}.resp_busy_ps"))
                    + counter(&format!("{name}.r_busy_ps"));
                let resp_data = counter(&format!("{name}.resp_data_ps"));
                BusUtilization {
                    name: name.clone(),
                    request_utilization: req_ps as f64 / elapsed,
                    response_utilization: resp_busy as f64 / elapsed,
                    response_efficiency: (resp_data > 0 && resp_busy > 0)
                        .then(|| resp_data as f64 / resp_busy as f64),
                }
            })
            .collect();

        let lmi = lmi_names
            .iter()
            .map(|name| {
                let res = stats
                    .residencies
                    .get(&format!("{name}.iface"))
                    .cloned()
                    .unwrap_or_default();
                let frac = |state: &str| {
                    res.iter()
                        .find(|(s, _)| s == state)
                        .map_or(0.0, |(_, f)| *f)
                };
                let empty = stats
                    .residencies
                    .get(&format!("{name}.empty"))
                    .and_then(|r| r.iter().find(|(s, _)| s == "empty").map(|(_, f)| *f))
                    .unwrap_or(0.0);
                LmiInterfaceReport {
                    name: name.clone(),
                    full: frac("full"),
                    storing: frac("storing"),
                    no_request: frac("no_request"),
                    empty,
                    row_hits: counter(&format!("{name}.row_hits")),
                    row_misses: counter(&format!("{name}.row_misses")),
                    merged_txns: counter(&format!("{name}.merged_txns")),
                    accesses: counter(&format!("{name}.accesses")),
                    refreshes: counter(&format!("{name}.refreshes")),
                }
            })
            .collect();

        let generators = generator_names
            .iter()
            .map(|name| {
                let hist = stats.histograms.get(&format!("{name}.latency_ns"));
                GeneratorLatency {
                    name: name.clone(),
                    injected: counter(&format!("{name}.injected")),
                    completed: counter(&format!("{name}.completed")),
                    mean_latency_ns: hist.map_or(0.0, |h| h.mean()),
                    p95_latency_ns: hist.and_then(|h| h.percentile(0.95)).unwrap_or(0),
                    max_latency_ns: hist.and_then(|h| h.max()).unwrap_or(0),
                }
            })
            .collect();

        let injected = generator_names
            .iter()
            .map(|name| counter(&format!("{name}.injected")))
            .sum();

        RunReport {
            exec_time_ps: exec_time.as_ps(),
            exec_cycles: exec_time.as_ps() / ref_period.as_ps().max(1),
            injected,
            buses,
            lmi,
            generators,
            counters: stats
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "execution time: {} ({} ref cycles), {} transactions",
            Time::from_ps(self.exec_time_ps),
            self.exec_cycles,
            self.injected
        )?;
        for b in &self.buses {
            write!(
                f,
                "  bus {:<12} req {:>5.1}%  resp {:>5.1}%",
                b.name,
                b.request_utilization * 100.0,
                b.response_utilization * 100.0
            )?;
            if let Some(e) = b.response_efficiency {
                write!(f, "  efficiency {:>5.1}%", e * 100.0)?;
            }
            writeln!(f)?;
        }
        for l in &self.lmi {
            writeln!(
                f,
                "  lmi {:<12} full {:>5.1}%  storing {:>5.1}%  no-req {:>5.1}%  empty {:>5.1}%  \
                 hits/misses {}/{}  merged {}  accesses {}",
                l.name,
                l.full * 100.0,
                l.storing * 100.0,
                l.no_request * 100.0,
                l.empty * 100.0,
                l.row_hits,
                l.row_misses,
                l.merged_txns,
                l.accesses
            )?;
        }
        for g in &self.generators {
            writeln!(
                f,
                "  gen {:<12} injected {:>6}  completed {:>6}  latency mean {:>8.1} ns  p95 {:>6} ns  max {:>6} ns",
                g.name, g.injected, g.completed, g.mean_latency_ns, g.p95_latency_ns, g.max_latency_ns
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_is_a_ratio() {
        let mk = |ps: u64| RunReport {
            exec_time_ps: ps,
            exec_cycles: 0,
            injected: 0,
            buses: vec![],
            lmi: vec![],
            generators: vec![],
            counters: BTreeMap::new(),
        };
        let a = mk(2_000);
        let b = mk(1_000);
        assert!((a.normalized_to(&b) - 2.0).abs() < 1e-12);
        assert!((b.normalized_to(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn report_builds_from_empty_stats() {
        let stats = StatsReport::default();
        let r = RunReport::from_stats(
            Time::from_us(1),
            Time::from_ns(4),
            &stats,
            &["n8".into()],
            &["video".into()],
            &[],
        );
        assert_eq!(r.exec_cycles, 250);
        assert_eq!(r.buses.len(), 1);
        assert_eq!(r.generators.len(), 1);
        assert_eq!(r.injected, 0);
        let shown = r.to_string();
        assert!(shown.contains("n8"));
    }
}
