//! Simulation-as-a-service building blocks: decoding a sweep request into
//! a platform spec and producing/consuming warm-prefix checkpoints.
//!
//! The sweep server (`crates/server`) accepts requests of the shape
//! *platform configuration + workload + seed + sweep-axis value* and serves
//! each one by forking a **warm checkpoint**: the platform is simulated
//! once from reset to a traffic-anchored warm boundary at the base memory
//! speed, checkpointed there, and every request for the same platform
//! restores that blob and runs only its own tail (its wait states, its
//! fidelity knobs). This module owns the pieces both sides need:
//!
//! * [`SweepRequest`] — the decoded request and its [`PlatformSpec`]
//!   mapping, plus the canonical wire names of every enum knob;
//! * [`probe_warm`] — the deterministic warm-boundary probe (shared with
//!   the fig4 experiment, which is exactly this sweep for one fixed
//!   configuration);
//! * [`warm_state`] / [`serve_point`] — produce a warm checkpoint and
//!   serve one sweep point from it.
//!
//! # Determinism contract
//!
//! Everything here is a pure function of the request: the warm boundary is
//! sampled on fixed [`CHUNK`] boundaries, checkpoints are byte-identical
//! across runs of the same spec, and [`serve_point`] continues the exact
//! tick sequence the cold run would have executed (snapshot restore is
//! bit-exact, proven by the snapshot proptests). A cache hit therefore
//! returns byte-identical results to a cold run — the server asserts this
//! and CI gates it end to end.

use crate::experiments::parallel_map;
use crate::platforms::{build_platform, MemorySystem, PlatformSpec, Topology, Workload};
use mpsoc_kernel::{
    Fidelity, RunOutcome, SimError, SimResult, SnapshotBlob, SnapshotError, StateReader,
    StateWriter, Time,
};
use mpsoc_protocol::ProtocolKind;

/// Wait states of the shared warm-up phase every sweep point starts from.
pub const BASE_WAIT_STATES: u32 = 1;

/// Fraction (permille) of the base run's **injected transactions** covered
/// by the shared warm prefix before a point switches to its own wait
/// states. Anchoring the boundary to traffic rather than execution time
/// keeps it meaningful at every scale: large runs end with a long
/// low-traffic drain tail, so a time fraction would land past all the
/// memory activity and flatten the sweep.
pub const WARM_PERMILLE: u64 = 980;

/// Granularity at which the probe samples injection progress. The warm
/// boundary is always a multiple of this, which keeps it a deterministic
/// function of the spec alone.
pub const CHUNK: Time = Time::from_us(1);

/// Run horizon for probes and served tails, matching
/// [`Platform::run`](crate::Platform::run).
pub const SERVICE_HORIZON: Time = Time::from_ms(60);

/// One decoded sweep request: the platform the warm phase is built for
/// plus the point's own knobs (wait states, warm-phase gear, tick jobs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRequest {
    /// Interconnect protocol of every bus layer.
    pub protocol: ProtocolKind,
    /// Collapsed or distributed organisation.
    pub topology: Topology,
    /// Traffic mix.
    pub workload: Workload,
    /// Workload size multiplier.
    pub scale: u64,
    /// Simulation seed.
    pub seed: u64,
    /// Memory wait states the shared warm prefix runs at.
    pub base_wait_states: u32,
    /// The sweep-axis value: wait states applied at the warm boundary.
    pub wait_states: u32,
    /// Loosely-timed warm phase quantum (`None` = cycle-accurate warm-up).
    /// Results are approximate for quanta above 1, exactly like
    /// `repro --fast-warm`; the tail past the boundary is always
    /// cycle-accurate.
    pub fast_gear: Option<u64>,
    /// Worker threads for intra-edge parallel ticking of the served tail
    /// (byte-identical to serial for any value, by the kernel's
    /// compute/commit determinism guarantee).
    pub tick_jobs: usize,
}

impl Default for SweepRequest {
    fn default() -> Self {
        SweepRequest {
            protocol: ProtocolKind::StbusT3,
            topology: Topology::Distributed,
            workload: Workload::BurstyPosted,
            scale: crate::experiments::DEFAULT_SCALE,
            seed: crate::experiments::DEFAULT_SEED,
            base_wait_states: BASE_WAIT_STATES,
            wait_states: BASE_WAIT_STATES,
            fast_gear: None,
            tick_jobs: 1,
        }
    }
}

/// Parses a protocol wire name (`stbus-t1`, `stbus-t2`, `stbus-t3`,
/// `ahb`, `axi`).
///
/// # Errors
///
/// Returns the list of valid names for anything else.
pub fn parse_protocol(s: &str) -> Result<ProtocolKind, String> {
    match s {
        "stbus-t1" => Ok(ProtocolKind::StbusT1),
        "stbus-t2" => Ok(ProtocolKind::StbusT2),
        "stbus-t3" => Ok(ProtocolKind::StbusT3),
        "ahb" => Ok(ProtocolKind::Ahb),
        "axi" => Ok(ProtocolKind::Axi),
        other => Err(format!(
            "unknown protocol '{other}' (expected stbus-t1, stbus-t2, stbus-t3, ahb or axi)"
        )),
    }
}

/// The canonical wire name [`parse_protocol`] accepts.
pub fn protocol_wire_name(p: ProtocolKind) -> &'static str {
    match p {
        ProtocolKind::StbusT1 => "stbus-t1",
        ProtocolKind::StbusT2 => "stbus-t2",
        ProtocolKind::StbusT3 => "stbus-t3",
        ProtocolKind::Ahb => "ahb",
        ProtocolKind::Axi => "axi",
    }
}

/// Parses a topology wire name (`single-layer`, `collapsed`,
/// `distributed`).
///
/// # Errors
///
/// Returns the list of valid names for anything else.
pub fn parse_topology(s: &str) -> Result<Topology, String> {
    match s {
        "single-layer" => Ok(Topology::SingleLayer),
        "collapsed" => Ok(Topology::Collapsed),
        "distributed" => Ok(Topology::Distributed),
        other => Err(format!(
            "unknown topology '{other}' (expected single-layer, collapsed or distributed)"
        )),
    }
}

/// The canonical wire name [`parse_topology`] accepts.
pub fn topology_wire_name(t: Topology) -> &'static str {
    match t {
        Topology::SingleLayer => "single-layer",
        Topology::Collapsed => "collapsed",
        Topology::Distributed => "distributed",
    }
}

/// Parses a workload wire name (`standard`, `two-phase`, `bursty-posted`).
///
/// # Errors
///
/// Returns the list of valid names for anything else.
pub fn parse_workload(s: &str) -> Result<Workload, String> {
    match s {
        "standard" => Ok(Workload::Standard),
        "two-phase" => Ok(Workload::TwoPhase),
        "bursty-posted" => Ok(Workload::BurstyPosted),
        other => Err(format!(
            "unknown workload '{other}' (expected standard, two-phase or bursty-posted)"
        )),
    }
}

/// The canonical wire name [`parse_workload`] accepts.
pub fn workload_wire_name(w: Workload) -> &'static str {
    match w {
        Workload::Standard => "standard",
        Workload::TwoPhase => "two-phase",
        Workload::BurstyPosted => "bursty-posted",
    }
}

impl SweepRequest {
    /// The spec of the shared warm phase: the platform at
    /// [`SweepRequest::base_wait_states`]. Every request that maps to the
    /// same base spec shares one warm checkpoint.
    pub fn base_spec(&self) -> PlatformSpec {
        PlatformSpec {
            protocol: self.protocol,
            topology: self.topology,
            memory: MemorySystem::OnChip {
                wait_states: self.base_wait_states,
            },
            workload: self.workload,
            scale: self.scale,
            seed: self.seed,
            ..PlatformSpec::default()
        }
    }

    /// The canonical warm-identity key: every request field that changes
    /// the warm checkpoint, in a stable textual form. Requests with equal
    /// keys share a warm blob; the sweep-axis value and the tail knobs
    /// (`wait_states`, `tick_jobs`) are deliberately excluded.
    pub fn warm_key(&self) -> String {
        format!(
            "{}/{}/{}/s{}/x{:#x}/b{}/g{}",
            protocol_wire_name(self.protocol),
            topology_wire_name(self.topology),
            workload_wire_name(self.workload),
            self.scale,
            self.seed,
            self.base_wait_states,
            self.fast_gear.unwrap_or(0),
        )
    }

    /// The warm-phase gear this request asks for.
    pub fn warm_fidelity(&self) -> Fidelity {
        match self.fast_gear {
            None => Fidelity::Cycle,
            Some(quantum) => Fidelity::Fast {
                quantum: quantum.max(1),
            },
        }
    }
}

/// The deterministic warm profile of one platform spec: the base-run
/// result and the instant at which sweep points diverge from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmProfile {
    /// Execution cycles of the straight base run (the base sweep point).
    pub base_cycles: u64,
    /// Simulation time up to which every point runs at the base wait
    /// states.
    pub warm_until: Time,
}

/// Runs the probe (the base-wait-states point) and derives the warm
/// boundary.
///
/// The base run is stepped in [`CHUNK`]-sized slices, sampling the injected
/// transaction count at every boundary; stepping a run this way is
/// bit-identical to running it uninterrupted. The warm boundary is the
/// earliest chunk boundary at which at least [`WARM_PERMILLE`] of the run's
/// total injections have happened — a deterministic instant every sweep
/// point can replay before diverging.
///
/// With `gear` given, the kernel gear is forced for the probe (instead of
/// the process-wide default the platform builder applies). In a
/// loosely-timed gear the probe's injection timeline (and with it the
/// sampled warm boundary and the quiescence instant) is approximate; a
/// loosely-timed caller must therefore never use the probe's `base_cycles`
/// and instead derive every cell from a cycle-accurate tail. At
/// `Fast { quantum: 1 }` the trace is byte-identical to the cycle-gear one.
///
/// # Errors
///
/// Fails if the platform stalls before the horizon (model bug).
pub fn probe_warm(spec: &PlatformSpec, gear: Option<Fidelity>) -> SimResult<WarmProfile> {
    let mut platform = build_platform(spec)?;
    if let Some(gear) = gear {
        platform.sim_mut().set_fidelity(gear);
    }
    let mut samples: Vec<(Time, u64)> = Vec::new();
    let mut horizon = Time::ZERO;
    let exec = loop {
        horizon += CHUNK;
        match platform.sim_mut().run_to_quiescence(horizon) {
            RunOutcome::Quiescent { at } => break Some(at),
            RunOutcome::HorizonReached { .. } if horizon >= SERVICE_HORIZON => {
                return platform
                    .sim_mut()
                    .run_to_quiescence_strict(SERVICE_HORIZON)
                    .map(|_| unreachable!("probe already hit the horizon"));
            }
            RunOutcome::HorizonReached { .. } => {
                samples.push((horizon, platform.injected_so_far()));
            }
        }
    };
    let total = platform.injected_so_far();
    let threshold = total * WARM_PERMILLE / 1000;
    let warm_until = samples
        .iter()
        .find(|(_, injected)| *injected >= threshold)
        .or(samples.last())
        .map_or(Time::ZERO, |(at, _)| *at);
    Ok(WarmProfile {
        base_cycles: exec.map_or(0, |at| platform.report_at(at).exec_cycles),
        warm_until,
    })
}

/// A reusable warm checkpoint: the probe's profile, the blob taken at the
/// warm boundary, and the structural fingerprint of the platform that
/// produced it. This is what the server's LRU cache stores and forks.
#[derive(Debug, Clone)]
pub struct WarmState {
    /// The probe's warm profile.
    pub profile: WarmProfile,
    /// The checkpoint taken at [`WarmProfile::warm_until`]. Cloning is a
    /// reference-count bump, so one blob serves many concurrent forks.
    pub blob: SnapshotBlob,
    /// Structural fingerprint of the producing platform. A consumer must
    /// only fork this state into a platform with an equal fingerprint.
    pub fingerprint: u64,
}

/// Section name of the disk-spill container around a warm state.
const SPILL_SECTION: &str = "warm-spill";

impl WarmState {
    /// Packs the warm state into a sealed spill blob for disk persistence.
    ///
    /// The container is an ordinary armoured snapshot blob (magic, version,
    /// checksum) carrying the warm key, the structural fingerprint, the
    /// probe profile and the inner checkpoint bytes — the inner blob keeps
    /// its own seal, so a loader validates two independent checksums before
    /// anything is served.
    pub fn to_spill_blob(&self, warm_key: &str) -> SnapshotBlob {
        let mut w = StateWriter::new();
        w.section(SPILL_SECTION);
        w.write_str(warm_key);
        w.write_u64(self.fingerprint);
        w.write_u64(self.profile.base_cycles);
        w.write_time(self.profile.warm_until);
        w.write_bytes(self.blob.as_bytes());
        w.finish()
    }

    /// Unpacks a spill blob written by [`WarmState::to_spill_blob`],
    /// failing closed on every mismatch.
    ///
    /// # Errors
    ///
    /// Rejects (without constructing a state) any of: outer armour damage
    /// ([`SnapshotError::BadMagic`] / `BadVersion` / `BadChecksum` /
    /// `Corrupt` / `TrailingBytes`), a warm key that is not `warm_key`, a
    /// recorded fingerprint different from `expected_fingerprint`, or an
    /// inner blob whose own seal or stamped fingerprint disagrees. A
    /// corrupted or stale spill file therefore can never reach
    /// [`serve_point`].
    pub fn from_spill_blob(
        spill: &SnapshotBlob,
        warm_key: &str,
        expected_fingerprint: u64,
    ) -> Result<WarmState, SnapshotError> {
        let mut r = StateReader::new(spill)?;
        r.expect_section(SPILL_SECTION);
        let stored_key = r.read_str();
        let fingerprint = r.read_u64();
        let base_cycles = r.read_u64();
        let warm_until = r.read_time();
        let blob = SnapshotBlob::from_bytes(r.read_bytes());
        r.finish()?;
        if stored_key != warm_key {
            return Err(SnapshotError::StructureMismatch {
                detail: format!("spill holds warm key {stored_key:?}, wanted {warm_key:?}"),
            });
        }
        if fingerprint != expected_fingerprint {
            return Err(SnapshotError::StructureMismatch {
                detail: format!(
                    "spill fingerprint {fingerprint:#018x} does not match \
                     expected {expected_fingerprint:#018x}"
                ),
            });
        }
        if blob.fingerprint()? != fingerprint {
            return Err(SnapshotError::StructureMismatch {
                detail: "inner checkpoint fingerprint disagrees with spill header".into(),
            });
        }
        Ok(WarmState {
            profile: WarmProfile {
                base_cycles,
                warm_until,
            },
            blob,
            fingerprint,
        })
    }
}

/// Produces the warm state of a request: probes the warm boundary, runs a
/// fresh platform to it, and checkpoints there.
///
/// With a loosely-timed warm gear ([`SweepRequest::fast_gear`]), the probe
/// and the warm prefix fast-forward through multi-edge windows and the
/// simulation is shifted back to [`Fidelity::Cycle`] *before* the
/// checkpoint — exactly like `repro --fast-warm` — so the blob is an
/// ordinary cycle-gear checkpoint (identical structural fingerprint) and
/// every served tail is a cycle-accurate continuation.
///
/// Deterministic: the same request always produces a byte-identical blob.
///
/// # Errors
///
/// Fails if the platform stalls (model bug).
pub fn warm_state(req: &SweepRequest) -> SimResult<WarmState> {
    let spec = req.base_spec();
    let gear = req.warm_fidelity();
    let profile = match gear {
        Fidelity::Cycle => probe_warm(&spec, None)?,
        fast => probe_warm(&spec, Some(fast))?,
    };
    let mut platform = build_platform(&spec)?;
    match gear {
        Fidelity::Cycle => {
            platform.sim_mut().run_until(profile.warm_until);
        }
        fast => {
            // Deterministic gear-shift: land on the boundary in the fast
            // gear, then settle cycle-accurately so the checkpoint carries
            // no illegal run-ahead (see fig4_warm_state).
            platform.sim_mut().set_fidelity(fast);
            platform.sim_mut().run_until(profile.warm_until);
            platform.sim_mut().set_fidelity(Fidelity::Cycle);
            platform.sim_mut().run_until(profile.warm_until);
        }
    }
    let fingerprint = platform.structural_fingerprint();
    Ok(WarmState {
        profile,
        blob: platform.checkpoint(),
        fingerprint,
    })
}

/// Serves one sweep point from a warm state: builds a fresh platform from
/// the request's base spec, forks the blob into it, applies the point's
/// wait states and tick jobs, and runs the tail to quiescence.
///
/// Returns the tail's execution time in reference-clock cycles — for the
/// base point (`wait_states == base_wait_states`) this equals the probe's
/// `base_cycles`, because the fork continues the exact tick sequence the
/// uninterrupted run executed.
///
/// # Errors
///
/// Fails if the blob's fingerprint does not match the freshly built
/// platform (never served from a correct cache), on a corrupt blob, or if
/// the tail stalls.
pub fn serve_point(req: &SweepRequest, warm: &WarmState) -> SimResult<u64> {
    let mut platform = build_platform(&req.base_spec())?;
    let own = platform.structural_fingerprint();
    if own != warm.fingerprint {
        return Err(SimError::Snapshot {
            source: mpsoc_kernel::SnapshotError::StructureMismatch {
                detail: format!(
                    "warm state fingerprint {:#018x} does not match request platform {own:#018x}",
                    warm.fingerprint
                ),
            },
        });
    }
    if req.tick_jobs > 1 {
        platform.sim_mut().set_tick_jobs(req.tick_jobs);
    }
    platform.restore(&warm.blob)?;
    if !platform.set_memory_wait_states(req.wait_states) {
        return Err(SimError::InvalidConfig {
            reason: "sweep requests target on-chip memory platforms".into(),
        });
    }
    let exec = platform
        .sim_mut()
        .run_to_quiescence_strict(SERVICE_HORIZON)?;
    Ok(platform.report_at(exec).exec_cycles)
}

/// Serves many sweep points of one warm key as a single fan-out: every
/// request forks the same warm blob and the forks run under one
/// [`parallel_map`] with `jobs` workers.
///
/// This is the multi-cell batch primitive behind the server's request
/// coalescing: N concurrent requests for *different* cells of the same
/// platform cost one warm-up plus one sweep, instead of N sweeps. Results
/// come back in input order and each is byte-identical to the
/// [`serve_point`] the request would have run in isolation — the fan-out
/// changes wall-clock time, never values.
///
/// Per-point errors stay per-point: one stalling tail does not take down
/// the rest of the batch.
pub fn serve_points(reqs: Vec<SweepRequest>, warm: &WarmState, jobs: usize) -> Vec<SimResult<u64>> {
    parallel_map(reqs, jobs, |req| serve_point(&req, warm))
}

/// Serves one sweep point cold: computes the warm state from scratch and
/// forks it once. The reference the server's cache-hit path is asserted
/// against — a cache hit must return exactly this value.
///
/// # Errors
///
/// Same as [`warm_state`] and [`serve_point`].
pub fn cold_point(req: &SweepRequest) -> SimResult<u64> {
    let warm = warm_state(req)?;
    serve_point(req, &warm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_request() -> SweepRequest {
        SweepRequest {
            scale: 1,
            seed: 0x0dab,
            ..SweepRequest::default()
        }
    }

    #[test]
    fn wire_names_round_trip() {
        for p in [
            ProtocolKind::StbusT1,
            ProtocolKind::StbusT2,
            ProtocolKind::StbusT3,
            ProtocolKind::Ahb,
            ProtocolKind::Axi,
        ] {
            assert_eq!(parse_protocol(protocol_wire_name(p)), Ok(p));
        }
        for t in [
            Topology::SingleLayer,
            Topology::Collapsed,
            Topology::Distributed,
        ] {
            assert_eq!(parse_topology(topology_wire_name(t)), Ok(t));
        }
        for w in [
            Workload::Standard,
            Workload::TwoPhase,
            Workload::BurstyPosted,
        ] {
            assert_eq!(parse_workload(workload_wire_name(w)), Ok(w));
        }
        assert!(parse_protocol("pci").is_err());
        assert!(parse_topology("ring").is_err());
        assert!(parse_workload("idle").is_err());
    }

    #[test]
    fn warm_key_excludes_tail_knobs() {
        let a = quick_request();
        let b = SweepRequest {
            wait_states: 16,
            tick_jobs: 4,
            ..quick_request()
        };
        assert_eq!(a.warm_key(), b.warm_key());
        let c = SweepRequest {
            seed: 1,
            ..quick_request()
        };
        assert_ne!(a.warm_key(), c.warm_key());
        let d = SweepRequest {
            fast_gear: Some(16),
            ..quick_request()
        };
        assert_ne!(a.warm_key(), d.warm_key());
    }

    #[test]
    fn warm_states_are_byte_identical_across_runs() {
        let req = quick_request();
        let a = warm_state(&req).expect("warm state");
        let b = warm_state(&req).expect("warm state");
        assert_eq!(a.blob.as_bytes(), b.blob.as_bytes());
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.profile, b.profile);
        assert_eq!(a.blob.fingerprint(), Ok(a.fingerprint));
    }

    #[test]
    fn base_point_fork_matches_the_probe() {
        let req = quick_request();
        let warm = warm_state(&req).expect("warm state");
        let served = serve_point(&req, &warm).expect("serves");
        assert_eq!(
            served, warm.profile.base_cycles,
            "forking the base point must continue the probe's exact run"
        );
    }

    #[test]
    fn mismatched_warm_state_is_refused() {
        let req = quick_request();
        let other = SweepRequest {
            topology: Topology::Collapsed,
            ..quick_request()
        };
        let warm = warm_state(&other).expect("warm state");
        let err = serve_point(&req, &warm).unwrap_err();
        assert!(
            err.to_string().contains("fingerprint"),
            "stale blob must be refused by fingerprint: {err}"
        );
    }

    #[test]
    fn serve_points_matches_isolated_serves() {
        let warm = warm_state(&quick_request()).expect("warm state");
        let cells: Vec<SweepRequest> = [1u32, 4, 16]
            .iter()
            .map(|&ws| SweepRequest {
                wait_states: ws,
                ..quick_request()
            })
            .collect();
        let isolated: Vec<u64> = cells
            .iter()
            .map(|req| serve_point(req, &warm).expect("serves"))
            .collect();
        let batched: Vec<u64> = serve_points(cells, &warm, 2)
            .into_iter()
            .map(|r| r.expect("serves"))
            .collect();
        assert_eq!(batched, isolated);
    }

    #[test]
    fn spill_blob_round_trips_the_warm_state() {
        let req = quick_request();
        let warm = warm_state(&req).expect("warm state");
        let key = req.warm_key();
        let spill = warm.to_spill_blob(&key);
        let loaded =
            WarmState::from_spill_blob(&spill, &key, warm.fingerprint).expect("loads back");
        assert_eq!(loaded.blob.as_bytes(), warm.blob.as_bytes());
        assert_eq!(loaded.profile, warm.profile);
        assert_eq!(loaded.fingerprint, warm.fingerprint);
    }

    #[test]
    fn spill_blob_fails_closed() {
        let req = quick_request();
        let warm = warm_state(&req).expect("warm state");
        let key = req.warm_key();
        let spill = warm.to_spill_blob(&key);

        let err = WarmState::from_spill_blob(&spill, "other/key", warm.fingerprint).unwrap_err();
        assert!(
            matches!(err, SnapshotError::StructureMismatch { .. }),
            "{err}"
        );

        let err = WarmState::from_spill_blob(&spill, &key, warm.fingerprint ^ 1).unwrap_err();
        assert!(
            matches!(err, SnapshotError::StructureMismatch { .. }),
            "{err}"
        );

        let mut torn = spill.as_bytes().to_vec();
        torn.truncate(torn.len() / 2);
        let err =
            WarmState::from_spill_blob(&SnapshotBlob::from_bytes(torn), &key, warm.fingerprint)
                .unwrap_err();
        assert!(
            !matches!(err, SnapshotError::StructureMismatch { .. }),
            "truncation must be caught by the armour itself: {err}"
        );

        let mut flipped = spill.as_bytes().to_vec();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x04;
        let err =
            WarmState::from_spill_blob(&SnapshotBlob::from_bytes(flipped), &key, warm.fingerprint)
                .unwrap_err();
        assert_eq!(err, SnapshotError::BadChecksum);
    }

    #[test]
    fn tick_jobs_do_not_change_the_result() {
        let warm = warm_state(&quick_request()).expect("warm state");
        let serial = serve_point(
            &SweepRequest {
                wait_states: 8,
                ..quick_request()
            },
            &warm,
        )
        .expect("serves");
        let parallel = serve_point(
            &SweepRequest {
                wait_states: 8,
                tick_jobs: 4,
                ..quick_request()
            },
            &warm,
        )
        .expect("serves");
        assert_eq!(serial, parallel);
    }
}
