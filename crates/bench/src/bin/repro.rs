//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```bash
//! repro                      # all experiments at the default scale
//! repro --exp fig5           # one experiment
//! repro --scale 8 --seed 42  # bigger workload, different seed
//! repro --list               # list experiment ids
//! ```

use mpsoc_bench::{run_experiment, EXPERIMENTS};
use mpsoc_platform::experiments::{DEFAULT_SCALE, DEFAULT_SEED};
use std::process::ExitCode;

struct Args {
    exp: Option<String>,
    scale: u64,
    seed: u64,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        exp: None,
        scale: DEFAULT_SCALE,
        seed: DEFAULT_SEED,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--exp" => {
                args.exp = Some(it.next().ok_or("--exp needs a value")?);
            }
            "--scale" => {
                args.scale = it
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad scale: {e}"))?;
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--list" => args.list = true,
            "--help" | "-h" => {
                println!(
                    "repro [--exp <id>] [--scale N] [--seed N] [--list]\n\
                     experiments: {}",
                    EXPERIMENTS.join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        for id in EXPERIMENTS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<&str> = match &args.exp {
        Some(one) => vec![one.as_str()],
        None => EXPERIMENTS.to_vec(),
    };
    println!(
        "reproducing {} experiment(s), scale {}, seed {:#x}\n",
        ids.len(),
        args.scale,
        args.seed
    );
    for id in ids {
        let started = std::time::Instant::now();
        match run_experiment(id, args.scale, args.seed) {
            Ok(table) => {
                println!("{table}");
                println!("[{id} done in {:.2?}]\n", started.elapsed());
            }
            Err(e) => {
                eprintln!("experiment {id} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
