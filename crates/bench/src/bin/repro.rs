//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```bash
//! repro                      # all experiments at the default scale
//! repro --exp fig5           # one experiment
//! repro --scale 8 --seed 42  # bigger workload, different seed
//! repro --jobs 4             # parallel sweep points inside fig4 / many-to-many
//! repro --list               # list experiment ids
//! repro --no-bench-out       # skip writing the perf ledger
//! repro --bench-out <path>   # refresh a committed ledger explicitly
//! repro --check-bench <path> # fail if throughput regressed >30% vs <path>
//! ```
//!
//! Experiments always run one at a time and print in a fixed order, so the
//! tables are byte-identical for any `--jobs` value; `--jobs` only fans the
//! independent simulation instances *inside* the sweep-shaped experiments
//! out to worker threads. Each experiment is followed by a host-side
//! throughput line (scheduler edges/sec and simulated component-cycles/sec,
//! from the kernel's activity counters), and the measurements are recorded
//! in a machine-readable ledger. By default that ledger lands in the
//! gitignored `target/BENCH_kernel.json`; the committed copy at the repo
//! root is only touched when `--bench-out` names it explicitly.

use mpsoc_bench::{ledger, measure_experiment, ExperimentRun, EXPERIMENTS};
use mpsoc_platform::experiments::{DEFAULT_SCALE, DEFAULT_SEED};
use serde::Serialize;
use std::process::ExitCode;

struct Args {
    exp: Option<String>,
    scale: u64,
    seed: u64,
    jobs: usize,
    list: bool,
    bench_out: bool,
    bench_out_path: Option<std::path::PathBuf>,
    check_bench: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        exp: None,
        scale: DEFAULT_SCALE,
        seed: DEFAULT_SEED,
        jobs: 1,
        list: false,
        bench_out: true,
        bench_out_path: None,
        check_bench: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--exp" => {
                args.exp = Some(it.next().ok_or("--exp needs a value")?);
            }
            "--scale" => {
                args.scale = it
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad scale: {e}"))?;
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--jobs" => {
                args.jobs = it
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("bad jobs: {e}"))?;
                if args.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--list" => args.list = true,
            "--no-bench-out" => args.bench_out = false,
            "--bench-out" => {
                args.bench_out_path = Some(it.next().ok_or("--bench-out needs a path")?.into());
            }
            "--check-bench" => {
                args.check_bench = Some(it.next().ok_or("--check-bench needs a path")?.into());
            }
            "--help" | "-h" => {
                println!(
                    "repro [--exp <id>] [--scale N] [--seed N] [--jobs N] [--list] \
                     [--no-bench-out] [--bench-out <path>] [--check-bench <path>]\n\
                     experiments: {}",
                    EXPERIMENTS.join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

/// The `"experiments"` section of `BENCH_kernel.json`.
#[derive(Serialize)]
struct ExperimentsSection {
    scale: u64,
    seed: u64,
    jobs: u64,
    total_wall_seconds: f64,
    total_edges: u64,
    total_ticks: u64,
    runs: Vec<ExperimentRun>,
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        for id in EXPERIMENTS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<&str> = match &args.exp {
        Some(one) => vec![one.as_str()],
        None => EXPERIMENTS.to_vec(),
    };
    println!(
        "reproducing {} experiment(s), scale {}, seed {:#x}, jobs {}\n",
        ids.len(),
        args.scale,
        args.seed,
        args.jobs
    );
    let mut runs: Vec<ExperimentRun> = Vec::with_capacity(ids.len());
    for id in ids {
        match measure_experiment(id, args.scale, args.seed, args.jobs) {
            Ok(run) => {
                println!("{}", run.table);
                println!("{}\n", run.perf_line());
                runs.push(run);
            }
            Err(e) => {
                eprintln!("experiment {id} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let section = ExperimentsSection {
        scale: args.scale,
        seed: args.seed,
        jobs: args.jobs as u64,
        total_wall_seconds: runs.iter().map(|r| r.wall_seconds).sum(),
        total_edges: runs.iter().map(|r| r.edges).sum(),
        total_ticks: runs.iter().map(|r| r.ticks).sum(),
        runs,
    };
    println!(
        "total: {} edges, {} sim cycles in {:.2}s host time",
        section.total_edges, section.total_ticks, section.total_wall_seconds
    );
    if args.bench_out {
        let path = args
            .bench_out_path
            .clone()
            .unwrap_or_else(ledger::default_path);
        match ledger::update_section(&path, "experiments", &section.to_json()) {
            Ok(()) => println!("perf ledger updated: {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(baseline) = &args.check_bench {
        return check_bench(baseline, &section.runs);
    }
    ExitCode::SUCCESS
}

/// Maximum tolerated throughput drop against the baseline ledger before
/// [`check_bench`] fails the run: 30 %, generous enough to absorb host
/// noise while still catching real scheduler regressions.
const MAX_REGRESSION: f64 = 0.30;

/// Compares the measured edges/sec of `runs` against the ledger at
/// `baseline`. Experiments missing from the baseline (newly added ones)
/// are reported but never fail the check.
fn check_bench(baseline: &std::path::Path, runs: &[ExperimentRun]) -> ExitCode {
    let doc = match std::fs::read_to_string(baseline) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("cannot read bench baseline {}: {e}", baseline.display());
            return ExitCode::FAILURE;
        }
    };
    let rates = ledger::experiment_rates(&doc);
    if rates.is_empty() {
        eprintln!(
            "bench baseline {} has no experiments section",
            baseline.display()
        );
        return ExitCode::FAILURE;
    }
    let mut regressed = false;
    for run in runs {
        let Some((_, base)) = rates.iter().find(|(id, _)| id == &run.id) else {
            println!("[check {:<14} no baseline — skipped]", run.id);
            continue;
        };
        let ratio = run.edges_per_sec / base.max(1e-9);
        let ok = ratio >= 1.0 - MAX_REGRESSION;
        println!(
            "[check {:<14} {:>10.0} vs baseline {:>10.0} edges/s — {}]",
            run.id,
            run.edges_per_sec,
            base,
            if ok { "ok" } else { "REGRESSED" }
        );
        if !ok {
            regressed = true;
        }
    }
    if regressed {
        eprintln!(
            "bench check failed: throughput dropped more than {:.0}% vs {}",
            MAX_REGRESSION * 100.0,
            baseline.display()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench check passed (threshold {:.0}%)",
        MAX_REGRESSION * 100.0
    );
    ExitCode::SUCCESS
}
