//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```bash
//! repro                      # all experiments at the default scale
//! repro --exp fig5           # one experiment
//! repro --scale 8 --seed 42  # bigger workload, different seed
//! repro --jobs 4             # parallel sweep points inside fig4 / many-to-many
//! repro --tick-jobs 4        # intra-edge parallel tick execution (identical tables)
//! repro --list               # list experiment ids with descriptions
//! repro --exp fig4 --warm-fork          # checkpoint-forked sweep + speedup
//! repro --fast-warm                     # loosely-timed warm phase: speedup vs error
//! repro --exp fig3 --fast-gear 1        # run in the fast gear (q=1: identical tables)
//! repro --exp fig4 --checkpoint-every 500 --rewind-to 2000   # time travel
//! repro --exp dse                       # design-space exploration (Pareto front)
//! repro --exp dse --dse-checkpoint f.bin --dse-checkpoint-every 1   # resumable
//! repro --exp dse --dse-checkpoint f.bin --dse-resume               # resume it
//! repro --no-bench-out       # skip writing the perf ledger
//! repro --bench-out <path>   # refresh a committed ledger explicitly
//! repro --check-bench <path> # fail if throughput regressed >30% vs <path>
//! ```
//!
//! Experiments always run one at a time and print in a fixed order, so the
//! tables are byte-identical for any `--jobs` value; `--jobs` only fans the
//! independent simulation instances *inside* the sweep-shaped experiments
//! out to worker threads. `--tick-jobs` instead parallelizes *within* each
//! simulation — parallel-safe components are computed on worker threads
//! against a frozen view and their buffered effects replayed in
//! registration order — and the kernel guarantees the output stays
//! byte-identical to serial for any value. Each experiment is followed by a host-side
//! throughput line (scheduler edges/sec and simulated component-cycles/sec,
//! from the kernel's activity counters), and the measurements are recorded
//! in a machine-readable ledger. By default that ledger lands in the
//! gitignored `target/BENCH_kernel.json`; the committed copy at the repo
//! root is only touched when `--bench-out` names it explicitly.
//!
//! `--warm-fork` runs the fig4 sweep twice — cold and via checkpoint/fork —
//! proves the tables byte-identical, and records the wall-clock speedup in
//! the ledger's `"warm_fork"` section. `--fast-warm` runs the EXT-FAST
//! study instead: the fig4 warm phase once per fast-forward quantum, each
//! finished by cycle-accurate tails, reporting warm-phase speedup and
//! worst per-cell error per quantum and recording the default-quantum
//! headline in the ledger's `"fast_forward"` section (`--check-bench`
//! then enforces the speedup floor and the quantum-1 byte identity).
//! `--fast-gear QUANTUM` runs any experiment with every simulation in the
//! loosely-timed gear — tables are approximate for quantum > 1 and
//! byte-identical to cycle-accurate at quantum 1.
//! `--checkpoint-every`/`--rewind-to` run the time-travel debug harness on
//! a representative platform of the selected experiment instead of the
//! experiment itself.
//!
//! `--exp dse` runs the design-space explorer (see the `mpsoc-dse`
//! crate): a seeded successive-halving race over fabric topologies,
//! buffer depths and memory configurations that reports the Pareto front
//! over throughput, latency and a static cost model. Its table is
//! byte-identical for any `--jobs` and for a checkpoint-interrupted,
//! resumed search (`--dse-checkpoint` + `--dse-checkpoint-every` to save
//! the frontier, `--dse-stop-after` to interrupt, `--dse-resume` to
//! continue). A completed run records the ledger's `"dse"` section;
//! `--check-bench` then enforces the front-quality floors and — when the
//! recording run fanned out on a multi-core host — the fan-out speedup.

use mpsoc_bench::{
    experiment_ids, ledger, measure_experiment, measure_fast_forward, measure_fig4_scaling,
    measure_warm_fork, set_dse_options, take_dse_run, timetravel, DseOptions, ExperimentRun,
    Fig4ScalingPoint, EXPERIMENT_REGISTRY,
};
use mpsoc_platform::experiments::{DEFAULT_SCALE, DEFAULT_SEED};
use serde::Serialize;
use std::process::ExitCode;

struct Args {
    exp: Option<String>,
    scale: u64,
    seed: u64,
    jobs: usize,
    tick_jobs: usize,
    list: bool,
    warm_fork: bool,
    fast_warm: bool,
    fast_gear: Option<u64>,
    checkpoint_every_ns: Option<u64>,
    rewind_to_ns: Option<u64>,
    bench_out: bool,
    bench_out_path: Option<std::path::PathBuf>,
    check_bench: Option<std::path::PathBuf>,
    dense: bool,
    dse_checkpoint: Option<std::path::PathBuf>,
    dse_checkpoint_every: Option<u32>,
    dse_stop_after: Option<u32>,
    dse_resume: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        exp: None,
        scale: DEFAULT_SCALE,
        seed: DEFAULT_SEED,
        jobs: 1,
        tick_jobs: 1,
        list: false,
        warm_fork: false,
        fast_warm: false,
        fast_gear: None,
        checkpoint_every_ns: None,
        rewind_to_ns: None,
        bench_out: true,
        bench_out_path: None,
        check_bench: None,
        dense: false,
        dse_checkpoint: None,
        dse_checkpoint_every: None,
        dse_stop_after: None,
        dse_resume: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--exp" => {
                args.exp = Some(it.next().ok_or("--exp needs a value")?);
            }
            "--scale" => {
                args.scale = it
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad scale: {e}"))?;
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--jobs" => {
                args.jobs = it
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("bad jobs: {e}"))?;
                if args.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--tick-jobs" => {
                args.tick_jobs = it
                    .next()
                    .ok_or("--tick-jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("bad tick jobs: {e}"))?;
                if args.tick_jobs == 0 {
                    return Err("--tick-jobs must be at least 1".into());
                }
            }
            "--list" => args.list = true,
            "--warm-fork" => args.warm_fork = true,
            "--fast-warm" => args.fast_warm = true,
            "--fast-gear" => {
                let quantum: u64 = it
                    .next()
                    .ok_or("--fast-gear needs a quantum (edges per window)")?
                    .parse()
                    .map_err(|e| format!("bad quantum: {e}"))?;
                if quantum == 0 {
                    return Err("--fast-gear quantum must be at least 1".into());
                }
                args.fast_gear = Some(quantum);
            }
            "--checkpoint-every" => {
                args.checkpoint_every_ns = Some(
                    it.next()
                        .ok_or("--checkpoint-every needs a value (ns)")?
                        .parse()
                        .map_err(|e| format!("bad checkpoint cadence: {e}"))?,
                );
            }
            "--rewind-to" => {
                args.rewind_to_ns = Some(
                    it.next()
                        .ok_or("--rewind-to needs a value (ns)")?
                        .parse()
                        .map_err(|e| format!("bad rewind target: {e}"))?,
                );
            }
            "--dse-checkpoint" => {
                args.dse_checkpoint =
                    Some(it.next().ok_or("--dse-checkpoint needs a path")?.into());
            }
            "--dse-checkpoint-every" => {
                let every: u32 = it
                    .next()
                    .ok_or("--dse-checkpoint-every needs a value (rungs)")?
                    .parse()
                    .map_err(|e| format!("bad checkpoint cadence: {e}"))?;
                if every == 0 {
                    return Err("--dse-checkpoint-every must be at least 1".into());
                }
                args.dse_checkpoint_every = Some(every);
            }
            "--dse-stop-after" => {
                args.dse_stop_after = Some(
                    it.next()
                        .ok_or("--dse-stop-after needs a value (rungs)")?
                        .parse()
                        .map_err(|e| format!("bad rung count: {e}"))?,
                );
            }
            "--dse-resume" => args.dse_resume = true,
            "--dense" => args.dense = true,
            "--no-bench-out" => args.bench_out = false,
            "--bench-out" => {
                args.bench_out_path = Some(it.next().ok_or("--bench-out needs a path")?.into());
            }
            "--check-bench" => {
                args.check_bench = Some(it.next().ok_or("--check-bench needs a path")?.into());
            }
            "--help" | "-h" => {
                println!(
                    "repro [--exp <id>] [--scale N] [--seed N] [--jobs N] [--tick-jobs N] [--list] \
                     [--warm-fork] [--fast-warm] [--fast-gear QUANTUM] \
                     [--checkpoint-every NS --rewind-to NS] [--dense] \
                     [--dse-checkpoint <path>] [--dse-checkpoint-every RUNGS] \
                     [--dse-stop-after RUNGS] [--dse-resume] \
                     [--no-bench-out] [--bench-out <path>] [--check-bench <path>]\n\
                     experiments: {}",
                    experiment_ids().join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if args.checkpoint_every_ns.is_some() != args.rewind_to_ns.is_some() {
        return Err("--checkpoint-every and --rewind-to must be given together".into());
    }
    let any_dse_flag = args.dse_checkpoint.is_some()
        || args.dse_checkpoint_every.is_some()
        || args.dse_stop_after.is_some()
        || args.dse_resume;
    if any_dse_flag && args.exp.as_deref() != Some("dse") {
        return Err("--dse-* flags only apply to `--exp dse`".into());
    }
    if (args.dse_checkpoint_every.is_some() || args.dse_stop_after.is_some() || args.dse_resume)
        && args.dse_checkpoint.is_none()
    {
        return Err(
            "--dse-checkpoint-every/--dse-stop-after/--dse-resume need --dse-checkpoint".into(),
        );
    }
    if args.rewind_to_ns.is_some() && args.exp.is_none() {
        return Err("time travel needs --exp <id> to pick the platform".into());
    }
    if args.warm_fork && args.fast_warm {
        return Err("--warm-fork and --fast-warm are separate measurements".into());
    }
    if args.warm_fork || args.fast_warm {
        let flag = if args.warm_fork {
            "--warm-fork"
        } else {
            "--fast-warm"
        };
        match args.exp.as_deref() {
            None => args.exp = Some("fig4".into()),
            Some("fig4") => {}
            Some(other) => {
                return Err(format!(
                    "{flag} only applies to the fig4 sweep, not '{other}'"
                ))
            }
        }
    }
    Ok(args)
}

/// The `"experiments"` section of `BENCH_kernel.json`. `fig4_scaling` is
/// the fig4 sweep timed over the tick-jobs ladder (kernel-v7); it stays
/// the last field so the per-run scanners, which key on `"id"`, never see
/// its objects.
#[derive(Serialize)]
struct ExperimentsSection {
    scale: u64,
    seed: u64,
    jobs: u64,
    tick_jobs: u64,
    host_cores: u64,
    dense: bool,
    total_wall_seconds: f64,
    total_edges: u64,
    total_ticks: u64,
    total_skipped: u64,
    runs: Vec<ExperimentRun>,
    fig4_scaling: Vec<Fig4ScalingPoint>,
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        // Annotate each experiment with the committed ledger's recorded
        // sparse-skip fraction, fast-forwarded (elided) cycles, and the
        // parallel-path counters (computed edge-ticks, retick fraction,
        // serial fallbacks), when a committed ledger exists.
        let activity = std::fs::read_to_string(ledger::committed_path())
            .map(|doc| ledger::experiment_activity(&doc))
            .unwrap_or_default();
        println!(
            "{:<14} {:>9} {:>6} {:>10} {:>9} {:>7} {:>8}  description",
            "experiment", "~scale-1", "skip%", "ff-cycles", "par-ticks", "retick%", "fallback"
        );
        for desc in EXPERIMENT_REGISTRY {
            let (skip, ff, par, retick, fallback) = match activity.iter().find(|a| a.id == desc.id)
            {
                Some(a) => (
                    format!("{:.0}%", a.skip_fraction() * 100.0),
                    si_u64(a.ff_elided),
                    si_u64(a.par_computed),
                    format!("{:.2}%", a.retick_fraction() * 100.0),
                    si_u64(a.par_fallback_audit + a.par_fallback_small),
                ),
                None => ("-".into(), "-".into(), "-".into(), "-".into(), "-".into()),
            };
            println!(
                "{:<14} {:>9} {skip:>6} {ff:>10} {par:>9} {retick:>7} {fallback:>8}  {}",
                desc.id, desc.runtime, desc.description
            );
        }
        return ExitCode::SUCCESS;
    }
    if args.dense {
        // Escape hatch: run every simulation with the dense (tick-
        // everything) scheduler, e.g. to cross-check the sparse tables.
        mpsoc_kernel::set_dense_default(true);
    }
    // Explicit worker counts beyond the host's cores are honoured (the
    // user may be chasing an oversubscription bug on purpose), but warned
    // about: the resulting timings measure scheduler thrash, not the code,
    // and the automatic scaling recorders clamp instead.
    let cores = host_cores();
    if (args.jobs as u64) > cores {
        eprintln!(
            "warning: --jobs {} exceeds this host's {cores} core(s); timings will \
             measure oversubscription, not scaling",
            args.jobs
        );
    }
    if (args.tick_jobs as u64) > cores {
        eprintln!(
            "warning: --tick-jobs {} exceeds this host's {cores} core(s); timings will \
             measure oversubscription, not scaling (tables stay byte-identical)",
            args.tick_jobs
        );
    }
    if args.tick_jobs > 1 {
        // Every simulation the experiments build (via PlatformBuilder)
        // picks this up at construction; tables stay byte-identical to a
        // serial run by the kernel's commit-phase determinism guarantee.
        mpsoc_kernel::set_tick_jobs_default(args.tick_jobs);
    }
    if let Some(quantum) = args.fast_gear {
        // Every simulation built from here on starts in the loosely-timed
        // gear. Tables become approximate for quantum > 1; quantum 1 is
        // byte-identical to cycle-accurate by the kernel's degenerate-gear
        // identity (ci.sh asserts it).
        mpsoc_kernel::set_fidelity_default(mpsoc_kernel::Fidelity::Fast { quantum });
    }
    if let (Some(every), Some(target)) = (args.checkpoint_every_ns, args.rewind_to_ns) {
        return time_travel(&args, every, target);
    }
    if args.warm_fork {
        return warm_fork(&args);
    }
    if args.fast_warm {
        return fast_warm(&args);
    }
    if args.exp.as_deref() == Some("dse") {
        set_dse_options(DseOptions {
            checkpoint_path: args.dse_checkpoint.clone(),
            checkpoint_every: args.dse_checkpoint_every,
            stop_after: args.dse_stop_after,
            resume: args.dse_resume,
        });
    }
    let ids: Vec<&str> = match &args.exp {
        Some(one) => vec![one.as_str()],
        None => experiment_ids(),
    };
    println!(
        "reproducing {} experiment(s), scale {}, seed {:#x}, jobs {}, tick-jobs {}{}\n",
        ids.len(),
        args.scale,
        args.seed,
        args.jobs,
        args.tick_jobs,
        match args.fast_gear {
            Some(quantum) => format!(", fast-gear quantum {quantum}"),
            None => String::new(),
        }
    );
    let mut runs: Vec<ExperimentRun> = Vec::with_capacity(ids.len());
    for id in ids {
        match measure_experiment(id, args.scale, args.seed, args.jobs) {
            Ok(run) => {
                println!("{}", run.table);
                println!("{}\n", run.perf_line());
                runs.push(run);
            }
            Err(e) => {
                eprintln!("experiment {id} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // A full-suite ledger refresh also times the fig4 sweep over the
    // tick-jobs ladder (the end-to-end face of the per-jobs scaling
    // curve); single-experiment runs skip it to stay fast.
    let fig4_scaling = if args.bench_out && args.exp.is_none() {
        match measure_fig4_scaling(args.scale, args.seed, args.tick_jobs) {
            Ok(run) => {
                let points: Vec<String> = run
                    .points
                    .iter()
                    .map(|p| format!("{}j {:.2}x", p.jobs, p.speedup))
                    .collect();
                println!(
                    "fig4 tick-jobs scaling (tables byte-identical): {}",
                    points.join(", ")
                );
                run.points
            }
            Err(e) => {
                eprintln!("fig4 scaling measurement failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        Vec::new()
    };

    let section = ExperimentsSection {
        scale: args.scale,
        seed: args.seed,
        jobs: args.jobs as u64,
        tick_jobs: args.tick_jobs as u64,
        host_cores: host_cores(),
        dense: args.dense,
        total_wall_seconds: runs.iter().map(|r| r.wall_seconds).sum(),
        total_edges: runs.iter().map(|r| r.edges).sum(),
        total_ticks: runs.iter().map(|r| r.ticks).sum(),
        total_skipped: runs.iter().map(|r| r.skipped).sum(),
        runs,
        fig4_scaling,
    };
    println!(
        "total: {} edges, {} sim cycles ({} skipped) in {:.2}s host time",
        section.total_edges, section.total_ticks, section.total_skipped, section.total_wall_seconds
    );
    let dse_run = take_dse_run();
    if args.bench_out {
        let path = args
            .bench_out_path
            .clone()
            .unwrap_or_else(ledger::default_path);
        match ledger::update_section(&path, "experiments", &section.to_json()) {
            Ok(()) => println!("perf ledger updated: {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        // A completed dse run carries its own ledger section (an
        // interrupted --dse-stop-after run records nothing).
        if let Some(run) = &dse_run {
            if let Err(e) = ledger::update_section(&path, "dse", &run.to_json()) {
                eprintln!("failed to write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(baseline) = &args.check_bench {
        return check_bench(baseline, &section.runs, &args);
    }
    ExitCode::SUCCESS
}

/// Runs the `--warm-fork` measurement and records its ledger section.
fn warm_fork(args: &Args) -> ExitCode {
    println!(
        "fig4 warm-fork, scale {}, seed {:#x}, jobs {}\n",
        args.scale, args.seed, args.jobs
    );
    let run = match measure_warm_fork(args.scale, args.seed, args.jobs) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("warm-fork failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", run.table);
    println!("{}", run.perf_line());
    if args.bench_out {
        let path = args
            .bench_out_path
            .clone()
            .unwrap_or_else(ledger::default_path);
        match ledger::update_section(&path, "warm_fork", &run.to_json()) {
            Ok(()) => println!("perf ledger updated: {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(baseline) = &args.check_bench {
        return check_warm_fork(baseline);
    }
    ExitCode::SUCCESS
}

/// Runs the `--fast-warm` measurement and records its ledger section.
fn fast_warm(args: &Args) -> ExitCode {
    println!(
        "fig4 fast-warm (loosely-timed warm phase), scale {}, seed {:#x}, jobs {}\n",
        args.scale, args.seed, args.jobs
    );
    let run = match measure_fast_forward(args.scale, args.seed, args.jobs) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("fast-warm failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", run.table);
    println!("{}", run.perf_line());
    if args.bench_out {
        let path = args
            .bench_out_path
            .clone()
            .unwrap_or_else(ledger::default_path);
        match ledger::update_section(&path, "fast_forward", &run.to_json()) {
            Ok(()) => println!("perf ledger updated: {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(baseline) = &args.check_bench {
        return check_fast_forward(baseline);
    }
    ExitCode::SUCCESS
}

/// Runs the time-travel debug harness for one experiment.
fn time_travel(args: &Args, every_ns: u64, rewind_ns: u64) -> ExitCode {
    let id = args.exp.as_deref().expect("validated in parse_args");
    match timetravel::time_travel(id, args.scale, args.seed, every_ns, rewind_ns) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("time travel failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Maximum tolerated throughput drop against the baseline ledger before
/// [`check_bench`] fails the run: 30 %, generous enough to absorb host
/// noise while still catching real scheduler regressions.
const MAX_REGRESSION: f64 = 0.30;

/// Minimum cold/fork speedup the `"warm_fork"` ledger section must show
/// for [`check_warm_fork`] to pass: forking a warm checkpoint has to beat
/// re-simulating the warm-up prefix by a clear margin, or the snapshot
/// subsystem has regressed.
const MIN_WARM_FORK_SPEEDUP: f64 = 1.5;

/// Minimum sparse-vs-dense speedup the `"sparse"` ledger section (the
/// idle-heavy `kernel_hotpath` case) must show for [`check_bench`] to
/// pass: skipping quiescent components has to beat ticking them by a
/// clear margin where idleness dominates, or sparse scheduling has
/// regressed into bookkeeping overhead.
const MIN_SPARSE_SPEEDUP: f64 = 1.3;

/// Minimum serial-vs-parallel speedup the `"parallel"` ledger section (the
/// compute-heavy `kernel_hotpath` case at 4 worker threads) must show for
/// [`check_bench`] to pass — *when the recording host actually had the
/// cores to run the workers*. A ledger recorded on a box with fewer cores
/// than tick jobs only warns: the floor is a property of the scheduler,
/// not of an oversubscribed host.
const MIN_PARALLEL_SPEEDUP: f64 = 1.5;

/// Minimum speedup the jobs = 8 point of the `"parallel"` section's
/// scaling curve must show for [`check_bench`] to pass — the headline
/// number of the sharded-active-set scheduler on the compute-heavy
/// microbench. Core-gated on 8 recorded host cores: a curve recorded on a
/// smaller box only warns.
const MIN_PARALLEL_SPEEDUP_8: f64 = 3.0;

/// Minimum speedup the jobs = 8 point of the `"experiments"` section's
/// `fig4_scaling` curve must show for [`check_bench`] to pass: the
/// end-to-end paper sweep is lighter per edge than the microbench, so the
/// bar is only "parallel ticking must not lose to serial". Core-gated on
/// 8 recorded host cores.
const MIN_FIG4_SCALING_SPEEDUP: f64 = 1.01;

/// Maximum fraction of parallel-computed edge-ticks that may be thrown
/// away and re-run serially (stats-registration or RNG-divergence
/// aborts) before [`check_bench`] fails the live run: reticks are pure
/// waste, and pre-registered metrics plus speculative RNG substreams are
/// supposed to have eliminated them on the paper experiments.
const MAX_RETICK_FRACTION: f64 = 0.01;

/// Minimum p50 miss/hit latency ratio the `"server"` ledger section must
/// show for [`check_bench`] to pass — *when the recording host had more
/// than one core*. A warm-cache hit skips the warm-up simulation entirely,
/// so it has to be measurably faster than a miss; on a single-core host
/// the loadgen lanes and the server's warm-up contend for the same CPU and
/// the latency split is noise, so the floor downgrades to a warning there
/// (the hit-rate floor still applies — correctness of the cache is not a
/// core-count property).
const MIN_SERVER_HIT_SPEEDUP: f64 = 1.2;

/// Maximum ratio a restarted server's first-request latency may bear to
/// the steady-state p50 hit latency for [`check_bench`] to pass: the disk
/// spill exists precisely so a fresh process answers its first request
/// from a warm fork instead of re-warming, so the restart figure must sit
/// near a hit, not near a cold start. Downgraded to a warning when the
/// recording host had fewer than 2 cores (the restart leg's process churn
/// and the simulator contend for one CPU there).
const MAX_WARM_RESTART_RATIO: f64 = 2.0;

/// Minimum speedup the connections = 8 point of the `"server"` section's
/// `conn_scaling` curve must keep over the single-connection baseline:
/// the poll-based connection layer must not *lose* throughput as
/// closed-loop clients are added (perfect scaling is not expected — the
/// warm cache makes the workload latency-bound — but a collapse below
/// 0.9x means connection handling itself is serializing). Core-gated on
/// 8 recorded host cores.
const MIN_CONN_SCALING_8: f64 = 0.9;

/// Minimum Pareto-front size the `"dse"` ledger section must record for
/// [`check_bench`] to pass: a front that collapses below this many
/// non-dominated points means the explorer stopped surfacing real
/// throughput/latency/cost trade-offs. A correctness property — never
/// core-gated.
const MIN_DSE_FRONT: u64 = 3;

/// Minimum number of distinct fabric families the recorded Pareto front
/// must span: a single-family front means the search degenerated into a
/// parameter sweep of one topology. Also never core-gated.
const MIN_DSE_FAMILIES: u64 = 2;

/// Minimum serial-vs-fanned-out search speedup the `"dse"` ledger
/// section must show for [`check_bench`] to pass — *when the recording
/// run fanned out at all (`jobs` >= 2) and the host had a second core to
/// fan out onto*. The candidate evaluations are independent simulations,
/// so the fan-out has to buy real wall time or `parallel_map` has
/// regressed.
const MIN_DSE_FANOUT_SPEEDUP: f64 = 1.2;

/// Minimum cycle-vs-fast warm-phase speedup the `"fast_forward"` ledger
/// section must show for [`check_bench`] / [`check_fast_forward`] to
/// pass: at the default quantum the loosely-timed gear has to beat
/// cycle-accurate simulation of the same warm phase by a clear margin, or
/// temporal decoupling has regressed into window bookkeeping. The floor is
/// a single-threaded property (the warm phases are always timed serially).
const MIN_FAST_FORWARD_SPEEDUP: f64 = 3.0;

/// Formats a count with an SI suffix for the `--list` table.
fn si_u64(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.1}G", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// The number of hardware threads available to this process.
fn host_cores() -> u64 {
    std::thread::available_parallelism().map_or(1, |n| n.get() as u64)
}

/// Re-measurements granted to an experiment whose first sample lands below
/// the regression floor before it is declared regressed. The smallest
/// experiments finish in single-digit milliseconds, where one scheduler
/// hiccup on the host halves the measured rate; a real regression fails
/// every sample, noise does not.
const CHECK_RETRIES: usize = 2;

/// Compares the measured edges/sec of `runs` against the ledger at
/// `baseline`. Experiments missing from the baseline (newly added ones)
/// are reported but never fail the check.
fn check_bench(baseline: &std::path::Path, runs: &[ExperimentRun], args: &Args) -> ExitCode {
    let doc = match std::fs::read_to_string(baseline) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("cannot read bench baseline {}: {e}", baseline.display());
            return ExitCode::FAILURE;
        }
    };
    let rates = ledger::experiment_rates(&doc);
    if rates.is_empty() {
        eprintln!(
            "bench baseline {} has no experiments section",
            baseline.display()
        );
        return ExitCode::FAILURE;
    }
    let mut regressed = false;
    for run in runs {
        let Some((_, base)) = rates.iter().find(|(id, _)| id == &run.id) else {
            println!("[check {:<14} no baseline — skipped]", run.id);
            continue;
        };
        let floor = base.max(1e-9) * (1.0 - MAX_REGRESSION);
        let mut rate = run.edges_per_sec;
        let mut retried = 0;
        while rate < floor && retried < CHECK_RETRIES {
            retried += 1;
            match measure_experiment(&run.id, args.scale, args.seed, args.jobs) {
                Ok(again) => rate = rate.max(again.edges_per_sec),
                Err(e) => {
                    eprintln!("re-measuring {} failed: {e}", run.id);
                    break;
                }
            }
        }
        let ok = rate >= floor;
        println!(
            "[check {:<14} {:>10.0} vs baseline {:>10.0} edges/s — {}{}]",
            run.id,
            rate,
            base,
            if ok { "ok" } else { "REGRESSED" },
            if retried > 0 {
                format!(" ({retried} retry)")
            } else {
                String::new()
            }
        );
        if !ok {
            regressed = true;
        }
    }
    match ledger::sparse_speedup(&doc) {
        Some(speedup) if speedup >= MIN_SPARSE_SPEEDUP => {
            println!("[check sparse speedup {speedup:.2}x >= {MIN_SPARSE_SPEEDUP}x — ok]");
        }
        Some(speedup) => {
            eprintln!(
                "sparse check failed: idle-heavy speedup {speedup:.2}x below the \
                 {MIN_SPARSE_SPEEDUP}x floor in {}",
                baseline.display()
            );
            regressed = true;
        }
        None => {
            eprintln!(
                "sparse check failed: {} has no sparse section (run \
                 `cargo bench -p mpsoc-bench --bench kernel_hotpath -- --committed`)",
                baseline.display()
            );
            regressed = true;
        }
    }
    match ledger::parallel_speedup(&doc) {
        Some(speedup) => {
            let cores = ledger::parallel_host_cores(&doc);
            let jobs = ledger::parallel_tick_jobs(&doc);
            match ledger::core_gated_floor(speedup, MIN_PARALLEL_SPEEDUP, cores, jobs) {
                ledger::FloorVerdict::Met => {
                    println!(
                        "[check parallel speedup {speedup:.2}x >= {MIN_PARALLEL_SPEEDUP}x — ok]"
                    );
                }
                ledger::FloorVerdict::Ungated => {
                    // The recording host could not physically run the
                    // workers side by side; the measurement is still
                    // byte-identity-checked, just not a speedup sample.
                    println!(
                        "[check parallel speedup {speedup:.2}x below {MIN_PARALLEL_SPEEDUP}x, \
                         but recorded host_cores {} < requested tick_jobs {} — \
                         warning only]",
                        cores.expect("ungated implies recorded"),
                        jobs.expect("ungated implies recorded"),
                    );
                }
                ledger::FloorVerdict::Missed => {
                    eprintln!(
                        "parallel check failed: speedup {speedup:.2}x below the \
                         {MIN_PARALLEL_SPEEDUP}x floor in {} (recorded host_cores {}, \
                         requested tick_jobs {})",
                        baseline.display(),
                        cores.map_or_else(|| "unknown".into(), |c| c.to_string()),
                        jobs.map_or_else(|| "unknown".into(), |j| j.to_string()),
                    );
                    regressed = true;
                }
            }
        }
        None => {
            eprintln!(
                "parallel check failed: {} has no parallel section (run \
                 `cargo bench -p mpsoc-bench --bench kernel_hotpath -- --committed`)",
                baseline.display()
            );
            regressed = true;
        }
    }
    if let (Some(jobs), cores) = (ledger::parallel_tick_jobs(&doc), host_cores()) {
        if cores < jobs {
            println!(
                "[note: this host has {cores} core(s), baseline parallel section used \
                 {jobs} jobs — live parallel re-measurement would not be meaningful]"
            );
        }
    }
    if !check_scaling_doc(&doc, baseline) {
        regressed = true;
    }
    if !check_retick_fraction(runs) {
        regressed = true;
    }
    if !check_fast_forward_doc(&doc, baseline, Some(args)) {
        regressed = true;
    }
    if !check_server_doc(&doc, baseline) {
        regressed = true;
    }
    if !check_dse_doc(&doc, baseline) {
        regressed = true;
    }
    if regressed {
        eprintln!(
            "bench check failed: throughput dropped more than {:.0}% vs {} \
             or a speedup floor was missed",
            MAX_REGRESSION * 100.0,
            baseline.display()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench check passed (threshold {:.0}%)",
        MAX_REGRESSION * 100.0
    );
    ExitCode::SUCCESS
}

/// Enforces the kernel-v7 per-jobs scaling curves: the `"parallel"`
/// section's `scaling` array must carry a jobs = 8 point at or above
/// [`MIN_PARALLEL_SPEEDUP_8`], and the `"experiments"` section's
/// `fig4_scaling` array a jobs = 8 point at or above
/// [`MIN_FIG4_SCALING_SPEEDUP`]. Both floors are core-gated on 8 recorded
/// host cores (byte-identity across the ladder is asserted by the
/// recorders themselves, so an undersized host still proves correctness —
/// just not speed). Missing curves fail outright: a v7 ledger without
/// them was recorded by a stale toolchain. Returns whether both pass.
fn check_scaling_doc(doc: &str, baseline: &std::path::Path) -> bool {
    let mut ok = true;
    let curve = ledger::parallel_scaling(doc);
    match curve.iter().find(|p| p.jobs == 8) {
        Some(point) => {
            let cores = ledger::parallel_host_cores(doc);
            match ledger::core_gated_floor(point.speedup, MIN_PARALLEL_SPEEDUP_8, cores, Some(8)) {
                ledger::FloorVerdict::Met => {
                    println!(
                        "[check parallel scaling @8 jobs {:.2}x >= \
                         {MIN_PARALLEL_SPEEDUP_8}x — ok]",
                        point.speedup
                    );
                }
                ledger::FloorVerdict::Ungated => {
                    println!(
                        "[check parallel scaling @8 jobs {:.2}x below \
                         {MIN_PARALLEL_SPEEDUP_8}x, but recorded host_cores {} < 8 — \
                         warning only]",
                        point.speedup,
                        cores.expect("ungated implies recorded"),
                    );
                }
                ledger::FloorVerdict::Missed => {
                    eprintln!(
                        "scaling check failed: parallel speedup @8 jobs {:.2}x below the \
                         {MIN_PARALLEL_SPEEDUP_8}x floor in {} (recorded host_cores {})",
                        point.speedup,
                        baseline.display(),
                        cores.map_or_else(|| "unknown".into(), |c| c.to_string()),
                    );
                    ok = false;
                }
            }
        }
        None => {
            eprintln!(
                "scaling check failed: {} has no jobs=8 point in the parallel scaling \
                 curve (run `cargo bench -p mpsoc-bench --bench kernel_hotpath -- \
                 --committed`)",
                baseline.display()
            );
            ok = false;
        }
    }
    let fig4 = ledger::fig4_scaling(doc);
    match fig4.iter().find(|p| p.jobs == 8) {
        Some(point) => {
            let cores = ledger::experiments_host_cores(doc);
            match ledger::core_gated_floor(point.speedup, MIN_FIG4_SCALING_SPEEDUP, cores, Some(8))
            {
                ledger::FloorVerdict::Met => {
                    println!(
                        "[check fig4 scaling @8 jobs {:.2}x > 1x — ok]",
                        point.speedup
                    );
                }
                ledger::FloorVerdict::Ungated => {
                    println!(
                        "[check fig4 scaling @8 jobs {:.2}x below \
                         {MIN_FIG4_SCALING_SPEEDUP}x, but recorded host_cores {} < 8 — \
                         warning only]",
                        point.speedup,
                        cores.expect("ungated implies recorded"),
                    );
                }
                ledger::FloorVerdict::Missed => {
                    eprintln!(
                        "scaling check failed: fig4 speedup @8 jobs {:.2}x below the \
                         {MIN_FIG4_SCALING_SPEEDUP}x floor in {} (recorded host_cores {})",
                        point.speedup,
                        baseline.display(),
                        cores.map_or_else(|| "unknown".into(), |c| c.to_string()),
                    );
                    ok = false;
                }
            }
        }
        None => {
            eprintln!(
                "scaling check failed: {} has no jobs=8 point in the fig4 scaling curve \
                 (run `repro --bench-out <path>` for the full suite)",
                baseline.display()
            );
            ok = false;
        }
    }
    ok
}

/// Enforces [`MAX_RETICK_FRACTION`] on the *live* runs just measured: when
/// the suite took the parallel path at all, the fraction of computed
/// edge-ticks that had to be thrown away and re-run serially must stay
/// under 1 %. A serial run (`par_computed == 0` everywhere) passes
/// trivially. Returns whether the check passes.
fn check_retick_fraction(runs: &[ExperimentRun]) -> bool {
    let computed: u64 = runs.iter().map(|r| r.par_computed).sum();
    let reticked: u64 = runs.iter().map(|r| r.par_reticked).sum();
    if computed == 0 {
        return true;
    }
    let fraction = reticked as f64 / computed as f64;
    if fraction < MAX_RETICK_FRACTION {
        println!(
            "[check parallel reticks {reticked} / {computed} computed ({:.3}%) < \
             {:.0}% — ok]",
            fraction * 100.0,
            MAX_RETICK_FRACTION * 100.0
        );
        true
    } else {
        eprintln!(
            "retick check failed: {reticked} of {computed} parallel-computed edge-ticks \
             ({:.2}%) were thrown away and re-run serially (floor {:.0}%) — a component \
             is minting stats ids or drawing unannounced RNG inside parallel ticks",
            fraction * 100.0,
            MAX_RETICK_FRACTION * 100.0
        );
        false
    }
}

/// Enforces the `"server"` ledger section: it must exist (the sweep server
/// is part of the benchmarked surface), record a nonzero warm-cache hit
/// rate (a duplicate-heavy mix that never hits means the cache is broken),
/// and show at least [`MIN_SERVER_HIT_SPEEDUP`] between p50 miss and p50
/// hit latency — downgraded to a warning when the recording host had fewer
/// than 2 cores. Returns whether the section passes.
fn check_server_doc(doc: &str, baseline: &std::path::Path) -> bool {
    let Some(hit_rate) = ledger::server_hit_rate(doc) else {
        eprintln!(
            "server check failed: {} has no server section (start `simserved` and run \
             `loadgen --bench-out <path>`)",
            baseline.display()
        );
        return false;
    };
    if hit_rate <= 0.0 {
        eprintln!(
            "server check failed: {} records a zero warm-cache hit rate for the \
             duplicate-heavy loadgen mix — the checkpoint cache is not being reused",
            baseline.display()
        );
        return false;
    }
    let rps = ledger::server_requests_per_sec(doc).unwrap_or(0.0);
    let base_ok = match ledger::server_hit_speedup(doc) {
        Some(speedup) => {
            let cores = ledger::server_host_cores(doc);
            // A hit must beat a miss wherever client and server can
            // actually run side by side: the floor needs 2 cores.
            match ledger::core_gated_floor(speedup, MIN_SERVER_HIT_SPEEDUP, cores, Some(2)) {
                ledger::FloorVerdict::Met => {
                    println!(
                        "[check server hit rate {hit_rate:.2}, {rps:.1} req/s, hit speedup \
                         {speedup:.2}x >= {MIN_SERVER_HIT_SPEEDUP}x — ok]"
                    );
                    true
                }
                ledger::FloorVerdict::Ungated => {
                    println!(
                        "[check server hit rate {hit_rate:.2}, {rps:.1} req/s, hit speedup \
                         {speedup:.2}x below {MIN_SERVER_HIT_SPEEDUP}x, but recorded \
                         host_cores {} < 2 — warning only]",
                        cores.expect("ungated implies recorded"),
                    );
                    true
                }
                ledger::FloorVerdict::Missed => {
                    eprintln!(
                        "server check failed: hit speedup {speedup:.2}x below the \
                         {MIN_SERVER_HIT_SPEEDUP}x floor in {} (recorded host_cores {})",
                        baseline.display(),
                        cores.map_or_else(|| "unknown".into(), |c| c.to_string()),
                    );
                    false
                }
            }
        }
        None => {
            eprintln!(
                "server check failed: {} has a server section without a hit_speedup \
                 field",
                baseline.display()
            );
            false
        }
    };
    let v8_ok = check_server_v8_doc(doc, baseline);
    base_ok && v8_ok
}

/// Enforces the kernel-v8 server figures. Hard (never core-gated):
/// coalescing must have kept the recorded warm-up count within the mix's
/// distinct warm keys, and every v8 field must be present — a server
/// section without them was recorded by a stale toolchain. Core-gated:
/// the warm-restart first-request latency against
/// [`MAX_WARM_RESTART_RATIO`] x the steady-state p50 hit (needs 2 cores)
/// and the connections = 8 scaling point against [`MIN_CONN_SCALING_8`]
/// (needs 8). Returns whether the section passes.
fn check_server_v8_doc(doc: &str, baseline: &std::path::Path) -> bool {
    let mut ok = true;
    let cores = ledger::server_host_cores(doc);
    let (Some(warm_ups), Some(distinct_keys)) = (
        ledger::server_warm_ups(doc),
        ledger::server_distinct_keys(doc),
    ) else {
        eprintln!(
            "server check failed: {} has a server section without the kernel-v8 \
             coalescing fields (warm_ups/distinct_keys) — regenerate with \
             `loadgen --bench-out <path>`",
            baseline.display()
        );
        return false;
    };
    if warm_ups > distinct_keys {
        eprintln!(
            "server check failed: {warm_ups} warm-up(s) for {distinct_keys} distinct warm \
             key(s) in {} — request coalescing is not collapsing duplicate-key misses",
            baseline.display()
        );
        ok = false;
    } else {
        println!("[check server warm-ups {warm_ups} <= {distinct_keys} distinct warm keys — ok]");
    }
    match ledger::server_batch_speedup(doc) {
        // The batched/unbatched throughput split is recorded provenance,
        // not a floor: both runs are all-miss by construction, so on small
        // hosts the ratio is dominated by warm-up scheduling noise.
        Some(batch_speedup) => {
            println!("[check server batch speedup {batch_speedup:.2}x recorded — ok]");
        }
        None => {
            eprintln!(
                "server check failed: {} has a server section without a batch_speedup \
                 field",
                baseline.display()
            );
            ok = false;
        }
    }
    let cold = ledger::server_cold_start_first_micros(doc);
    match (
        ledger::server_warm_restart_first_micros(doc),
        ledger::server_p50_hit_micros(doc),
    ) {
        (Some(restart), Some(hit)) if hit > 0 => {
            let ratio = restart as f64 / hit as f64;
            let cold_note = cold.map_or_else(String::new, |c| format!(" (cold start {c}us)"));
            if ratio <= MAX_WARM_RESTART_RATIO {
                println!(
                    "[check server warm-restart first request {restart}us <= \
                     {MAX_WARM_RESTART_RATIO}x p50 hit {hit}us{cold_note} — ok]"
                );
            } else if cores.is_some_and(|c| c < 2) {
                println!(
                    "[check server warm-restart first request {restart}us above \
                     {MAX_WARM_RESTART_RATIO}x p50 hit {hit}us{cold_note}, but recorded \
                     host_cores {} < 2 — warning only]",
                    cores.expect("checked above"),
                );
            } else {
                eprintln!(
                    "server check failed: warm-restart first request {restart}us exceeds \
                     {MAX_WARM_RESTART_RATIO}x the p50 hit latency {hit}us in {} — the \
                     disk spill is not being served on restart",
                    baseline.display()
                );
                ok = false;
            }
        }
        _ => {
            eprintln!(
                "server check failed: {} has a server section without the \
                 warm_restart_first_micros/p50_hit_micros fields (run the loadgen \
                 restart leg: `loadgen --restart-leg --bench-out <path>`)",
                baseline.display()
            );
            ok = false;
        }
    }
    let curve = ledger::server_conn_scaling(doc);
    match curve.iter().find(|p| p.connections == 8) {
        Some(point) => {
            match ledger::core_gated_floor(point.speedup, MIN_CONN_SCALING_8, cores, Some(8)) {
                ledger::FloorVerdict::Met => {
                    println!(
                        "[check server conn scaling @8 connections {:.2}x >= \
                         {MIN_CONN_SCALING_8}x — ok]",
                        point.speedup
                    );
                }
                ledger::FloorVerdict::Ungated => {
                    println!(
                        "[check server conn scaling @8 connections {:.2}x below \
                         {MIN_CONN_SCALING_8}x, but recorded host_cores {} < 8 — \
                         warning only]",
                        point.speedup,
                        cores.expect("ungated implies recorded"),
                    );
                }
                ledger::FloorVerdict::Missed => {
                    eprintln!(
                        "server check failed: conn scaling @8 connections {:.2}x below \
                         the {MIN_CONN_SCALING_8}x floor in {} (recorded host_cores {}) — \
                         the connection layer is serializing under load",
                        point.speedup,
                        baseline.display(),
                        cores.map_or_else(|| "unknown".into(), |c| c.to_string()),
                    );
                    ok = false;
                }
            }
        }
        None => {
            eprintln!(
                "server check failed: {} has no connections=8 point in the conn_scaling \
                 curve (regenerate with `loadgen --bench-out <path>`)",
                baseline.display()
            );
            ok = false;
        }
    }
    ok
}

/// Enforces the `"dse"` ledger section: it must exist (the design-space
/// explorer is part of the benchmarked surface), record a non-degenerate
/// Pareto front (at least [`MIN_DSE_FRONT`] points spanning at least
/// [`MIN_DSE_FAMILIES`] fabric families — both correctness properties,
/// never core-gated), and show at least [`MIN_DSE_FANOUT_SPEEDUP`]
/// between the serial and fanned-out search — a floor that only arms
/// when the recording run actually fanned out (`jobs` >= 2) on a host
/// with at least 2 cores. Returns whether the section passes.
fn check_dse_doc(doc: &str, baseline: &std::path::Path) -> bool {
    let Some(front_size) = ledger::dse_front_size(doc) else {
        eprintln!(
            "dse check failed: {} has no dse section (run \
             `repro --exp dse --bench-out <path>`)",
            baseline.display()
        );
        return false;
    };
    let families = ledger::dse_families(doc).unwrap_or(0);
    if front_size < MIN_DSE_FRONT || families < MIN_DSE_FAMILIES {
        eprintln!(
            "dse check failed: {} records a degenerate Pareto front \
             ({front_size} point(s) over {families} fabric family(ies); need >= \
             {MIN_DSE_FRONT} over >= {MIN_DSE_FAMILIES}) — the search is no longer \
             finding real trade-offs",
            baseline.display()
        );
        return false;
    }
    let jobs = ledger::dse_jobs(doc).unwrap_or(1);
    let Some(speedup) = ledger::dse_fanout_speedup(doc) else {
        eprintln!(
            "dse check failed: {} has a dse section without a fanout_speedup field",
            baseline.display()
        );
        return false;
    };
    if jobs < 2 {
        // A serial recording never measured a fan-out; the front checks
        // above are the whole verdict.
        println!(
            "[check dse front {front_size} points / {families} families — ok \
             (serial recording, fan-out floor not armed)]"
        );
        return true;
    }
    let cores = ledger::dse_host_cores(doc);
    match ledger::core_gated_floor(speedup, MIN_DSE_FANOUT_SPEEDUP, cores, Some(2)) {
        ledger::FloorVerdict::Met => {
            println!(
                "[check dse front {front_size} points / {families} families, fanout \
                 speedup {speedup:.2}x >= {MIN_DSE_FANOUT_SPEEDUP}x — ok]"
            );
            true
        }
        ledger::FloorVerdict::Ungated => {
            println!(
                "[check dse front {front_size} points / {families} families, fanout \
                 speedup {speedup:.2}x below {MIN_DSE_FANOUT_SPEEDUP}x, but recorded \
                 host_cores {} < 2 — warning only]",
                cores.expect("ungated implies recorded"),
            );
            true
        }
        ledger::FloorVerdict::Missed => {
            eprintln!(
                "dse check failed: fanout speedup {speedup:.2}x below the \
                 {MIN_DSE_FANOUT_SPEEDUP}x floor in {} (recorded jobs {jobs}, \
                 host_cores {})",
                baseline.display(),
                cores.map_or_else(|| "unknown".into(), |c| c.to_string()),
            );
            false
        }
    }
}

/// Enforces the warm-fork speedup floor against the ledger at `baseline`:
/// its `"warm_fork"` section must exist and show at least
/// [`MIN_WARM_FORK_SPEEDUP`].
fn check_warm_fork(baseline: &std::path::Path) -> ExitCode {
    let doc = match std::fs::read_to_string(baseline) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("cannot read bench baseline {}: {e}", baseline.display());
            return ExitCode::FAILURE;
        }
    };
    match ledger::warm_fork_speedup(&doc) {
        Some(speedup) if speedup >= MIN_WARM_FORK_SPEEDUP => {
            println!("[check warm-fork speedup {speedup:.2}x >= {MIN_WARM_FORK_SPEEDUP}x — ok]");
            ExitCode::SUCCESS
        }
        Some(speedup) => {
            eprintln!(
                "warm-fork check failed: speedup {speedup:.2}x below the \
                 {MIN_WARM_FORK_SPEEDUP}x floor in {}",
                baseline.display()
            );
            ExitCode::FAILURE
        }
        None => {
            eprintln!(
                "warm-fork check failed: {} has no warm_fork section",
                baseline.display()
            );
            ExitCode::FAILURE
        }
    }
}

/// Enforces the fast-forward gear's floors against the ledger at
/// `baseline`: its `"fast_forward"` section must exist, record a
/// `quantum = 1` sweep byte-identical to cycle-accurate, and show at least
/// [`MIN_FAST_FORWARD_SPEEDUP`] at the default quantum.
fn check_fast_forward(baseline: &std::path::Path) -> ExitCode {
    let doc = match std::fs::read_to_string(baseline) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("cannot read bench baseline {}: {e}", baseline.display());
            return ExitCode::FAILURE;
        }
    };
    if check_fast_forward_doc(&doc, baseline, None) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Shared body of the fast-forward ledger checks; returns whether the
/// section passes. When `args` is given, a below-floor recorded speedup is
/// granted [`CHECK_RETRIES`] live re-measurements (the live sample must
/// clear the same floor) before the check fails — matching the noise
/// policy of the per-experiment throughput floors.
fn check_fast_forward_doc(doc: &str, baseline: &std::path::Path, args: Option<&Args>) -> bool {
    match ledger::fast_forward_q1_identical(doc) {
        Some(true) => {}
        Some(false) => {
            eprintln!(
                "fast-forward check failed: {} records a quantum-1 sweep that DIVERGED \
                 from cycle-accurate — a correctness regression, not a perf one",
                baseline.display()
            );
            return false;
        }
        None => {
            eprintln!(
                "fast-forward check failed: {} has no fast_forward section (run \
                 `repro --fast-warm --bench-out <path>`)",
                baseline.display()
            );
            return false;
        }
    }
    let quantum = ledger::fast_forward_quantum(doc).unwrap_or(0);
    match ledger::fast_forward_speedup(doc) {
        Some(speedup) if speedup >= MIN_FAST_FORWARD_SPEEDUP => {
            println!(
                "[check fast-forward q={quantum} speedup {speedup:.2}x >= \
                 {MIN_FAST_FORWARD_SPEEDUP}x, q=1 identical — ok]"
            );
            true
        }
        Some(speedup) => {
            let mut best = speedup;
            let mut retried = 0;
            if let Some(args) = args {
                while best < MIN_FAST_FORWARD_SPEEDUP && retried < CHECK_RETRIES {
                    retried += 1;
                    match measure_fast_forward(args.scale, args.seed, args.jobs) {
                        Ok(again) => best = best.max(again.speedup),
                        Err(e) => {
                            eprintln!("re-measuring fast-forward failed: {e}");
                            break;
                        }
                    }
                }
            }
            if best >= MIN_FAST_FORWARD_SPEEDUP {
                println!(
                    "[check fast-forward q={quantum} speedup {best:.2}x >= \
                     {MIN_FAST_FORWARD_SPEEDUP}x, q=1 identical — ok ({retried} retry)]"
                );
                true
            } else {
                eprintln!(
                    "fast-forward check failed: warm-phase speedup {best:.2}x below the \
                     {MIN_FAST_FORWARD_SPEEDUP}x floor in {}",
                    baseline.display()
                );
                false
            }
        }
        None => {
            eprintln!(
                "fast-forward check failed: {} has a fast_forward section without a \
                 speedup field",
                baseline.display()
            );
            false
        }
    }
}
