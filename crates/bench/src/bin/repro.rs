//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```bash
//! repro                      # all experiments at the default scale
//! repro --exp fig5           # one experiment
//! repro --scale 8 --seed 42  # bigger workload, different seed
//! repro --jobs 4             # parallel sweep points inside fig4 / many-to-many
//! repro --list               # list experiment ids
//! repro --no-bench-out       # skip writing BENCH_kernel.json
//! ```
//!
//! Experiments always run one at a time and print in a fixed order, so the
//! tables are byte-identical for any `--jobs` value; `--jobs` only fans the
//! independent simulation instances *inside* the sweep-shaped experiments
//! out to worker threads. Each experiment is followed by a host-side
//! throughput line (scheduler edges/sec and simulated component-cycles/sec,
//! from the kernel's activity counters), and the measurements are recorded
//! in the machine-readable `BENCH_kernel.json` ledger.

use mpsoc_bench::{ledger, measure_experiment, ExperimentRun, EXPERIMENTS};
use mpsoc_platform::experiments::{DEFAULT_SCALE, DEFAULT_SEED};
use serde::Serialize;
use std::process::ExitCode;

struct Args {
    exp: Option<String>,
    scale: u64,
    seed: u64,
    jobs: usize,
    list: bool,
    bench_out: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        exp: None,
        scale: DEFAULT_SCALE,
        seed: DEFAULT_SEED,
        jobs: 1,
        list: false,
        bench_out: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--exp" => {
                args.exp = Some(it.next().ok_or("--exp needs a value")?);
            }
            "--scale" => {
                args.scale = it
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad scale: {e}"))?;
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--jobs" => {
                args.jobs = it
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("bad jobs: {e}"))?;
                if args.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--list" => args.list = true,
            "--no-bench-out" => args.bench_out = false,
            "--help" | "-h" => {
                println!(
                    "repro [--exp <id>] [--scale N] [--seed N] [--jobs N] [--list] [--no-bench-out]\n\
                     experiments: {}",
                    EXPERIMENTS.join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

/// The `"experiments"` section of `BENCH_kernel.json`.
#[derive(Serialize)]
struct ExperimentsSection {
    scale: u64,
    seed: u64,
    jobs: u64,
    total_wall_seconds: f64,
    total_edges: u64,
    total_ticks: u64,
    runs: Vec<ExperimentRun>,
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        for id in EXPERIMENTS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<&str> = match &args.exp {
        Some(one) => vec![one.as_str()],
        None => EXPERIMENTS.to_vec(),
    };
    println!(
        "reproducing {} experiment(s), scale {}, seed {:#x}, jobs {}\n",
        ids.len(),
        args.scale,
        args.seed,
        args.jobs
    );
    let mut runs: Vec<ExperimentRun> = Vec::with_capacity(ids.len());
    for id in ids {
        match measure_experiment(id, args.scale, args.seed, args.jobs) {
            Ok(run) => {
                println!("{}", run.table);
                println!("{}\n", run.perf_line());
                runs.push(run);
            }
            Err(e) => {
                eprintln!("experiment {id} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let section = ExperimentsSection {
        scale: args.scale,
        seed: args.seed,
        jobs: args.jobs as u64,
        total_wall_seconds: runs.iter().map(|r| r.wall_seconds).sum(),
        total_edges: runs.iter().map(|r| r.edges).sum(),
        total_ticks: runs.iter().map(|r| r.ticks).sum(),
        runs,
    };
    println!(
        "total: {} edges, {} sim cycles in {:.2}s host time",
        section.total_edges, section.total_ticks, section.total_wall_seconds
    );
    if args.bench_out {
        let path = ledger::default_path();
        match ledger::update_section(&path, "experiments", &section.to_json()) {
            Ok(()) => println!("perf ledger updated: {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
