//! Time-travel debugging: periodic checkpoints, rewind, traced replay.
//!
//! `repro --exp <id> --checkpoint-every <ns> --rewind-to <ns>` drives this
//! module. A representative platform for the experiment runs forward while
//! the harness checkpoints it every N simulated nanoseconds; the harness
//! then *rewinds* — restores the last checkpoint taken before the
//! requested instant into a fresh platform — arms event tracing, and
//! deterministically re-executes the window up to the target. Because the
//! kernel replays bit-for-bit, the traced re-run shows exactly what the
//! original (untraced) pass did around the instant of interest; the
//! harness proves it by byte-comparing a checkpoint taken at the target
//! against one from the reference pass. Trace buffers are deliberately
//! outside the snapshot, so arming tracing cannot perturb the comparison.

use mpsoc_kernel::{SimError, SimResult, SnapshotBlob, SnapshotError, Time};
use mpsoc_memory::LmiConfig;
use mpsoc_platform::{build_platform, Fidelity, MemorySystem, PlatformSpec, Topology, Workload};
use mpsoc_protocol::ProtocolKind;
use std::fmt;

/// Trace-buffer capacity armed for the replay window.
const TRACE_CAPACITY: usize = 4096;

/// Trailing trace records included in the rendered report.
const TRACE_TAIL: usize = 20;

/// A platform specification exercising the subsystems the experiment `id`
/// is about — the stage on which the time-travel debugger operates.
///
/// The sweep-shaped experiments run many platform instances; rewinding
/// needs exactly one, so each id maps to a single representative point
/// (the `noc` mesh study gets the distributed STBus platform as its
/// platform-shaped proxy). Returns `None` for unknown ids.
pub fn representative_spec(id: &str, scale: u64, seed: u64) -> Option<PlatformSpec> {
    let base = PlatformSpec {
        scale,
        seed,
        ..PlatformSpec::default()
    };
    let spec = match id {
        "many-to-many" | "buffering" => PlatformSpec {
            topology: Topology::SingleLayer,
            ..base
        },
        "many-to-one" => PlatformSpec {
            topology: Topology::SingleLayer,
            protocol: ProtocolKind::Ahb,
            ..base
        },
        // The design-space explorer races many candidate fabrics; its
        // time-travel stage is the same full distributed platform the
        // fig3/noc studies use.
        "fig3" | "noc" | "dse" => base,
        // The fast-forward gear study sweeps the same fig4 platform, so it
        // shares fig4's representative point.
        "fig4" | "fidelity" => PlatformSpec {
            workload: Workload::BurstyPosted,
            memory: MemorySystem::OnChip { wait_states: 8 },
            ..base
        },
        "fig5" | "lmi" | "arbitration" | "robustness" => PlatformSpec {
            memory: MemorySystem::Lmi(LmiConfig::default()),
            ..base
        },
        "fig6" => PlatformSpec {
            workload: Workload::TwoPhase,
            memory: MemorySystem::Lmi(LmiConfig::default()),
            ..base
        },
        "bridges" => PlatformSpec {
            protocol: ProtocolKind::Axi,
            ..base
        },
        "tlm" => PlatformSpec {
            fidelity: Fidelity::TransactionLevel,
            ..base
        },
        "dual-channel" => PlatformSpec {
            memory: MemorySystem::DualLmi(LmiConfig::default()),
            ..base
        },
        _ => return None,
    };
    Some(spec)
}

/// The result of one rewind-and-replay session, printable as a report.
#[derive(Debug)]
pub struct TimeTravelReport {
    /// Experiment id the representative platform was derived from.
    pub id: String,
    /// Checkpoint cadence of the reference pass.
    pub every: Time,
    /// Number of checkpoints the reference pass retained.
    pub checkpoints: usize,
    /// Size of one checkpoint blob in bytes.
    pub blob_bytes: usize,
    /// Simulation time the reference pass reached (`<=` the target when
    /// the platform drains early).
    pub reference_end: Time,
    /// The requested rewind target.
    pub target: Time,
    /// Checkpoint instant the replay restored.
    pub origin: Time,
    /// Trace records captured during the replay window.
    pub trace_len: usize,
    /// Trace records evicted from the ring buffer during the window.
    pub trace_dropped: u64,
    /// The last few trace records of the replayed window, one per line.
    pub trace_tail: String,
}

impl fmt::Display for TimeTravelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TIME-TRAVEL {} (representative platform)", self.id)?;
        writeln!(
            f,
            "  checkpoints     : {} every {} ({} bytes each)",
            self.checkpoints, self.every, self.blob_bytes
        )?;
        writeln!(f, "  reference end   : {}", self.reference_end)?;
        writeln!(
            f,
            "  rewind          : target {}, restored checkpoint at {}",
            self.target, self.origin
        )?;
        writeln!(
            f,
            "  state at target : verified byte-identical to the reference pass"
        )?;
        writeln!(
            f,
            "  trace window    : {} events captured, {} dropped; last {}:",
            self.trace_len,
            self.trace_dropped,
            self.trace_tail.lines().count()
        )?;
        for line in self.trace_tail.lines() {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

/// Runs the reference pass with periodic checkpoints, rewinds to the last
/// checkpoint before `rewind_ns`, replays the window with tracing armed,
/// and byte-verifies the replayed state against the reference.
///
/// # Errors
///
/// Fails for unknown experiment ids, on platform build/restore failures,
/// and — the self-check — if the replayed checkpoint at the target differs
/// from the reference pass in any byte.
pub fn time_travel(
    id: &str,
    scale: u64,
    seed: u64,
    every_ns: u64,
    rewind_ns: u64,
) -> SimResult<TimeTravelReport> {
    let spec = representative_spec(id, scale, seed).ok_or_else(|| SimError::InvalidConfig {
        reason: format!(
            "unknown experiment '{id}'; expected one of {}",
            crate::experiment_ids().join(", ")
        ),
    })?;
    if every_ns == 0 {
        return Err(SimError::InvalidConfig {
            reason: "--checkpoint-every must be at least 1 ns".into(),
        });
    }
    let every = Time::from_ns(every_ns);
    let target = Time::from_ns(rewind_ns);

    // Reference pass: checkpoint every `every` up to the target, then one
    // reference checkpoint exactly at the target instant.
    let mut platform = build_platform(&spec)?;
    let mut checkpoints: Vec<(Time, SnapshotBlob)> = vec![(Time::ZERO, platform.checkpoint())];
    let mut t = Time::ZERO;
    while t + every < target {
        t += every;
        platform.sim_mut().run_until(t);
        checkpoints.push((t, platform.checkpoint()));
        if platform.sim().is_quiescent() {
            break;
        }
    }
    platform.sim_mut().run_until(target);
    let reference = platform.checkpoint();
    let reference_end = platform.sim().time();

    // Rewind: restore the newest checkpoint strictly before the target
    // into a *fresh* platform, arm tracing, replay the window.
    let (origin, blob) = checkpoints
        .iter()
        .rev()
        .find(|(at, _)| *at < target)
        .unwrap_or(&checkpoints[0]);
    let mut replay = build_platform(&spec)?;
    replay.restore(blob)?;
    replay.enable_tracing(TRACE_CAPACITY);
    replay.sim_mut().run_until(target);
    let replayed = replay.checkpoint();
    if replayed.as_bytes() != reference.as_bytes() {
        return Err(SimError::Snapshot {
            source: SnapshotError::StructureMismatch {
                detail: format!(
                    "time-travel self-check failed: replaying {} -> {} diverged from the \
                     reference pass",
                    origin, target
                ),
            },
        });
    }

    let trace = replay.sim().stats().trace();
    let tail: Vec<String> = trace
        .records()
        .rev()
        .take(TRACE_TAIL)
        .map(|r| r.to_string())
        .collect();
    let trace_tail = tail.into_iter().rev().collect::<Vec<_>>().join("\n");
    Ok(TimeTravelReport {
        id: id.to_string(),
        every,
        checkpoints: checkpoints.len(),
        blob_bytes: reference.len(),
        reference_end,
        target,
        origin: *origin,
        trace_len: trace.len(),
        trace_dropped: trace.dropped(),
        trace_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_has_a_representative_spec() {
        for id in crate::experiment_ids() {
            assert!(
                representative_spec(id, 1, 1).is_some(),
                "no representative platform for '{id}'"
            );
        }
        assert!(representative_spec("nope", 1, 1).is_none());
    }

    #[test]
    fn rewind_verifies_against_the_reference_pass() {
        let report = time_travel("fig4", 1, 0x0dab, 500, 2_000).expect("time travel runs");
        assert!(report.checkpoints >= 2, "periodic checkpoints retained");
        assert_eq!(report.target, Time::from_ns(2_000));
        assert!(report.origin < report.target);
        assert!(report.trace_len > 0, "the replay window must be traced");
        let text = report.to_string();
        assert!(text.contains("verified byte-identical"));
    }

    #[test]
    fn unknown_id_is_rejected() {
        let err = time_travel("nope", 1, 1, 100, 1_000).unwrap_err();
        assert!(err.to_string().contains("unknown experiment"));
    }
}
