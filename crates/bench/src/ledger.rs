//! The `BENCH_kernel.json` performance ledger.
//!
//! One machine-readable file records the kernel's measured throughput from
//! two producers:
//!
//! * the `repro` binary writes the `"experiments"` section (per-experiment
//!   edges/sec and simulated-cycles/sec),
//! * `repro --warm-fork` writes the `"warm_fork"` section (cold vs
//!   checkpoint-forked fig4 sweep wall time and the speedup ratio), and
//! * the `kernel_hotpath` microbench writes the `"microbench"` section
//!   (bucketed vs naive scheduler edges/sec and the speedup ratio) and the
//!   `"sparse"` section (sparse vs dense ticking on the idle-heavy case),
//!   and
//! * the `loadgen` client writes the `"server"` section (sweep-server
//!   requests/sec, latency percentiles and warm-cache hit rate), and
//! * `repro --exp dse` writes the `"dse"` section (design-space search
//!   shape, per-rung sim-cycle accounting, Pareto-front size and the
//!   evaluation fan-out speedup).
//!
//! Each writer regenerates the whole file but preserves the other's section
//! verbatim. The file layout is deliberately line-oriented — every section
//! is one compact JSON value on its own line — so preserving a section is a
//! prefix match, not a JSON parse. Only this module writes the file, so the
//! invariant holds.

use std::io;
use std::path::{Path, PathBuf};

/// Default ledger file name; see [`default_path`] for where it lands.
pub const LEDGER_PATH: &str = "BENCH_kernel.json";

/// The workspace root: the nearest ancestor of the current directory that
/// contains a `Cargo.lock` (whether the writer is a binary run from the
/// root or a bench run from its package directory), falling back to the
/// current directory itself.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return cwd,
        }
    }
}

/// Default ledger location: `target/BENCH_kernel.json` under the workspace
/// root. `target/` is gitignored, so routine runs never dirty the working
/// tree; refreshing the *committed* ledger takes an explicit
/// `--bench-out` (see [`committed_path`]).
pub fn default_path() -> PathBuf {
    workspace_root().join("target").join(LEDGER_PATH)
}

/// The committed ledger checked into the repository root. Only written
/// when a caller passes it explicitly (e.g. `repro --bench-out`).
pub fn committed_path() -> PathBuf {
    workspace_root().join(LEDGER_PATH)
}

/// Schema tag stamped into the ledger. `v2` added the sparse-ticking
/// fields (`skipped` per experiment, the idle-heavy microbench case);
/// `v3` added the `"parallel"` section plus the `host_cores` and
/// `tick_jobs` fields that make a recorded parallel speedup judgeable on
/// a different machine; `v4` added the `"fast_forward"` section (the
/// loosely-timed gear's warm-phase speedup, error and quantum-1 identity)
/// and the per-experiment `ff_windows`/`ff_elided` counters; `v5` added
/// the `"server"` section (the sweep server's requests/sec, latency
/// percentiles and warm-cache hit rate, recorded by `loadgen
/// --bench-out`); `v6` added the `"dse"` section (the design-space
/// explorer's candidate count, per-rung sim-cycle accounting, wall
/// seconds, Pareto-front size and evaluation fan-out speedup, recorded
/// by `repro --exp dse`); `v7` added the per-jobs scaling curves — the
/// `"parallel"` section's `scaling` array (compute-heavy microbench at
/// jobs 1/2/4/8) and the `"experiments"` section's `fig4_scaling` array
/// (the end-to-end fig4 sweep over the same job ladder) — plus the
/// per-experiment parallel activity counters (`par_edges`,
/// `par_computed`, `par_reticked`, `par_fallback_*`); `v8` extended the
/// `"server"` section with the coalescing/persistence figures
/// (`warm_ups`, `distinct_keys`, `batched_requests_per_sec`,
/// `unbatched_requests_per_sec`, `batch_speedup`,
/// `cold_start_first_micros`, `warm_restart_first_micros` and the
/// per-connections `conn_scaling` curve) and annotated scaling-curve
/// points with `effective_jobs`/`oversubscribed` (worker counts are now
/// clamped to the host's cores unless forced). Readers scan by field
/// prefix and accept any version.
pub const SCHEMA: &str = "mpsoc-bench/kernel-v8";

/// The known top-level sections, in the order they appear in the file.
const SECTIONS: [&str; 8] = [
    "experiments",
    "warm_fork",
    "microbench",
    "sparse",
    "parallel",
    "fast_forward",
    "server",
    "dse",
];

/// Replaces `section` of the ledger at `path` with `value_json`, keeping
/// every other known section from the existing file (if any).
///
/// `value_json` must be a single-line JSON value; this is asserted because
/// a multi-line value would break the line-oriented preservation scheme.
///
/// # Errors
///
/// Propagates I/O errors from reading or writing the ledger file.
pub fn update_section(path: &Path, section: &str, value_json: &str) -> io::Result<()> {
    assert!(
        SECTIONS.contains(&section),
        "unknown ledger section '{section}'"
    );
    assert!(
        !value_json.contains('\n'),
        "ledger sections must be single-line JSON"
    );

    let existing = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }

    let mut doc = format!("{{\n\"schema\": {SCHEMA:?}");
    for &name in &SECTIONS {
        let value = if name == section {
            Some(value_json.to_string())
        } else {
            extract_section(&existing, name)
        };
        if let Some(value) = value {
            doc.push_str(&format!(",\n\"{name}\": {value}"));
        }
    }
    doc.push_str("\n}\n");
    std::fs::write(path, doc)
}

/// Pulls the raw single-line value of `name` out of an existing ledger.
pub fn extract_section(doc: &str, name: &str) -> Option<String> {
    let prefix = format!("\"{name}\": ");
    for line in doc.lines() {
        if let Some(rest) = line.strip_prefix(&prefix) {
            return Some(rest.trim_end_matches(',').to_string());
        }
    }
    None
}

/// Pulls `(experiment id, edges_per_sec)` pairs out of a ledger document's
/// `"experiments"` section. Tolerant of absent sections (returns an empty
/// list); the scan relies only on the field order this crate's own writer
/// emits, so it needs no general JSON parser.
pub fn experiment_rates(doc: &str) -> Vec<(String, f64)> {
    let Some(section) = extract_section(doc, "experiments") else {
        return Vec::new();
    };
    let mut rates = Vec::new();
    let mut rest = section.as_str();
    while let Some(pos) = rest.find("\"id\":\"") {
        rest = &rest[pos + 6..];
        let Some(end) = rest.find('"') else { break };
        let id = rest[..end].to_string();
        rest = &rest[end..];
        let Some(pos) = rest.find("\"edges_per_sec\":") else {
            break;
        };
        rest = &rest[pos + 16..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        if let Ok(rate) = rest[..end].trim().parse::<f64>() {
            rates.push((id, rate));
        }
        rest = &rest[end..];
    }
    rates
}

/// Pulls the measured cold/fork speedup out of a ledger document's
/// `"warm_fork"` section. Returns `None` when the section is absent or
/// malformed.
pub fn warm_fork_speedup(doc: &str) -> Option<f64> {
    section_speedup(doc, "warm_fork")
}

/// Pulls the measured sparse-vs-dense speedup out of a ledger document's
/// `"sparse"` section (the idle-heavy `kernel_hotpath` case). Returns
/// `None` when the section is absent or malformed.
pub fn sparse_speedup(doc: &str) -> Option<f64> {
    section_speedup(doc, "sparse")
}

/// Pulls the measured serial-vs-parallel speedup out of a ledger
/// document's `"parallel"` section (the compute-heavy `kernel_hotpath`
/// case run with worker threads). Returns `None` when the section is
/// absent or malformed.
pub fn parallel_speedup(doc: &str) -> Option<f64> {
    section_speedup(doc, "parallel")
}

/// Pulls the host core count recorded alongside the `"parallel"` section's
/// measurement. A speedup measured on a box with fewer cores than worker
/// threads is expected to miss the floor; readers use this to warn instead
/// of failing.
pub fn parallel_host_cores(doc: &str) -> Option<u64> {
    section_u64(doc, "parallel", "host_cores")
}

/// Pulls the worker-thread count the `"parallel"` section was measured at.
pub fn parallel_tick_jobs(doc: &str) -> Option<u64> {
    section_u64(doc, "parallel", "tick_jobs")
}

/// One point of a recorded per-jobs scaling curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Worker-thread count the point was measured at.
    pub jobs: u64,
    /// Host-side throughput at that job count (0 when the writer only
    /// recorded wall times).
    pub edges_per_sec: f64,
    /// Speedup over the jobs = 1 point of the same curve.
    pub speedup: f64,
}

/// Pulls the compute-heavy microbench's per-jobs scaling curve out of a
/// ledger document's `"parallel"` section (`scaling` array, recorded by
/// `kernel_hotpath` since kernel-v7). Empty for pre-v7 ledgers.
pub fn parallel_scaling(doc: &str) -> Vec<ScalingPoint> {
    extract_section(doc, "parallel")
        .map(|s| scan_scaling(&s, "scaling"))
        .unwrap_or_default()
}

/// Pulls the host core count recorded alongside the `"experiments"`
/// section's measurement. Like [`parallel_host_cores`], readers use this
/// to core-gate the fig4 scaling floor.
pub fn experiments_host_cores(doc: &str) -> Option<u64> {
    section_u64(doc, "experiments", "host_cores")
}

/// Pulls the end-to-end fig4 sweep's per-jobs scaling curve out of a
/// ledger document's `"experiments"` section (`fig4_scaling` array,
/// recorded by `repro --bench-out` since kernel-v7). Empty for pre-v7
/// ledgers or single-experiment recordings.
pub fn fig4_scaling(doc: &str) -> Vec<ScalingPoint> {
    extract_section(doc, "experiments")
        .map(|s| scan_scaling(&s, "fig4_scaling"))
        .unwrap_or_default()
}

/// Scans `fragment` for a `"<field>":[{...},...]` array of scaling points.
/// Each point needs `jobs` and `speedup`; `edges_per_sec` is optional
/// (fig4 points record wall seconds instead).
fn scan_scaling(fragment: &str, field: &str) -> Vec<ScalingPoint> {
    let tag = format!("\"{field}\":[");
    let Some(pos) = fragment.find(&tag) else {
        return Vec::new();
    };
    let rest = &fragment[pos + tag.len()..];
    let end = rest.find(']').unwrap_or(rest.len());
    let mut points = Vec::new();
    for object in rest[..end].split('{').skip(1) {
        let (Some(jobs), Some(speedup)) = (field_u64(object, "jobs"), field_f64(object, "speedup"))
        else {
            continue;
        };
        points.push(ScalingPoint {
            jobs,
            edges_per_sec: field_f64(object, "edges_per_sec").unwrap_or(0.0),
            speedup,
        });
    }
    points
}

/// Pulls the measured cycle-vs-fast warm-phase speedup out of a ledger
/// document's `"fast_forward"` section (the loosely-timed gear at the
/// default quantum). Returns `None` when the section is absent or
/// malformed.
pub fn fast_forward_speedup(doc: &str) -> Option<f64> {
    section_speedup(doc, "fast_forward")
}

/// Pulls the quantum the `"fast_forward"` section was measured at.
pub fn fast_forward_quantum(doc: &str) -> Option<u64> {
    section_u64(doc, "fast_forward", "quantum")
}

/// Pulls the recorded quantum-1 identity verdict of the `"fast_forward"`
/// section. `Some(false)` means the recording run saw the degenerate gear
/// diverge from cycle-accurate — a correctness failure, not a perf one.
pub fn fast_forward_q1_identical(doc: &str) -> Option<bool> {
    let section = extract_section(doc, "fast_forward")?;
    let pos = section.find("\"q1_identical\":")?;
    let rest = section[pos + 15..].trim_start();
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Pulls the warm-cache hit rate (0..=1) out of a ledger document's
/// `"server"` section. Returns `None` when the section is absent or
/// malformed.
pub fn server_hit_rate(doc: &str) -> Option<f64> {
    section_f64(doc, "server", "hit_rate")
}

/// Pulls the served request throughput out of a ledger document's
/// `"server"` section.
pub fn server_requests_per_sec(doc: &str) -> Option<f64> {
    section_f64(doc, "server", "requests_per_sec")
}

/// Pulls the hit-vs-miss latency ratio (p50 miss / p50 hit) out of a
/// ledger document's `"server"` section. Above 1 means forking a cached
/// warm state was faster than running the warm-up.
pub fn server_hit_speedup(doc: &str) -> Option<f64> {
    section_f64(doc, "server", "hit_speedup")
}

/// Pulls the host core count recorded alongside the `"server"` section's
/// measurement. A latency ratio measured on a single-core box is noisy
/// under concurrent load; readers use this to warn instead of failing.
pub fn server_host_cores(doc: &str) -> Option<u64> {
    section_u64(doc, "server", "host_cores")
}

/// Pulls the steady-state cache-hit p50 latency out of a ledger document's
/// `"server"` section — the yardstick the warm-restart first-request
/// latency is judged against.
pub fn server_p50_hit_micros(doc: &str) -> Option<u64> {
    section_u64(doc, "server", "p50_hit_micros")
}

/// Pulls the number of warm-up simulations the recording run cost out of
/// a ledger document's `"server"` section. Coalescing makes this at most
/// [`server_distinct_keys`] even under a duplicate-heavy concurrent mix.
pub fn server_warm_ups(doc: &str) -> Option<u64> {
    section_u64(doc, "server", "warm_ups")
}

/// Pulls the number of distinct warm keys the recording mix touched out
/// of a ledger document's `"server"` section.
pub fn server_distinct_keys(doc: &str) -> Option<u64> {
    section_u64(doc, "server", "distinct_keys")
}

/// Pulls the batched-vs-unbatched throughput ratio out of a ledger
/// document's `"server"` section: the same mix replayed with
/// `"coalesce":false`, fresh server both times. Above 1 means coalescing
/// paid for its window.
pub fn server_batch_speedup(doc: &str) -> Option<f64> {
    section_f64(doc, "server", "batch_speedup")
}

/// Pulls the first-request latency of a cold-started server (empty cache,
/// empty spill directory) out of a ledger document's `"server"` section.
pub fn server_cold_start_first_micros(doc: &str) -> Option<u64> {
    section_u64(doc, "server", "cold_start_first_micros")
}

/// Pulls the first-request latency of a *restarted* server (fresh
/// process, warm spill directory) out of a ledger document's `"server"`
/// section. The persistence contract is that this sits near the
/// steady-state hit latency, not near [`server_cold_start_first_micros`].
pub fn server_warm_restart_first_micros(doc: &str) -> Option<u64> {
    section_u64(doc, "server", "warm_restart_first_micros")
}

/// One point of the server's recorded per-connections scaling curve
/// (closed-loop, warm cache, so it measures the connection layer and not
/// the simulator).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConnScalingPoint {
    /// Concurrent closed-loop connections the point was measured at.
    pub connections: u64,
    /// Served throughput at that connection count.
    pub requests_per_sec: f64,
    /// Speedup over the connections = 1 point of the same curve.
    pub speedup: f64,
}

/// Pulls the per-connections scaling curve out of a ledger document's
/// `"server"` section (`conn_scaling` array, recorded since kernel-v8).
/// Empty for pre-v8 ledgers.
pub fn server_conn_scaling(doc: &str) -> Vec<ConnScalingPoint> {
    let Some(section) = extract_section(doc, "server") else {
        return Vec::new();
    };
    let Some(pos) = section.find("\"conn_scaling\":[") else {
        return Vec::new();
    };
    let rest = &section[pos + 16..];
    let end = rest.find(']').unwrap_or(rest.len());
    let mut points = Vec::new();
    for object in rest[..end].split('{').skip(1) {
        let (Some(connections), Some(speedup)) = (
            field_u64(object, "connections"),
            field_f64(object, "speedup"),
        ) else {
            continue;
        };
        points.push(ConnScalingPoint {
            connections,
            requests_per_sec: field_f64(object, "requests_per_sec").unwrap_or(0.0),
            speedup,
        });
    }
    points
}

/// Pulls the Pareto-front size out of a ledger document's `"dse"`
/// section. Returns `None` when the section is absent or malformed.
pub fn dse_front_size(doc: &str) -> Option<u64> {
    section_u64(doc, "dse", "front_size")
}

/// Pulls the number of distinct fabric families on the recorded Pareto
/// front out of a ledger document's `"dse"` section.
pub fn dse_families(doc: &str) -> Option<u64> {
    section_u64(doc, "dse", "families")
}

/// Pulls the fanned-out vs serial search wall-time ratio out of a ledger
/// document's `"dse"` section (1.0 when the recording run was serial).
pub fn dse_fanout_speedup(doc: &str) -> Option<f64> {
    section_f64(doc, "dse", "fanout_speedup")
}

/// Pulls the evaluation fan-out the `"dse"` section was recorded at.
pub fn dse_jobs(doc: &str) -> Option<u64> {
    section_u64(doc, "dse", "jobs")
}

/// Pulls the host core count recorded alongside the `"dse"` section's
/// measurement; see [`core_gated_floor`] for how readers use it.
pub fn dse_host_cores(doc: &str) -> Option<u64> {
    section_u64(doc, "dse", "host_cores")
}

/// Verdict of a [`core_gated_floor`] judgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloorVerdict {
    /// The measured value clears the floor.
    Met,
    /// Below the floor, but the recording host demonstrably lacked the
    /// cores the measurement needed — a warning, not a failure.
    Ungated,
    /// Below the floor on a host that (as far as the record shows) had
    /// the cores: a real regression.
    Missed,
}

/// Judges a speedup floor that is only meaningful when the recording
/// host had enough hardware: a parallel speedup measured on a box with
/// fewer cores than worker threads, or a latency split measured while
/// client and server contend for one CPU, says nothing about the code.
///
/// The floor *arms* only when `host_cores` and `needed_cores` are both
/// recorded and the host had enough of them; otherwise a miss downgrades
/// to [`FloorVerdict::Ungated`]. An unrecorded core count does **not**
/// disarm the floor — old ledgers without the field still fail, which is
/// what forces them to be regenerated with the provenance attached.
pub fn core_gated_floor(
    measured: f64,
    floor: f64,
    host_cores: Option<u64>,
    needed_cores: Option<u64>,
) -> FloorVerdict {
    if measured >= floor {
        FloorVerdict::Met
    } else if let (Some(cores), Some(needed)) = (host_cores, needed_cores) {
        if cores < needed {
            FloorVerdict::Ungated
        } else {
            FloorVerdict::Missed
        }
    } else {
        FloorVerdict::Missed
    }
}

/// Per-experiment activity counters recorded in the `"experiments"`
/// section, scanned for `repro --list` annotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentActivity {
    /// Experiment id.
    pub id: String,
    /// Component ticks executed.
    pub ticks: u64,
    /// Ticks the sparse scheduler skipped.
    pub skipped: u64,
    /// Component-cycles elided by fast-forward windows.
    pub ff_elided: u64,
    /// Clock edges that took the intra-edge parallel path.
    pub par_edges: u64,
    /// Component ticks computed on the parallel path.
    pub par_computed: u64,
    /// Parallel-computed ticks re-run serially after a failed commit.
    pub par_reticked: u64,
    /// Parallel-enabled edges that fell back because skip-audit was on.
    pub par_fallback_audit: u64,
    /// Parallel-enabled edges that fell back for lack of eligible work.
    pub par_fallback_small: u64,
}

impl ExperimentActivity {
    /// Fraction of component-edge slots the sparse scheduler skipped.
    pub fn skip_fraction(&self) -> f64 {
        let total = self.ticks + self.skipped;
        if total == 0 {
            0.0
        } else {
            self.skipped as f64 / total as f64
        }
    }

    /// Fraction of parallel-computed ticks that had to be re-run
    /// serially (0 when the run never took the parallel path).
    pub fn retick_fraction(&self) -> f64 {
        if self.par_computed == 0 {
            0.0
        } else {
            self.par_reticked as f64 / self.par_computed as f64
        }
    }
}

/// Pulls each experiment's recorded activity counters out of a ledger
/// document's `"experiments"` section. Tolerant of absent sections and of
/// pre-v4 ledgers without `ff_elided` (reported as 0).
pub fn experiment_activity(doc: &str) -> Vec<ExperimentActivity> {
    let Some(section) = extract_section(doc, "experiments") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut rest = section.as_str();
    while let Some(pos) = rest.find("\"id\":\"") {
        rest = &rest[pos + 6..];
        let Some(end) = rest.find('"') else { break };
        let id = rest[..end].to_string();
        rest = &rest[end..];
        let run_end = rest.find('}').unwrap_or(rest.len());
        let run = &rest[..run_end];
        out.push(ExperimentActivity {
            id,
            ticks: field_u64(run, "ticks").unwrap_or(0),
            skipped: field_u64(run, "skipped").unwrap_or(0),
            ff_elided: field_u64(run, "ff_elided").unwrap_or(0),
            par_edges: field_u64(run, "par_edges").unwrap_or(0),
            par_computed: field_u64(run, "par_computed").unwrap_or(0),
            par_reticked: field_u64(run, "par_reticked").unwrap_or(0),
            par_fallback_audit: field_u64(run, "par_fallback_audit").unwrap_or(0),
            par_fallback_small: field_u64(run, "par_fallback_small").unwrap_or(0),
        });
        rest = &rest[run_end..];
    }
    out
}

/// Scans a flat JSON object fragment for an integer `field`.
fn field_u64(fragment: &str, field: &str) -> Option<u64> {
    let tag = format!("\"{field}\":");
    let pos = fragment.find(&tag)?;
    let rest = &fragment[pos + tag.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse::<u64>().ok()
}

/// Scans a flat JSON object fragment for a float `field`.
fn field_f64(fragment: &str, field: &str) -> Option<f64> {
    let tag = format!("\"{field}\":");
    let pos = fragment.find(&tag)?;
    let rest = &fragment[pos + tag.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse::<f64>().ok()
}

/// Scans `section` of `doc` for its `"speedup"` field.
fn section_speedup(doc: &str, name: &str) -> Option<f64> {
    let section = extract_section(doc, name)?;
    let pos = section.find("\"speedup\":")?;
    let rest = &section[pos + 10..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse::<f64>().ok()
}

/// Scans `section` of `doc` for a float `field`.
fn section_f64(doc: &str, name: &str, field: &str) -> Option<f64> {
    let section = extract_section(doc, name)?;
    let tag = format!("\"{field}\":");
    let pos = section.find(&tag)?;
    let rest = &section[pos + tag.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse::<f64>().ok()
}

/// Scans `section` of `doc` for an integer `field`.
fn section_u64(doc: &str, name: &str, field: &str) -> Option<u64> {
    let section = extract_section(doc, name)?;
    let tag = format!("\"{field}\":");
    let pos = section.find(&tag)?;
    let rest = &section[pos + tag.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse::<u64>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mpsoc-ledger-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn writes_a_fresh_ledger() {
        let path = tmp("fresh");
        let _ = std::fs::remove_file(&path);
        update_section(&path, "experiments", r#"{"runs":[]}"#).expect("writes");
        let doc = std::fs::read_to_string(&path).expect("readable");
        assert!(doc.contains(r#""schema": "mpsoc-bench/kernel-v8""#));
        assert!(doc.contains(r#""experiments": {"runs":[]}"#));
        assert!(!doc.contains("microbench"));
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn preserves_the_other_section() {
        let path = tmp("merge");
        let _ = std::fs::remove_file(&path);
        update_section(&path, "experiments", r#"{"runs":[1]}"#).expect("writes");
        update_section(&path, "microbench", r#"{"speedup":2.5}"#).expect("writes");
        // Overwrite experiments again; microbench must survive.
        update_section(&path, "experiments", r#"{"runs":[2]}"#).expect("writes");
        let doc = std::fs::read_to_string(&path).expect("readable");
        assert!(doc.contains(r#""experiments": {"runs":[2]}"#));
        assert!(doc.contains(r#""microbench": {"speedup":2.5}"#));
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn default_path_is_gitignored_committed_path_is_not() {
        let path = default_path();
        assert!(path.ends_with(Path::new("target").join(LEDGER_PATH)));
        let committed = committed_path();
        assert!(committed.ends_with(LEDGER_PATH));
        assert!(!committed.to_string_lossy().contains("target"));
    }

    #[test]
    fn extracts_sections_by_prefix() {
        let doc =
            "{\n\"schema\": \"x\",\n\"experiments\": {\"a\":1},\n\"microbench\": {\"b\":2}\n}\n";
        let experiments = extract_section(doc, "experiments");
        assert_eq!(experiments.as_deref(), Some(r#"{"a":1}"#));
        let microbench = extract_section(doc, "microbench");
        assert_eq!(microbench.as_deref(), Some(r#"{"b":2}"#));
        assert_eq!(extract_section(doc, "nope"), None);
    }

    #[test]
    fn warm_fork_speedup_is_scanned() {
        let doc = concat!(
            "{\n\"schema\": \"x\",\n",
            "\"warm_fork\": {\"cold_seconds\":1.5,\"fork_seconds\":0.6,\"speedup\":2.5}\n}\n"
        );
        assert_eq!(warm_fork_speedup(doc), Some(2.5));
        assert_eq!(warm_fork_speedup("{}\n"), None);
    }

    #[test]
    fn sparse_speedup_is_scanned() {
        let doc = concat!(
            "{\n\"schema\": \"x\",\n",
            "\"sparse\": {\"skip_fraction\":0.9,\"speedup\":3.25}\n}\n"
        );
        assert_eq!(sparse_speedup(doc), Some(3.25));
        assert_eq!(sparse_speedup("{}\n"), None);
    }

    #[test]
    fn parallel_section_is_scanned() {
        let doc = concat!(
            "{\n\"schema\": \"x\",\n",
            "\"parallel\": {\"tick_jobs\":4,\"host_cores\":8,",
            "\"serial_edges_per_sec\":1.0,\"parallel_edges_per_sec\":2.1,",
            "\"speedup\":2.1}\n}\n"
        );
        assert_eq!(parallel_speedup(doc), Some(2.1));
        assert_eq!(parallel_host_cores(doc), Some(8));
        assert_eq!(parallel_tick_jobs(doc), Some(4));
        assert_eq!(parallel_speedup("{}\n"), None);
        assert_eq!(parallel_host_cores("{}\n"), None);
    }

    #[test]
    fn fast_forward_section_is_scanned() {
        let doc = concat!(
            "{\n\"schema\": \"x\",\n",
            "\"fast_forward\": {\"scale\":1,\"quantum\":64,",
            "\"warm_cycle_seconds\":0.012,\"warm_fast_seconds\":0.003,",
            "\"speedup\":4.0,\"max_err_permille\":1399,\"q1_identical\":true}\n}\n"
        );
        assert_eq!(fast_forward_speedup(doc), Some(4.0));
        assert_eq!(fast_forward_quantum(doc), Some(64));
        assert_eq!(fast_forward_q1_identical(doc), Some(true));
        assert_eq!(fast_forward_speedup("{}\n"), None);
        assert_eq!(fast_forward_q1_identical("{}\n"), None);
    }

    #[test]
    fn server_section_is_scanned() {
        let doc = concat!(
            "{\n\"schema\": \"x\",\n",
            "\"server\": {\"requests\":48,\"points\":48,\"connections\":4,",
            "\"requests_per_sec\":120.5,\"p50_micros\":800,\"p99_micros\":9000,",
            "\"hits\":44,\"misses\":4,\"hit_rate\":0.916667,",
            "\"p50_hit_micros\":700,\"p50_miss_micros\":8400,",
            "\"hit_speedup\":12.0,\"host_cores\":8}\n}\n"
        );
        assert_eq!(server_p50_hit_micros(doc), Some(700));
        assert_eq!(server_hit_rate(doc), Some(0.916667));
        assert_eq!(server_requests_per_sec(doc), Some(120.5));
        assert_eq!(server_hit_speedup(doc), Some(12.0));
        assert_eq!(server_host_cores(doc), Some(8));
        assert_eq!(server_hit_rate("{}\n"), None);
        assert_eq!(server_hit_speedup("{}\n"), None);
    }

    #[test]
    fn server_v8_fields_are_scanned() {
        let doc = concat!(
            "{\n\"schema\": \"x\",\n",
            "\"server\": {\"requests\":48,\"warm_ups\":2,\"distinct_keys\":2,",
            "\"batched_requests_per_sec\":150.0,\"unbatched_requests_per_sec\":100.0,",
            "\"batch_speedup\":1.5,\"cold_start_first_micros\":90000,",
            "\"warm_restart_first_micros\":1200,",
            "\"conn_scaling\":[{\"connections\":1,\"requests_per_sec\":100.0,\"speedup\":1.0},",
            "{\"connections\":8,\"requests_per_sec\":260.0,\"speedup\":2.6}],",
            "\"host_cores\":8}\n}\n"
        );
        assert_eq!(server_warm_ups(doc), Some(2));
        assert_eq!(server_distinct_keys(doc), Some(2));
        assert_eq!(server_batch_speedup(doc), Some(1.5));
        assert_eq!(server_cold_start_first_micros(doc), Some(90000));
        assert_eq!(server_warm_restart_first_micros(doc), Some(1200));
        let curve = server_conn_scaling(doc);
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].connections, 1);
        assert_eq!(curve[1].connections, 8);
        assert!((curve[1].speedup - 2.6).abs() < 1e-9);
        assert!((curve[1].requests_per_sec - 260.0).abs() < 1e-9);
        // Pre-v8 ledgers: everything degrades to None / empty.
        assert_eq!(server_warm_ups("{}\n"), None);
        assert_eq!(server_warm_restart_first_micros("{}\n"), None);
        assert!(server_conn_scaling("{}\n").is_empty());
    }

    #[test]
    fn dse_section_is_scanned() {
        let doc = concat!(
            "{\n\"schema\": \"x\",\n",
            "\"dse\": {\"scale\":1,\"seed\":3499,\"jobs\":4,\"host_cores\":8,",
            "\"candidates\":12,\"front_size\":4,\"families\":3,",
            "\"sim_ticks\":185768,\"wall_seconds\":0.8,\"fanout_speedup\":2.4,",
            "\"rungs\":[{\"budget_ps\":4000000,\"population\":12,",
            "\"survivors\":6,\"sim_ticks\":27980}]}\n}\n"
        );
        assert_eq!(dse_front_size(doc), Some(4));
        assert_eq!(dse_families(doc), Some(3));
        assert_eq!(dse_fanout_speedup(doc), Some(2.4));
        assert_eq!(dse_jobs(doc), Some(4));
        assert_eq!(dse_host_cores(doc), Some(8));
        assert_eq!(dse_front_size("{}\n"), None);
        assert_eq!(dse_fanout_speedup("{}\n"), None);
    }

    #[test]
    fn scaling_curves_are_scanned_from_both_sections() {
        let doc = concat!(
            "{\n\"schema\": \"x\",\n",
            "\"experiments\": {\"scale\":1,\"runs\":[],",
            "\"fig4_scaling\":[{\"jobs\":1,\"wall_seconds\":0.4,\"speedup\":1.0},",
            "{\"jobs\":8,\"wall_seconds\":0.1,\"speedup\":4.0}]},\n",
            "\"parallel\": {\"tick_jobs\":4,\"host_cores\":8,\"speedup\":2.1,",
            "\"scaling\":[{\"jobs\":1,\"edges_per_sec\":1000.0,\"speedup\":1.0},",
            "{\"jobs\":2,\"edges_per_sec\":1900.0,\"speedup\":1.9},",
            "{\"jobs\":8,\"edges_per_sec\":3400.0,\"speedup\":3.4}]}\n}\n"
        );
        let curve = parallel_scaling(doc);
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[0].jobs, 1);
        assert!((curve[2].speedup - 3.4).abs() < 1e-9);
        assert!((curve[1].edges_per_sec - 1900.0).abs() < 1e-9);
        let fig4 = fig4_scaling(doc);
        assert_eq!(fig4.len(), 2);
        assert_eq!(fig4[1].jobs, 8);
        assert!((fig4[1].speedup - 4.0).abs() < 1e-9);
        // fig4 points carry no edges_per_sec; the scanner defaults it.
        assert_eq!(fig4[0].edges_per_sec, 0.0);
        assert!(parallel_scaling("{}\n").is_empty());
        assert!(fig4_scaling("{}\n").is_empty());
    }

    #[test]
    fn experiment_activity_scans_parallel_counters() {
        let doc = concat!(
            "{\n\"schema\": \"x\",\n",
            "\"experiments\": {\"scale\":1,\"runs\":[",
            "{\"id\":\"fig4\",\"wall_seconds\":0.1,\"edges\":4,\"ticks\":8,",
            "\"par_edges\":3,\"par_computed\":200,\"par_reticked\":1,",
            "\"par_fallback_audit\":2,\"par_fallback_small\":5,",
            "\"edges_per_sec\":99,\"sim_cycles_per_sec\":1.0}",
            "]}\n}\n"
        );
        let activity = experiment_activity(doc);
        assert_eq!(activity.len(), 1);
        assert_eq!(activity[0].par_edges, 3);
        assert_eq!(activity[0].par_computed, 200);
        assert_eq!(activity[0].par_reticked, 1);
        assert_eq!(activity[0].par_fallback_audit, 2);
        assert_eq!(activity[0].par_fallback_small, 5);
        assert!((activity[0].retick_fraction() - 0.005).abs() < 1e-9);
    }

    #[test]
    fn core_gated_floor_arms_only_with_enough_recorded_cores() {
        use FloorVerdict::*;
        // Clearing the floor never consults the core counts.
        assert_eq!(core_gated_floor(2.0, 1.5, None, None), Met);
        assert_eq!(core_gated_floor(1.5, 1.5, Some(1), Some(4)), Met);
        // A miss on a host that lacked the cores is a warning...
        assert_eq!(core_gated_floor(1.0, 1.5, Some(1), Some(4)), Ungated);
        assert_eq!(core_gated_floor(1.0, 1.2, Some(1), Some(2)), Ungated);
        // ...but a miss with the cores present, or with unrecorded
        // provenance, is a real failure.
        assert_eq!(core_gated_floor(1.0, 1.5, Some(8), Some(4)), Missed);
        assert_eq!(core_gated_floor(1.0, 1.5, None, Some(4)), Missed);
        assert_eq!(core_gated_floor(1.0, 1.5, Some(8), None), Missed);
    }

    #[test]
    fn experiment_activity_scans_the_runs_array() {
        let doc = concat!(
            "{\n\"schema\": \"x\",\n",
            "\"experiments\": {\"scale\":1,\"runs\":[",
            "{\"id\":\"fig3\",\"wall_seconds\":0.5,\"edges\":10,",
            "\"ticks\":20,\"skipped\":60,\"ff_windows\":5,\"ff_elided\":7,",
            "\"edges_per_sec\":1.0,\"sim_cycles_per_sec\":2.0},",
            "{\"id\":\"fig4\",\"wall_seconds\":0.1,\"edges\":4,",
            "\"ticks\":8,\"edges_per_sec\":99,\"sim_cycles_per_sec\":1.0}",
            "]}\n}\n"
        );
        let activity = experiment_activity(doc);
        assert_eq!(activity.len(), 2);
        assert_eq!(activity[0].id, "fig3");
        assert_eq!(activity[0].ticks, 20);
        assert_eq!(activity[0].skipped, 60);
        assert_eq!(activity[0].ff_elided, 7);
        assert!((activity[0].skip_fraction() - 0.75).abs() < 1e-9);
        // Pre-v4 run without ff fields: elided reads as zero.
        assert_eq!(activity[1].ff_elided, 0);
        assert!(experiment_activity("{}\n").is_empty());
    }

    #[test]
    fn experiment_rates_scan_the_runs_array() {
        let doc = concat!(
            "{\n\"schema\": \"x\",\n",
            "\"experiments\": {\"scale\":1,\"runs\":[",
            "{\"id\":\"fig3\",\"wall_seconds\":0.5,\"edges\":10,",
            "\"ticks\":20,\"edges_per_sec\":123456.5,\"sim_cycles_per_sec\":2.0},",
            "{\"id\":\"fig4\",\"wall_seconds\":0.1,\"edges\":4,",
            "\"ticks\":8,\"edges_per_sec\":99,\"sim_cycles_per_sec\":1.0}",
            "]}\n}\n"
        );
        let rates = experiment_rates(doc);
        assert_eq!(rates.len(), 2);
        assert_eq!(rates[0].0, "fig3");
        assert!((rates[0].1 - 123456.5).abs() < 1e-9);
        assert_eq!(rates[1], ("fig4".to_string(), 99.0));
        assert!(experiment_rates("{}\n").is_empty());
    }
}
