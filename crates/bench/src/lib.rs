//! # mpsoc-bench
//!
//! The benchmark harness of the workspace: a `repro` binary that
//! regenerates **every table and figure** of the paper's evaluation
//! section, and a set of Criterion benches (one per experiment) that track
//! the simulator's wall-clock performance on those workloads.
//!
//! Run the full reproduction:
//!
//! ```bash
//! cargo run --release -p mpsoc-bench --bin repro
//! cargo run --release -p mpsoc-bench --bin repro -- --exp fig5 --scale 8
//! ```
//!
//! The experiment implementations live in
//! [`mpsoc_platform::experiments`]; this crate only drives them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ledger;
pub mod timetravel;

use mpsoc_kernel::{activity, SimError, SimResult};
use mpsoc_platform::experiments::{self, DEFAULT_SCALE, DEFAULT_SEED};
use serde::Serialize;
use std::time::Instant;

/// All experiment identifiers understood by the `repro` binary.
pub const EXPERIMENTS: &[&str] = &[
    "many-to-many",
    "many-to-one",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "buffering",
    "bridges",
    "lmi",
    "arbitration",
    "noc",
    "tlm",
    "fidelity",
    "dual-channel",
    "robustness",
];

/// Per-experiment metadata printed by `repro --list`: the id, a one-line
/// description, and the approximate wall-clock time of a `--scale 1` run
/// on a contemporary desktop host (release build, `--jobs 1`).
///
/// Must stay in the same order as [`EXPERIMENTS`] (asserted by a test).
pub const EXPERIMENT_INFO: &[(&str, &str, &str)] = &[
    (
        "many-to-many",
        "8 initiators x 4 targets offered-load sweep: min-buffer AXI vs STBus vs AHB",
        "~1.5 s",
    ),
    (
        "many-to-one",
        "12 initiators x 1 on-chip memory: protocol comparison under convergent load",
        "~0.2 s",
    ),
    (
        "fig3",
        "normalized exec time across six platform organisations (paper Fig. 3)",
        "~0.3 s",
    ),
    (
        "fig4",
        "collapsed vs distributed topology over memory wait states 1..32 (paper Fig. 4)",
        "~0.1 s",
    ),
    (
        "fig5",
        "LMI controller + DDR SDRAM across four platform organisations (paper Fig. 5)",
        "~0.2 s",
    ),
    (
        "fig6",
        "LMI FIFO state residency under the two-phase workload (paper Fig. 6)",
        "~0.1 s",
    ),
    (
        "buffering",
        "STBus target-FIFO depth sweep closing the gap to AXI",
        "~0.4 s",
    ),
    (
        "bridges",
        "distributed AXI with blocking vs split-capable bridges",
        "~0.1 s",
    ),
    (
        "lmi",
        "LMI lookahead depth x merging ablation under full-platform traffic",
        "~0.5 s",
    ),
    (
        "arbitration",
        "round-robin / fixed-priority / oldest-first on the full LMI platform",
        "~0.2 s",
    ),
    (
        "noc",
        "shared STBus vs crossbar vs 3x4 mesh NoC under saturated traffic",
        "~0.3 s",
    ),
    (
        "tlm",
        "cycle-accurate vs transaction-level fidelity: timing error and speedup",
        "~0.1 s",
    ),
    (
        "fidelity",
        "loosely-timed fast-forward gear: fig4 warm-phase speedup vs error per quantum",
        "~0.3 s",
    ),
    (
        "dual-channel",
        "unified memory split across two LMI channels: exec time and FIFO pressure",
        "~0.2 s",
    ),
    (
        "robustness",
        "fault rate x retry budget degradation table on the distributed LMI platform",
        "~1 s",
    ),
];

/// Runs one experiment by id and returns its printable report.
///
/// # Errors
///
/// Returns an error for unknown ids (listing the valid ones) or if the
/// underlying platform stalls.
pub fn run_experiment(id: &str, scale: u64, seed: u64) -> SimResult<String> {
    run_experiment_with_jobs(id, scale, seed, 1)
}

/// Runs one experiment by id with up to `jobs` worker threads.
///
/// Only the sweep-shaped experiments (`fig4`, `many-to-many`) fan their
/// independent simulation instances out to threads; the rest run on the
/// calling thread regardless of `jobs`. The produced table is identical
/// to [`run_experiment`] for any `jobs` value.
///
/// # Errors
///
/// Same as [`run_experiment`].
pub fn run_experiment_with_jobs(id: &str, scale: u64, seed: u64, jobs: usize) -> SimResult<String> {
    let text = match id {
        "many-to-many" => experiments::many_to_many_with_jobs(scale, seed, jobs)?.to_string(),
        "many-to-one" => experiments::many_to_one(scale, seed)?.to_string(),
        "fig3" => experiments::fig3(scale, seed)?.to_string(),
        "fig4" => experiments::fig4_with_jobs(scale, seed, jobs)?.to_string(),
        "fig5" => experiments::fig5(scale, seed)?.to_string(),
        "fig6" => experiments::fig6(scale, seed)?.to_string(),
        "buffering" => experiments::buffering_ablation(scale, seed)?.to_string(),
        "bridges" => experiments::bridge_ablation(scale, seed)?.to_string(),
        "lmi" => experiments::lmi_ablation(scale, seed)?.to_string(),
        "arbitration" => experiments::arbitration_study(scale, seed)?.to_string(),
        "noc" => experiments::noc_outlook(scale, seed)?.to_string(),
        "tlm" => experiments::fidelity_study(scale, seed)?.to_string(),
        "fidelity" => experiments::fast_forward_study(scale, seed, jobs)?.to_string(),
        "dual-channel" => experiments::dual_channel_study(scale, seed)?.to_string(),
        "robustness" => experiments::robustness_with_jobs(scale, seed, jobs)?.to_string(),
        other => {
            return Err(mpsoc_kernel::SimError::InvalidConfig {
                reason: format!(
                    "unknown experiment '{other}'; expected one of {}",
                    EXPERIMENTS.join(", ")
                ),
            })
        }
    };
    Ok(text)
}

/// One experiment execution with its host-side throughput measurements.
///
/// Produced by [`measure_experiment`]; the counters come from the kernel's
/// process-wide [`activity`] snapshots taken around the run, so they are
/// exact as long as no *other* experiment runs concurrently (the `repro`
/// binary runs experiments one at a time; within-experiment worker threads
/// all bill to the experiment that spawned them).
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentRun {
    /// Experiment id (one of [`EXPERIMENTS`]).
    pub id: String,
    /// The rendered result table (what `repro` prints).
    #[serde(skip)]
    pub table: String,
    /// Host wall-clock time of the run in seconds.
    pub wall_seconds: f64,
    /// Clock edges the kernel scheduler processed during the run.
    pub edges: u64,
    /// Component ticks (simulated component-cycles) executed.
    pub ticks: u64,
    /// Component ticks the sparse scheduler proved skippable (quiescent
    /// slots with no due deadline and no pending input). Zero when running
    /// dense.
    pub skipped: u64,
    /// Fast-forward windows handed to components (zero outside the
    /// loosely-timed gear).
    pub ff_windows: u64,
    /// Component-cycles elided inside fast-forward windows (slept over by
    /// the components' own `sleep_until` declarations).
    pub ff_elided: u64,
    /// Host-side scheduler throughput: `edges / wall_seconds`.
    pub edges_per_sec: f64,
    /// Simulated component-cycles per host second: `ticks / wall_seconds`.
    pub sim_cycles_per_sec: f64,
}

impl ExperimentRun {
    /// Fraction of component-edge slots the sparse scheduler skipped, in
    /// `0.0..=1.0` (0 for a dense run or an empty measurement).
    pub fn skip_fraction(&self) -> f64 {
        let total = self.ticks + self.skipped;
        if total == 0 {
            0.0
        } else {
            self.skipped as f64 / total as f64
        }
    }

    /// One-line human-readable performance summary.
    pub fn perf_line(&self) -> String {
        format!(
            "[{} done in {:.2}s — {} edges/s, {} sim cycles/s, {:.0}% ticks skipped]",
            self.id,
            self.wall_seconds,
            si(self.edges_per_sec),
            si(self.sim_cycles_per_sec),
            self.skip_fraction() * 100.0,
        )
    }
}

/// Formats a rate with an SI suffix (`1.23M`, `456k`, ...).
fn si(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

/// Runs one experiment and measures its wall time and kernel throughput.
///
/// # Errors
///
/// Same as [`run_experiment`].
pub fn measure_experiment(
    id: &str,
    scale: u64,
    seed: u64,
    jobs: usize,
) -> SimResult<ExperimentRun> {
    let before = activity::snapshot();
    let started = Instant::now();
    let table = run_experiment_with_jobs(id, scale, seed, jobs)?;
    let wall_seconds = started.elapsed().as_secs_f64().max(1e-9);
    let delta = activity::snapshot().since(before);
    Ok(ExperimentRun {
        id: id.to_string(),
        table,
        wall_seconds,
        edges: delta.edges,
        ticks: delta.ticks,
        skipped: delta.skipped,
        ff_windows: delta.ff_windows,
        ff_elided: delta.ff_elided,
        edges_per_sec: delta.edges as f64 / wall_seconds,
        sim_cycles_per_sec: delta.ticks as f64 / wall_seconds,
    })
}

/// The `repro --warm-fork` measurement: the fig4 sweep run twice, once
/// cold (every point re-simulates the shared warm-up prefix) and once via
/// checkpoint/fork (the prefix is simulated once per topology and every
/// point restores the snapshot blob).
///
/// Produced by [`measure_warm_fork`], which also *proves* the two tables
/// byte-identical before reporting any timing.
#[derive(Debug, Clone, Serialize)]
pub struct WarmForkRun {
    /// Workload multiplier the sweep ran at.
    pub scale: u64,
    /// Simulation seed.
    pub seed: u64,
    /// Worker threads used inside each sweep.
    pub jobs: u64,
    /// The rendered fig4 table (identical for both paths).
    #[serde(skip)]
    pub table: String,
    /// Wall-clock seconds of the cold sweep.
    pub cold_seconds: f64,
    /// Wall-clock seconds of the checkpoint-forked sweep.
    pub fork_seconds: f64,
    /// `cold_seconds / fork_seconds`.
    pub speedup: f64,
}

impl WarmForkRun {
    /// One-line human-readable summary.
    pub fn perf_line(&self) -> String {
        format!(
            "[warm-fork identical: yes — cold {:.2}s, fork {:.2}s, speedup {:.2}x]",
            self.cold_seconds, self.fork_seconds, self.speedup
        )
    }
}

/// Runs the fig4 sweep cold and checkpoint-forked, verifies the two tables
/// are byte-identical, and returns both timings.
///
/// # Errors
///
/// Fails if either sweep stalls, or — the self-check — if the forked table
/// differs from the cold one in any byte, which would mean snapshot
/// restore is not exact.
pub fn measure_warm_fork(scale: u64, seed: u64, jobs: usize) -> SimResult<WarmForkRun> {
    let started = Instant::now();
    let cold = experiments::fig4_with_jobs(scale, seed, jobs)?.to_string();
    let cold_seconds = started.elapsed().as_secs_f64().max(1e-9);
    let started = Instant::now();
    let fork = experiments::fig4_warm_fork_with_jobs(scale, seed, jobs)?.to_string();
    let fork_seconds = started.elapsed().as_secs_f64().max(1e-9);
    if cold != fork {
        return Err(SimError::Snapshot {
            source: mpsoc_kernel::SnapshotError::StructureMismatch {
                detail: format!(
                    "warm-fork self-check failed: the forked fig4 table differs from the \
                     cold one\n--- cold ---\n{cold}\n--- fork ---\n{fork}"
                ),
            },
        });
    }
    Ok(WarmForkRun {
        scale,
        seed,
        jobs: jobs as u64,
        table: fork,
        cold_seconds,
        fork_seconds,
        speedup: cold_seconds / fork_seconds,
    })
}

/// The `repro --fast-warm` measurement: the fig4 warm phase run in the
/// `Cycle` gear and in `Fast` gear at every quantum of the
/// [`experiments::FAST_FORWARD_QUANTA`] sweep, each finished by
/// cycle-accurate tails.
///
/// Produced by [`measure_fast_forward`], which also *proves* the
/// `quantum = 1` table byte-identical to the cycle-gear one before
/// reporting any timing; the reported speedup and error are the default
/// quantum's.
#[derive(Debug, Clone, Serialize)]
pub struct FastForwardRun {
    /// Workload multiplier the sweep ran at.
    pub scale: u64,
    /// Simulation seed.
    pub seed: u64,
    /// Worker threads used by the cycle-accurate tails (the timed warm
    /// phases are always serial).
    pub jobs: u64,
    /// The quantum the headline speedup/error were measured at
    /// ([`mpsoc_kernel::Fidelity::DEFAULT_QUANTUM`]).
    pub quantum: u64,
    /// The rendered speedup-vs-error curve (what `repro` prints).
    #[serde(skip)]
    pub table: String,
    /// Wall-clock seconds of the cycle-gear warm phase.
    pub warm_cycle_seconds: f64,
    /// Wall-clock seconds of the `Fast { quantum }` warm phase.
    pub warm_fast_seconds: f64,
    /// `warm_cycle_seconds / warm_fast_seconds` at the default quantum.
    pub speedup: f64,
    /// Worst per-cell error of the default-quantum sweep, in permille.
    pub max_err_permille: u64,
    /// Whether the `quantum = 1` sweep was byte-identical to the
    /// cycle-gear one (always `true` — a mismatch is an error instead).
    pub q1_identical: bool,
    /// Fast-forward windows handed to components across the measurement.
    pub ff_windows: u64,
    /// Component-cycles elided inside those windows.
    pub ff_elided: u64,
}

impl FastForwardRun {
    /// One-line human-readable summary.
    pub fn perf_line(&self) -> String {
        format!(
            "[fast-forward q=1 identical: yes — warm cycle {:.2}s, fast(q={}) {:.2}s, \
             speedup {:.2}x, max err {}\u{2030}, {} windows / {} cycles elided]",
            self.warm_cycle_seconds,
            self.quantum,
            self.warm_fast_seconds,
            self.speedup,
            self.max_err_permille,
            self.ff_windows,
            self.ff_elided,
        )
    }
}

/// Runs the loosely-timed fast-forward study, verifies the `quantum = 1`
/// identity, and returns the default-quantum headline numbers.
///
/// # Errors
///
/// Fails if a sweep stalls, or — the self-check — if the `quantum = 1`
/// table differs from the cycle-gear one in any byte, which would mean the
/// degenerate gear is not an identity.
pub fn measure_fast_forward(scale: u64, seed: u64, jobs: usize) -> SimResult<FastForwardRun> {
    let before = activity::snapshot();
    let study = experiments::fast_forward_study(scale, seed, jobs)?;
    let delta = activity::snapshot().since(before);
    let q1 = study.q1_row();
    if !q1.identical {
        return Err(SimError::InvalidConfig {
            reason: format!(
                "fast-forward self-check failed: the Fast {{ quantum: 1 }} fig4 table \
                 differs from the cycle-gear one (max err {}\u{2030})",
                q1.max_err_permille
            ),
        });
    }
    let headline = study.default_quantum_row();
    Ok(FastForwardRun {
        scale,
        seed,
        jobs: jobs as u64,
        quantum: headline.quantum,
        warm_cycle_seconds: study.cycle_warm_seconds,
        warm_fast_seconds: headline.warm_seconds,
        speedup: headline.speedup,
        max_err_permille: headline.max_err_permille,
        q1_identical: q1.identical,
        ff_windows: delta.ff_windows,
        ff_elided: delta.ff_elided,
        table: study.to_string(),
    })
}

/// Default scale re-exported for the benches.
pub const fn default_scale() -> u64 {
    DEFAULT_SCALE
}

/// Default seed re-exported for the benches.
pub const fn default_seed() -> u64 {
    DEFAULT_SEED
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_reported() {
        let err = run_experiment("nope", 1, 1).unwrap_err();
        assert!(err.to_string().contains("unknown experiment"));
        assert!(err.to_string().contains("fig3"));
    }

    #[test]
    fn smallest_scale_smoke() {
        let out = run_experiment("many-to-one", 1, 1).expect("runs");
        assert!(out.contains("STBus"));
    }

    #[test]
    fn experiment_info_matches_the_id_list() {
        assert_eq!(EXPERIMENT_INFO.len(), EXPERIMENTS.len());
        for ((info_id, description, runtime), id) in EXPERIMENT_INFO.iter().zip(EXPERIMENTS) {
            assert_eq!(info_id, id, "EXPERIMENT_INFO order must match EXPERIMENTS");
            assert!(!description.is_empty());
            assert!(runtime.starts_with('~'), "runtime is an approximation");
        }
    }

    #[test]
    fn warm_fork_smoke_is_identical() {
        let run = measure_warm_fork(1, 0x0dab, 1).expect("warm fork runs");
        assert!(run.table.contains("FIG-4"));
        assert!(run.cold_seconds > 0.0 && run.fork_seconds > 0.0);
    }
}
