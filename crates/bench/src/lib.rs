//! # mpsoc-bench
//!
//! The benchmark harness of the workspace: a `repro` binary that
//! regenerates **every table and figure** of the paper's evaluation
//! section, and a set of Criterion benches (one per experiment) that track
//! the simulator's wall-clock performance on those workloads.
//!
//! Run the full reproduction:
//!
//! ```bash
//! cargo run --release -p mpsoc-bench --bin repro
//! cargo run --release -p mpsoc-bench --bin repro -- --exp fig5 --scale 8
//! ```
//!
//! The experiment implementations live in
//! [`mpsoc_platform::experiments`]; this crate only drives them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mpsoc_kernel::SimResult;
use mpsoc_platform::experiments::{self, DEFAULT_SCALE, DEFAULT_SEED};

/// All experiment identifiers understood by the `repro` binary.
pub const EXPERIMENTS: &[&str] = &[
    "many-to-many",
    "many-to-one",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "buffering",
    "bridges",
    "lmi",
    "arbitration",
    "noc",
    "tlm",
    "dual-channel",
];

/// Runs one experiment by id and returns its printable report.
///
/// # Errors
///
/// Returns an error for unknown ids (listing the valid ones) or if the
/// underlying platform stalls.
pub fn run_experiment(id: &str, scale: u64, seed: u64) -> SimResult<String> {
    let text = match id {
        "many-to-many" => experiments::many_to_many(scale, seed)?.to_string(),
        "many-to-one" => experiments::many_to_one(scale, seed)?.to_string(),
        "fig3" => experiments::fig3(scale, seed)?.to_string(),
        "fig4" => experiments::fig4(scale, seed)?.to_string(),
        "fig5" => experiments::fig5(scale, seed)?.to_string(),
        "fig6" => experiments::fig6(scale, seed)?.to_string(),
        "buffering" => experiments::buffering_ablation(scale, seed)?.to_string(),
        "bridges" => experiments::bridge_ablation(scale, seed)?.to_string(),
        "lmi" => experiments::lmi_ablation(scale, seed)?.to_string(),
        "arbitration" => experiments::arbitration_study(scale, seed)?.to_string(),
        "noc" => experiments::noc_outlook(scale, seed)?.to_string(),
        "tlm" => experiments::fidelity_study(scale, seed)?.to_string(),
        "dual-channel" => experiments::dual_channel_study(scale, seed)?.to_string(),
        other => {
            return Err(mpsoc_kernel::SimError::InvalidConfig {
                reason: format!(
                    "unknown experiment '{other}'; expected one of {}",
                    EXPERIMENTS.join(", ")
                ),
            })
        }
    };
    Ok(text)
}

/// Default scale re-exported for the benches.
pub const fn default_scale() -> u64 {
    DEFAULT_SCALE
}

/// Default seed re-exported for the benches.
pub const fn default_seed() -> u64 {
    DEFAULT_SEED
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_reported() {
        let err = run_experiment("nope", 1, 1).unwrap_err();
        assert!(err.to_string().contains("unknown experiment"));
        assert!(err.to_string().contains("fig3"));
    }

    #[test]
    fn smallest_scale_smoke() {
        let out = run_experiment("many-to-one", 1, 1).expect("runs");
        assert!(out.contains("STBus"));
    }
}
