//! # mpsoc-bench
//!
//! The benchmark harness of the workspace: a `repro` binary that
//! regenerates **every table and figure** of the paper's evaluation
//! section, and a set of Criterion benches (one per experiment) that track
//! the simulator's wall-clock performance on those workloads.
//!
//! Run the full reproduction:
//!
//! ```bash
//! cargo run --release -p mpsoc-bench --bin repro
//! cargo run --release -p mpsoc-bench --bin repro -- --exp fig5 --scale 8
//! ```
//!
//! The experiment implementations live in
//! [`mpsoc_platform::experiments`]; this crate only drives them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ledger;
pub mod timetravel;

use mpsoc_kernel::{activity, SimError, SimResult};
use mpsoc_platform::experiments::{self, DEFAULT_SCALE, DEFAULT_SEED};
use serde::Serialize;
use std::time::Instant;

/// One entry of the experiment registry: the id the `repro` CLI accepts,
/// a one-line description for `--list`, the approximate wall-clock time
/// of a `--scale 1` run on a contemporary desktop host (release build,
/// `--jobs 1`), and the function that runs it.
pub struct ExperimentDesc {
    /// CLI identifier (`repro --exp <id>`).
    pub id: &'static str,
    /// One-line description printed by `repro --list`.
    pub description: &'static str,
    /// Approximate `--scale 1` wall time, e.g. `"~0.3 s"`.
    pub runtime: &'static str,
    /// Runs the experiment at `(scale, seed, jobs)` and renders its table.
    runner: fn(u64, u64, usize) -> SimResult<String>,
}

/// The single source of truth for every experiment the `repro` binary
/// understands. `--list`, `--help`, the unknown-id error message and the
/// all-experiments run all derive from this table, so adding an
/// experiment is one entry here — nothing else to keep in sync.
pub const EXPERIMENT_REGISTRY: &[ExperimentDesc] = &[
    ExperimentDesc {
        id: "many-to-many",
        description: "8 initiators x 4 targets offered-load sweep: min-buffer AXI vs STBus vs AHB",
        runtime: "~1.5 s",
        runner: |scale, seed, jobs| {
            Ok(experiments::many_to_many_with_jobs(scale, seed, jobs)?.to_string())
        },
    },
    ExperimentDesc {
        id: "many-to-one",
        description: "12 initiators x 1 on-chip memory: protocol comparison under convergent load",
        runtime: "~0.2 s",
        runner: |scale, seed, _| Ok(experiments::many_to_one(scale, seed)?.to_string()),
    },
    ExperimentDesc {
        id: "fig3",
        description: "normalized exec time across six platform organisations (paper Fig. 3)",
        runtime: "~0.3 s",
        runner: |scale, seed, _| Ok(experiments::fig3(scale, seed)?.to_string()),
    },
    ExperimentDesc {
        id: "fig4",
        description:
            "collapsed vs distributed topology over memory wait states 1..32 (paper Fig. 4)",
        runtime: "~0.1 s",
        runner: |scale, seed, jobs| Ok(experiments::fig4_with_jobs(scale, seed, jobs)?.to_string()),
    },
    ExperimentDesc {
        id: "fig5",
        description: "LMI controller + DDR SDRAM across four platform organisations (paper Fig. 5)",
        runtime: "~0.2 s",
        runner: |scale, seed, _| Ok(experiments::fig5(scale, seed)?.to_string()),
    },
    ExperimentDesc {
        id: "fig6",
        description: "LMI FIFO state residency under the two-phase workload (paper Fig. 6)",
        runtime: "~0.1 s",
        runner: |scale, seed, _| Ok(experiments::fig6(scale, seed)?.to_string()),
    },
    ExperimentDesc {
        id: "buffering",
        description: "STBus target-FIFO depth sweep closing the gap to AXI",
        runtime: "~0.4 s",
        runner: |scale, seed, _| Ok(experiments::buffering_ablation(scale, seed)?.to_string()),
    },
    ExperimentDesc {
        id: "bridges",
        description: "distributed AXI with blocking vs split-capable bridges",
        runtime: "~0.1 s",
        runner: |scale, seed, _| Ok(experiments::bridge_ablation(scale, seed)?.to_string()),
    },
    ExperimentDesc {
        id: "lmi",
        description: "LMI lookahead depth x merging ablation under full-platform traffic",
        runtime: "~0.5 s",
        runner: |scale, seed, _| Ok(experiments::lmi_ablation(scale, seed)?.to_string()),
    },
    ExperimentDesc {
        id: "arbitration",
        description: "round-robin / fixed-priority / oldest-first on the full LMI platform",
        runtime: "~0.2 s",
        runner: |scale, seed, _| Ok(experiments::arbitration_study(scale, seed)?.to_string()),
    },
    ExperimentDesc {
        id: "noc",
        description: "shared STBus vs crossbar vs 3x4 mesh NoC under saturated traffic",
        runtime: "~0.3 s",
        runner: |scale, seed, _| Ok(experiments::noc_outlook(scale, seed)?.to_string()),
    },
    ExperimentDesc {
        id: "tlm",
        description: "cycle-accurate vs transaction-level fidelity: timing error and speedup",
        runtime: "~0.1 s",
        runner: |scale, seed, _| Ok(experiments::fidelity_study(scale, seed)?.to_string()),
    },
    ExperimentDesc {
        id: "fidelity",
        description:
            "loosely-timed fast-forward gear: fig4 warm-phase speedup vs error per quantum",
        runtime: "~0.3 s",
        runner: |scale, seed, jobs| {
            Ok(experiments::fast_forward_study(scale, seed, jobs)?.to_string())
        },
    },
    ExperimentDesc {
        id: "dual-channel",
        description: "unified memory split across two LMI channels: exec time and FIFO pressure",
        runtime: "~0.2 s",
        runner: |scale, seed, _| Ok(experiments::dual_channel_study(scale, seed)?.to_string()),
    },
    ExperimentDesc {
        id: "robustness",
        description: "fault rate x retry budget degradation table on the distributed LMI platform",
        runtime: "~1 s",
        runner: |scale, seed, jobs| {
            Ok(experiments::robustness_with_jobs(scale, seed, jobs)?.to_string())
        },
    },
    ExperimentDesc {
        id: "dse",
        description:
            "successive-halving design-space exploration: Pareto front over fabric/memory knobs",
        runtime: "~1 s",
        runner: run_dse,
    },
];

/// All experiment identifiers, in registry (and `repro`) order.
pub fn experiment_ids() -> Vec<&'static str> {
    EXPERIMENT_REGISTRY.iter().map(|e| e.id).collect()
}

/// Looks an experiment up by id.
pub fn find_experiment(id: &str) -> Option<&'static ExperimentDesc> {
    EXPERIMENT_REGISTRY.iter().find(|e| e.id == id)
}

/// Runs one experiment by id and returns its printable report.
///
/// # Errors
///
/// Returns an error for unknown ids (listing the valid ones) or if the
/// underlying platform stalls.
pub fn run_experiment(id: &str, scale: u64, seed: u64) -> SimResult<String> {
    run_experiment_with_jobs(id, scale, seed, 1)
}

/// Runs one experiment by id with up to `jobs` worker threads.
///
/// Only the fan-out-shaped experiments (`fig4`, `many-to-many`,
/// `robustness`, `dse`, ...) spread their independent simulation
/// instances over threads; the rest run on the calling thread regardless
/// of `jobs`. The produced table is identical to [`run_experiment`] for
/// any `jobs` value.
///
/// # Errors
///
/// Same as [`run_experiment`].
pub fn run_experiment_with_jobs(id: &str, scale: u64, seed: u64, jobs: usize) -> SimResult<String> {
    match find_experiment(id) {
        Some(desc) => (desc.runner)(scale, seed, jobs),
        None => Err(mpsoc_kernel::SimError::InvalidConfig {
            reason: format!(
                "unknown experiment '{id}'; expected one of {}",
                experiment_ids().join(", ")
            ),
        }),
    }
}

/// CLI-level options of the `dse` experiment that do not fit the uniform
/// `(scale, seed, jobs)` runner signature: checkpointing and resume.
/// The `repro` binary stashes them with [`set_dse_options`] before the
/// run; a plain [`run_experiment`] call gets the defaults (no
/// checkpointing).
#[derive(Debug, Clone, Default)]
pub struct DseOptions {
    /// Frontier checkpoint file (written every `checkpoint_every` rungs,
    /// read back by `resume`).
    pub checkpoint_path: Option<std::path::PathBuf>,
    /// Checkpoint cadence in completed rungs.
    pub checkpoint_every: Option<u32>,
    /// Stop cleanly after N rungs (saving the frontier first).
    pub stop_after: Option<u32>,
    /// Resume from `checkpoint_path` instead of seeding a fresh search.
    pub resume: bool,
}

/// One rung of the ladder as recorded in the ledger's `"dse"` section.
#[derive(Debug, Clone, Serialize)]
pub struct DseRungRecord {
    /// Simulated-time budget in picoseconds (0 = run to quiescence).
    pub budget_ps: u64,
    /// Candidates evaluated this rung.
    pub population: u64,
    /// Candidates promoted to the next rung.
    pub survivors: u64,
    /// Kernel component ticks the rung's evaluations executed.
    pub sim_ticks: u64,
}

/// The `repro --exp dse` measurement recorded in the ledger's `"dse"`
/// section: search shape, front quality and the evaluation fan-out
/// speedup. Produced by the `dse` registry runner, collected by
/// [`take_dse_run`].
#[derive(Debug, Clone, Serialize)]
pub struct DseRun {
    /// Workload scale the search ran at.
    pub scale: u64,
    /// Search seed.
    pub seed: u64,
    /// Evaluation fan-out the timed run used.
    pub jobs: u64,
    /// Hardware threads of the recording host (floors only arm when the
    /// host could actually run the fan-out).
    pub host_cores: u64,
    /// Candidates in the sampled generation.
    pub candidates: u64,
    /// Non-dominated points on the final front.
    pub front_size: u64,
    /// Distinct fabric families represented on the front.
    pub families: u64,
    /// Kernel component ticks across every rung.
    pub sim_ticks: u64,
    /// Wall-clock seconds of the timed (fanned-out) search.
    pub wall_seconds: f64,
    /// Fanned-out vs serial wall-time ratio (1.0 when `jobs` < 2 — no
    /// serial rerun is made then).
    pub fanout_speedup: f64,
    /// Per-rung accounting.
    pub rungs: Vec<DseRungRecord>,
}

static DSE_OPTIONS: std::sync::Mutex<Option<DseOptions>> = std::sync::Mutex::new(None);
static DSE_LAST_RUN: std::sync::Mutex<Option<DseRun>> = std::sync::Mutex::new(None);

/// Stashes checkpoint/resume options for the next `dse` experiment run
/// (consumed by it; later runs revert to the defaults).
pub fn set_dse_options(options: DseOptions) {
    *DSE_OPTIONS.lock().expect("dse options lock") = Some(options);
}

/// Takes the measurement of the most recent `dse` experiment run, if one
/// completed (an interrupted `stop_after` run records nothing).
pub fn take_dse_run() -> Option<DseRun> {
    DSE_LAST_RUN.lock().expect("dse run lock").take()
}

/// The `dse` registry runner: explores the design space, stashes the
/// ledger measurement, and returns the rendered Pareto table. When the
/// run fans out (`jobs` >= 2) the search is repeated serially to measure
/// the fan-out speedup — and the two tables are proven byte-identical,
/// the same self-check discipline as `--warm-fork`.
fn run_dse(scale: u64, seed: u64, jobs: usize) -> SimResult<String> {
    let options = DSE_OPTIONS
        .lock()
        .expect("dse options lock")
        .take()
        .unwrap_or_default();
    let config = mpsoc_dse::DseConfig {
        scale,
        seed,
        jobs: jobs.max(1),
        workload: mpsoc_dse::DseWorkload::Saturated,
        checkpoint_path: options.checkpoint_path,
        checkpoint_every: options.checkpoint_every,
        stop_after: options.stop_after,
        resume: options.resume,
    };
    let started = Instant::now();
    let result = mpsoc_dse::explore(&config)?;
    let wall_seconds = started.elapsed().as_secs_f64().max(1e-9);
    let table = result.to_string();
    if result.stopped {
        // Interrupted mid-ladder: there is no front to record.
        return Ok(table);
    }
    let fanout_speedup = if config.jobs >= 2 && config.stop_after.is_none() && !config.resume {
        let started = Instant::now();
        let serial = mpsoc_dse::explore(&mpsoc_dse::DseConfig {
            jobs: 1,
            checkpoint_path: None,
            checkpoint_every: None,
            ..config
        })?;
        let serial_seconds = started.elapsed().as_secs_f64().max(1e-9);
        let serial_table = serial.to_string();
        if serial_table != table {
            return Err(SimError::InvalidConfig {
                reason: format!(
                    "dse self-check failed: the jobs={} table differs from the serial \
                     one\n--- serial ---\n{serial_table}\n--- jobs={} ---\n{table}",
                    config.jobs, config.jobs
                ),
            });
        }
        serial_seconds / wall_seconds
    } else {
        1.0
    };
    let run = DseRun {
        scale,
        seed,
        jobs: config.jobs as u64,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        candidates: result.candidates as u64,
        front_size: result.front.len() as u64,
        families: result.families_on_front as u64,
        sim_ticks: result.total_sim_ticks(),
        wall_seconds,
        fanout_speedup,
        rungs: result
            .rungs
            .iter()
            .map(|r| DseRungRecord {
                budget_ps: r.budget_ps,
                population: u64::from(r.population),
                survivors: u64::from(r.survivors),
                sim_ticks: r.sim_ticks,
            })
            .collect(),
    };
    *DSE_LAST_RUN.lock().expect("dse run lock") = Some(run);
    Ok(table)
}

/// One experiment execution with its host-side throughput measurements.
///
/// Produced by [`measure_experiment`]; the counters come from the kernel's
/// process-wide [`activity`] snapshots taken around the run, so they are
/// exact as long as no *other* experiment runs concurrently (the `repro`
/// binary runs experiments one at a time; within-experiment worker threads
/// all bill to the experiment that spawned them).
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentRun {
    /// Experiment id (one of [`EXPERIMENT_REGISTRY`]).
    pub id: String,
    /// The rendered result table (what `repro` prints).
    #[serde(skip)]
    pub table: String,
    /// Host wall-clock time of the run in seconds.
    pub wall_seconds: f64,
    /// Clock edges the kernel scheduler processed during the run.
    pub edges: u64,
    /// Component ticks (simulated component-cycles) executed.
    pub ticks: u64,
    /// Component ticks the sparse scheduler proved skippable (quiescent
    /// slots with no due deadline and no pending input). Zero when running
    /// dense.
    pub skipped: u64,
    /// Fast-forward windows handed to components (zero outside the
    /// loosely-timed gear).
    pub ff_windows: u64,
    /// Component-cycles elided inside fast-forward windows (slept over by
    /// the components' own `sleep_until` declarations).
    pub ff_elided: u64,
    /// Clock edges that took the intra-edge parallel path (zero for a
    /// serial run).
    pub par_edges: u64,
    /// Component ticks computed on the parallel path (worker or
    /// main-thread shard).
    pub par_computed: u64,
    /// Parallel-computed ticks whose buffered effects failed commit-time
    /// validation and were re-run serially.
    pub par_reticked: u64,
    /// Parallel-enabled edges that fell back to serial because skip-audit
    /// was on.
    pub par_fallback_audit: u64,
    /// Parallel-enabled edges that fell back to serial for lack of
    /// eligible work.
    pub par_fallback_small: u64,
    /// Host-side scheduler throughput: `edges / wall_seconds`.
    pub edges_per_sec: f64,
    /// Simulated component-cycles per host second: `ticks / wall_seconds`.
    pub sim_cycles_per_sec: f64,
}

impl ExperimentRun {
    /// Fraction of component-edge slots the sparse scheduler skipped, in
    /// `0.0..=1.0` (0 for a dense run or an empty measurement).
    pub fn skip_fraction(&self) -> f64 {
        let total = self.ticks + self.skipped;
        if total == 0 {
            0.0
        } else {
            self.skipped as f64 / total as f64
        }
    }

    /// Fraction of parallel-computed ticks that had to be re-run
    /// serially (0 when the run never took the parallel path).
    pub fn retick_fraction(&self) -> f64 {
        if self.par_computed == 0 {
            0.0
        } else {
            self.par_reticked as f64 / self.par_computed as f64
        }
    }

    /// One-line human-readable performance summary.
    pub fn perf_line(&self) -> String {
        let parallel = if self.par_computed > 0 {
            format!(
                ", {} par ticks ({:.2}% reticked)",
                si(self.par_computed as f64),
                self.retick_fraction() * 100.0,
            )
        } else {
            String::new()
        };
        format!(
            "[{} done in {:.2}s — {} edges/s, {} sim cycles/s, {:.0}% ticks skipped{parallel}]",
            self.id,
            self.wall_seconds,
            si(self.edges_per_sec),
            si(self.sim_cycles_per_sec),
            self.skip_fraction() * 100.0,
        )
    }
}

/// Formats a rate with an SI suffix (`1.23M`, `456k`, ...).
fn si(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

/// Runs one experiment and measures its wall time and kernel throughput.
///
/// # Errors
///
/// Same as [`run_experiment`].
pub fn measure_experiment(
    id: &str,
    scale: u64,
    seed: u64,
    jobs: usize,
) -> SimResult<ExperimentRun> {
    let before = activity::snapshot();
    let started = Instant::now();
    let table = run_experiment_with_jobs(id, scale, seed, jobs)?;
    let wall_seconds = started.elapsed().as_secs_f64().max(1e-9);
    let delta = activity::snapshot().since(before);
    Ok(ExperimentRun {
        id: id.to_string(),
        table,
        wall_seconds,
        edges: delta.edges,
        ticks: delta.ticks,
        skipped: delta.skipped,
        ff_windows: delta.ff_windows,
        ff_elided: delta.ff_elided,
        par_edges: delta.par_edges,
        par_computed: delta.par_computed,
        par_reticked: delta.par_reticked,
        par_fallback_audit: delta.par_fallback_audit,
        par_fallback_small: delta.par_fallback_small,
        edges_per_sec: delta.edges as f64 / wall_seconds,
        sim_cycles_per_sec: delta.ticks as f64 / wall_seconds,
    })
}

/// One point of the fig4 per-jobs scaling curve recorded by
/// [`measure_fig4_scaling`].
#[derive(Debug, Clone, Serialize)]
pub struct Fig4ScalingPoint {
    /// The ladder rung: intra-edge worker threads the sweep asked for.
    pub jobs: u64,
    /// Worker threads the sweep actually ran with after clamping the rung
    /// to the host's cores. Oversubscribing a rung measures scheduler
    /// thrash, not scaling (a one-core host "scales" to 0.02x), so the
    /// recorder clamps and annotates instead of running it.
    pub effective_jobs: u64,
    /// Whether this rung was clamped (`effective_jobs < jobs`).
    pub oversubscribed: bool,
    /// Wall-clock seconds of the sweep at that job count.
    pub wall_seconds: f64,
    /// Speedup over the jobs = 1 sweep of the same curve.
    pub speedup: f64,
}

/// The fig4 sweep timed over the jobs ∈ {1, 2, 4, 8} ladder of intra-edge
/// tick parallelism, with every table proven byte-identical to the serial
/// one. Produced by [`measure_fig4_scaling`]; recorded as the
/// `fig4_scaling` array of the ledger's `"experiments"` section.
#[derive(Debug, Clone)]
pub struct Fig4ScalingRun {
    /// Hardware threads of the recording host (the scaling floors only
    /// arm when the host could actually run the workers).
    pub host_cores: u64,
    /// One point per job count, in ladder order.
    pub points: Vec<Fig4ScalingPoint>,
}

/// The job ladder every per-jobs scaling curve is measured over.
pub const SCALING_JOBS: [usize; 4] = [1, 2, 4, 8];

/// Times the fig4 sweep at every point of [`SCALING_JOBS`] intra-edge
/// worker threads and proves each table byte-identical to the serial one.
///
/// The tick-jobs default is process-global (experiments pick it up at
/// platform construction), so the caller's value is restored via
/// `restore_tick_jobs` afterwards — including on the error path.
///
/// # Errors
///
/// Fails if a sweep stalls, or — the self-check — if any job count's
/// table differs from the serial one in any byte.
pub fn measure_fig4_scaling(
    scale: u64,
    seed: u64,
    restore_tick_jobs: usize,
) -> SimResult<Fig4ScalingRun> {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let result = (|| {
        let mut points = Vec::with_capacity(SCALING_JOBS.len());
        let mut serial: Option<(String, f64)> = None;
        for &jobs in &SCALING_JOBS {
            // Clamp oversubscribed rungs: asking a one-core host for eight
            // workers records scheduler thrash as a 0.02x "speedup".
            let effective_jobs = jobs.min(host_cores);
            mpsoc_kernel::set_tick_jobs_default(effective_jobs);
            let started = Instant::now();
            let table = experiments::fig4_with_jobs(scale, seed, 1)?.to_string();
            let wall_seconds = started.elapsed().as_secs_f64().max(1e-9);
            let serial_seconds = match &serial {
                None => {
                    serial = Some((table.clone(), wall_seconds));
                    wall_seconds
                }
                Some((serial_table, serial_seconds)) => {
                    if *serial_table != table {
                        return Err(SimError::InvalidConfig {
                            reason: format!(
                                "fig4 scaling self-check failed: the tick-jobs={jobs} table \
                                 differs from the serial one\n--- serial ---\n{serial_table}\n\
                                 --- tick-jobs={jobs} ---\n{table}"
                            ),
                        });
                    }
                    *serial_seconds
                }
            };
            points.push(Fig4ScalingPoint {
                jobs: jobs as u64,
                effective_jobs: effective_jobs as u64,
                oversubscribed: effective_jobs < jobs,
                wall_seconds,
                speedup: serial_seconds / wall_seconds,
            });
        }
        Ok(Fig4ScalingRun {
            host_cores: host_cores as u64,
            points,
        })
    })();
    mpsoc_kernel::set_tick_jobs_default(restore_tick_jobs);
    result
}

/// The `repro --warm-fork` measurement: the fig4 sweep run twice, once
/// cold (every point re-simulates the shared warm-up prefix) and once via
/// checkpoint/fork (the prefix is simulated once per topology and every
/// point restores the snapshot blob).
///
/// Produced by [`measure_warm_fork`], which also *proves* the two tables
/// byte-identical before reporting any timing.
#[derive(Debug, Clone, Serialize)]
pub struct WarmForkRun {
    /// Workload multiplier the sweep ran at.
    pub scale: u64,
    /// Simulation seed.
    pub seed: u64,
    /// Worker threads used inside each sweep.
    pub jobs: u64,
    /// The rendered fig4 table (identical for both paths).
    #[serde(skip)]
    pub table: String,
    /// Wall-clock seconds of the cold sweep.
    pub cold_seconds: f64,
    /// Wall-clock seconds of the checkpoint-forked sweep.
    pub fork_seconds: f64,
    /// `cold_seconds / fork_seconds`.
    pub speedup: f64,
}

impl WarmForkRun {
    /// One-line human-readable summary.
    pub fn perf_line(&self) -> String {
        format!(
            "[warm-fork identical: yes — cold {:.2}s, fork {:.2}s, speedup {:.2}x]",
            self.cold_seconds, self.fork_seconds, self.speedup
        )
    }
}

/// Runs the fig4 sweep cold and checkpoint-forked, verifies the two tables
/// are byte-identical, and returns both timings.
///
/// # Errors
///
/// Fails if either sweep stalls, or — the self-check — if the forked table
/// differs from the cold one in any byte, which would mean snapshot
/// restore is not exact.
pub fn measure_warm_fork(scale: u64, seed: u64, jobs: usize) -> SimResult<WarmForkRun> {
    let started = Instant::now();
    let cold = experiments::fig4_with_jobs(scale, seed, jobs)?.to_string();
    let cold_seconds = started.elapsed().as_secs_f64().max(1e-9);
    let started = Instant::now();
    let fork = experiments::fig4_warm_fork_with_jobs(scale, seed, jobs)?.to_string();
    let fork_seconds = started.elapsed().as_secs_f64().max(1e-9);
    if cold != fork {
        return Err(SimError::Snapshot {
            source: mpsoc_kernel::SnapshotError::StructureMismatch {
                detail: format!(
                    "warm-fork self-check failed: the forked fig4 table differs from the \
                     cold one\n--- cold ---\n{cold}\n--- fork ---\n{fork}"
                ),
            },
        });
    }
    Ok(WarmForkRun {
        scale,
        seed,
        jobs: jobs as u64,
        table: fork,
        cold_seconds,
        fork_seconds,
        speedup: cold_seconds / fork_seconds,
    })
}

/// The `repro --fast-warm` measurement: the fig4 warm phase run in the
/// `Cycle` gear and in `Fast` gear at every quantum of the
/// [`experiments::FAST_FORWARD_QUANTA`] sweep, each finished by
/// cycle-accurate tails.
///
/// Produced by [`measure_fast_forward`], which also *proves* the
/// `quantum = 1` table byte-identical to the cycle-gear one before
/// reporting any timing; the reported speedup and error are the default
/// quantum's.
#[derive(Debug, Clone, Serialize)]
pub struct FastForwardRun {
    /// Workload multiplier the sweep ran at.
    pub scale: u64,
    /// Simulation seed.
    pub seed: u64,
    /// Worker threads used by the cycle-accurate tails (the timed warm
    /// phases are always serial).
    pub jobs: u64,
    /// The quantum the headline speedup/error were measured at
    /// ([`mpsoc_kernel::Fidelity::DEFAULT_QUANTUM`]).
    pub quantum: u64,
    /// The rendered speedup-vs-error curve (what `repro` prints).
    #[serde(skip)]
    pub table: String,
    /// Wall-clock seconds of the cycle-gear warm phase.
    pub warm_cycle_seconds: f64,
    /// Wall-clock seconds of the `Fast { quantum }` warm phase.
    pub warm_fast_seconds: f64,
    /// `warm_cycle_seconds / warm_fast_seconds` at the default quantum.
    pub speedup: f64,
    /// Worst per-cell error of the default-quantum sweep, in permille.
    pub max_err_permille: u64,
    /// Whether the `quantum = 1` sweep was byte-identical to the
    /// cycle-gear one (always `true` — a mismatch is an error instead).
    pub q1_identical: bool,
    /// Fast-forward windows handed to components across the measurement.
    pub ff_windows: u64,
    /// Component-cycles elided inside those windows.
    pub ff_elided: u64,
}

impl FastForwardRun {
    /// One-line human-readable summary.
    pub fn perf_line(&self) -> String {
        format!(
            "[fast-forward q=1 identical: yes — warm cycle {:.2}s, fast(q={}) {:.2}s, \
             speedup {:.2}x, max err {}\u{2030}, {} windows / {} cycles elided]",
            self.warm_cycle_seconds,
            self.quantum,
            self.warm_fast_seconds,
            self.speedup,
            self.max_err_permille,
            self.ff_windows,
            self.ff_elided,
        )
    }
}

/// Runs the loosely-timed fast-forward study, verifies the `quantum = 1`
/// identity, and returns the default-quantum headline numbers.
///
/// # Errors
///
/// Fails if a sweep stalls, or — the self-check — if the `quantum = 1`
/// table differs from the cycle-gear one in any byte, which would mean the
/// degenerate gear is not an identity.
pub fn measure_fast_forward(scale: u64, seed: u64, jobs: usize) -> SimResult<FastForwardRun> {
    let before = activity::snapshot();
    let study = experiments::fast_forward_study(scale, seed, jobs)?;
    let delta = activity::snapshot().since(before);
    let q1 = study.q1_row();
    if !q1.identical {
        return Err(SimError::InvalidConfig {
            reason: format!(
                "fast-forward self-check failed: the Fast {{ quantum: 1 }} fig4 table \
                 differs from the cycle-gear one (max err {}\u{2030})",
                q1.max_err_permille
            ),
        });
    }
    let headline = study.default_quantum_row();
    Ok(FastForwardRun {
        scale,
        seed,
        jobs: jobs as u64,
        quantum: headline.quantum,
        warm_cycle_seconds: study.cycle_warm_seconds,
        warm_fast_seconds: headline.warm_seconds,
        speedup: headline.speedup,
        max_err_permille: headline.max_err_permille,
        q1_identical: q1.identical,
        ff_windows: delta.ff_windows,
        ff_elided: delta.ff_elided,
        table: study.to_string(),
    })
}

/// Default scale re-exported for the benches.
pub const fn default_scale() -> u64 {
    DEFAULT_SCALE
}

/// Default seed re-exported for the benches.
pub const fn default_seed() -> u64 {
    DEFAULT_SEED
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_reported() {
        let err = run_experiment("nope", 1, 1).unwrap_err();
        assert!(err.to_string().contains("unknown experiment"));
        assert!(err.to_string().contains("fig3"));
    }

    #[test]
    fn smallest_scale_smoke() {
        let out = run_experiment("many-to-one", 1, 1).expect("runs");
        assert!(out.contains("STBus"));
    }

    #[test]
    fn registry_ids_are_distinct_and_described() {
        let ids = experiment_ids();
        let distinct: std::collections::BTreeSet<_> = ids.iter().collect();
        assert_eq!(distinct.len(), ids.len(), "duplicate experiment id");
        for desc in EXPERIMENT_REGISTRY {
            assert!(!desc.description.is_empty());
            assert!(desc.runtime.starts_with('~'), "runtime is an approximation");
            assert_eq!(find_experiment(desc.id).map(|d| d.id), Some(desc.id));
        }
        assert!(ids.contains(&"dse"), "the dse driver must be registered");
    }

    #[test]
    fn dse_runner_records_a_measurement() {
        let table = run_experiment_with_jobs("dse", 1, 0x0dab, 1).expect("dse runs");
        assert!(table.contains("pareto front"));
        let run = take_dse_run().expect("a completed run is stashed");
        assert!(run.front_size >= 3, "front too small: {}", run.front_size);
        assert!(run.families >= 2);
        assert_eq!(run.jobs, 1);
        assert!((run.fanout_speedup - 1.0).abs() < f64::EPSILON);
        assert!(run.sim_ticks > 0);
        assert_eq!(
            run.rungs.iter().map(|r| r.sim_ticks).sum::<u64>(),
            run.sim_ticks
        );
        assert!(take_dse_run().is_none(), "the stash is take-once");
    }

    #[test]
    fn warm_fork_smoke_is_identical() {
        let run = measure_warm_fork(1, 0x0dab, 1).expect("warm fork runs");
        assert!(run.table.contains("FIG-4"));
        assert!(run.cold_seconds > 0.0 && run.fork_seconds > 0.0);
    }

    #[test]
    fn fig4_scaling_covers_the_job_ladder() {
        let run = measure_fig4_scaling(1, 0x0dab, 1).expect("scaling runs");
        assert_eq!(run.points.len(), SCALING_JOBS.len());
        assert_eq!(run.points[0].jobs, 1);
        assert!((run.points[0].speedup - 1.0).abs() < 1e-9);
        assert!(run.points.iter().all(|p| p.wall_seconds > 0.0));
        assert!(run.host_cores >= 1);
        for p in &run.points {
            assert!(p.effective_jobs >= 1 && p.effective_jobs <= p.jobs);
            assert_eq!(p.effective_jobs, p.jobs.min(run.host_cores));
            assert_eq!(p.oversubscribed, p.effective_jobs < p.jobs);
        }
    }
}
