//! Criterion bench regenerating the paper's Figure 4 (memory-speed sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use mpsoc_platform::experiments::fig4;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("memory_speed_sweep", |b| {
        b.iter(|| fig4(1, 0x0dab).expect("fig4 runs"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
