//! Criterion benches for the extension experiments: the arbitration-policy
//! study and the NoC outlook.

use criterion::{criterion_group, criterion_main, Criterion};
use mpsoc_platform::experiments::{
    arbitration_study, dual_channel_study, fidelity_study, noc_outlook,
};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);
    group.bench_function("arbitration_study", |b| {
        b.iter(|| arbitration_study(1, 0x0dab).expect("runs"))
    });
    group.bench_function("noc_outlook", |b| {
        b.iter(|| noc_outlook(1, 0x0dab).expect("runs"))
    });
    group.bench_function("fidelity_study", |b| {
        b.iter(|| fidelity_study(1, 0x0dab).expect("runs"))
    });
    group.bench_function("dual_channel_study", |b| {
        b.iter(|| dual_channel_study(1, 0x0dab).expect("runs"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
