//! Criterion bench regenerating the paper's Figure 3 (platform instances
//! over on-chip memory).

use criterion::{criterion_group, criterion_main, Criterion};
use mpsoc_platform::experiments::fig3;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("platform_instances_onchip", |b| {
        b.iter(|| fig3(1, 0x0dab).expect("fig3 runs"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
