//! Criterion bench regenerating the Section 4.1.1 many-to-many comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use mpsoc_platform::experiments::many_to_many;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("many_to_many");
    group.sample_size(10);
    group.bench_function("protocol_sweep", |b| {
        b.iter(|| many_to_many(1, 0x0dab).expect("runs"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
