//! Criterion bench regenerating the paper's Figure 6 (LMI bus-interface
//! statistics over two working regimes).

use criterion::{criterion_group, criterion_main, Criterion};
use mpsoc_platform::experiments::fig6;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("lmi_interface_statistics", |b| {
        b.iter(|| fig6(1, 0x0dab).expect("fig6 runs"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
