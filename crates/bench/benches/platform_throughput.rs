//! Simulator wall-clock throughput: simulated cycles per second for the
//! reference platform (useful for tracking performance regressions of the
//! simulator itself).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mpsoc_platform::{build_platform, PlatformSpec};

fn bench(c: &mut Criterion) {
    // Determine cycles of a single run once so Criterion can report
    // simulated-cycles-per-second.
    let cycles = {
        let mut p = build_platform(&PlatformSpec::default()).expect("builds");
        p.run().expect("drains").exec_cycles
    };
    let mut group = c.benchmark_group("platform_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cycles));
    group.bench_function("full_stbus_reference", |b| {
        b.iter(|| {
            let mut p = build_platform(&PlatformSpec::default()).expect("builds");
            p.run().expect("drains").exec_cycles
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
