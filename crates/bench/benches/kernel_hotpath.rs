//! Kernel scheduler hot-path microbench: bucketed vs naive executor.
//!
//! Builds the same synthetic multi-clock platform twice — once on the
//! production clock-domain bucketed [`Simulation`], once on the
//! pre-bucketing full-scan [`NaiveSimulation`] oracle — runs both to the
//! same horizon, and reports host-side scheduler throughput (edges/sec).
//! The measured speedup is recorded in the `"microbench"` section of the
//! `BENCH_kernel.json` perf ledger.
//!
//! Run with:
//!
//! ```bash
//! cargo bench -p mpsoc-bench --bench kernel_hotpath
//! ```
//!
//! The workload is scheduler-bound on purpose: many components spread over
//! several phase-shifted clock domains, each doing a trivial amount of
//! per-tick work. The naive executor pays a full component scan per edge
//! (`O(N)`); the bucketed one touches only the firing domain's members, so
//! the gap widens with component count and domain count.

use mpsoc_bench::ledger;
use mpsoc_kernel::reference::NaiveSimulation;
use mpsoc_kernel::{activity, ClockDomain, Component, Simulation, TickContext, Time};
use serde::Serialize;
use std::time::Instant;

/// Components per run. Large enough that the naive per-edge scan dominates.
const COMPONENTS: usize = 384;
/// Simulated horizon per run.
const HORIZON_NS: u64 = 40_000;
/// Best-of-N sampling to shrug off scheduler noise on the host.
const SAMPLES: usize = 3;

/// Trivial synchronous model: counts its own ticks and stays idle.
struct Spinner {
    ticks: u64,
}

impl mpsoc_kernel::Snapshot for Spinner {}

impl Component<u64> for Spinner {
    fn name(&self) -> &str {
        "spinner"
    }
    fn tick(&mut self, _ctx: &mut TickContext<'_, u64>) {
        self.ticks = self.ticks.wrapping_add(1);
    }
}

/// The clock set: related frequencies crossed with phase shifts, mirroring
/// a platform where every IP block brings its own clock tree. Many small
/// domains is exactly the regime the bucketed scheduler targets: the naive
/// executor scans every component on every edge no matter how few fire.
fn clock_set() -> Vec<ClockDomain> {
    let mut clocks = Vec::new();
    for mhz in [400u64, 200, 133, 100, 66, 50, 33, 25] {
        for phase_ns in [0u64, 1, 3, 7, 13, 29] {
            clocks.push(ClockDomain::from_mhz(mhz).with_phase(Time::from_ns(phase_ns)));
        }
    }
    clocks
}

/// One measured run; returns (edges processed, wall seconds).
fn measure<F: FnOnce()>(run: F) -> (u64, f64) {
    let before = activity::snapshot();
    let started = Instant::now();
    run();
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    let delta = activity::snapshot().since(before);
    (delta.edges, wall)
}

fn bench_bucketed(horizon: Time) -> (u64, f64) {
    let clocks = clock_set();
    let mut sim: Simulation<u64> = Simulation::new();
    for i in 0..COMPONENTS {
        sim.add_component(Box::new(Spinner { ticks: 0 }), clocks[i % clocks.len()]);
    }
    measure(|| sim.run_until(horizon))
}

fn bench_naive(horizon: Time) -> (u64, f64) {
    let clocks = clock_set();
    let mut sim: NaiveSimulation<u64> = NaiveSimulation::new();
    for i in 0..COMPONENTS {
        sim.add_component(Box::new(Spinner { ticks: 0 }), clocks[i % clocks.len()]);
    }
    measure(|| sim.run_until(horizon))
}

/// Best-of-N edges/sec for a benchmark closure.
fn best_rate(runs: impl Fn() -> (u64, f64)) -> (u64, f64) {
    let mut best_edges = 0u64;
    let mut best_rate = 0.0f64;
    for _ in 0..SAMPLES {
        let (edges, wall) = runs();
        let rate = edges as f64 / wall;
        if rate > best_rate {
            best_rate = rate;
            best_edges = edges;
        }
    }
    (best_edges, best_rate)
}

/// The `"microbench"` section of `BENCH_kernel.json`.
#[derive(Serialize)]
struct MicrobenchSection {
    components: u64,
    clock_domains: u64,
    horizon_ns: u64,
    samples: u64,
    edges_per_run: u64,
    naive_edges_per_sec: f64,
    bucketed_edges_per_sec: f64,
    speedup: f64,
}

fn main() {
    let horizon = Time::from_ns(HORIZON_NS);
    let domains = {
        let clocks = clock_set();
        let mut sim: Simulation<u64> = Simulation::new();
        for i in 0..COMPONENTS {
            sim.add_component(Box::new(Spinner { ticks: 0 }), clocks[i % clocks.len()]);
        }
        sim.domain_count() as u64
    };

    println!(
        "kernel_hotpath: {COMPONENTS} components over {domains} clock domains, \
         horizon {HORIZON_NS} ns, best of {SAMPLES}"
    );

    let (naive_edges, naive_rate) = best_rate(|| bench_naive(horizon));
    println!(
        "  naive    : {naive_edges} edges, {:.3}M edges/s",
        naive_rate / 1e6
    );

    let (bucketed_edges, bucketed_rate) = best_rate(|| bench_bucketed(horizon));
    println!(
        "  bucketed : {bucketed_edges} edges, {:.3}M edges/s",
        bucketed_rate / 1e6
    );

    assert_eq!(
        naive_edges, bucketed_edges,
        "both executors must process the same edge sequence"
    );

    let speedup = bucketed_rate / naive_rate;
    println!("  speedup  : {speedup:.2}x");

    let section = MicrobenchSection {
        components: COMPONENTS as u64,
        clock_domains: domains,
        horizon_ns: HORIZON_NS,
        samples: SAMPLES as u64,
        edges_per_run: bucketed_edges,
        naive_edges_per_sec: naive_rate,
        bucketed_edges_per_sec: bucketed_rate,
        speedup,
    };
    let path = ledger::default_path();
    match ledger::update_section(&path, "microbench", &section.to_json()) {
        Ok(()) => println!("perf ledger updated: {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}
