//! Kernel scheduler hot-path microbench: bucketed vs naive executor.
//!
//! Builds the same synthetic multi-clock platform twice — once on the
//! production clock-domain bucketed [`Simulation`], once on the
//! pre-bucketing full-scan [`NaiveSimulation`] oracle — runs both to the
//! same horizon, and reports host-side scheduler throughput (edges/sec).
//! The measured speedup is recorded in the `"microbench"` section of the
//! `BENCH_kernel.json` perf ledger.
//!
//! Run with:
//!
//! ```bash
//! cargo bench -p mpsoc-bench --bench kernel_hotpath
//! ```
//!
//! The workload is scheduler-bound on purpose: many components spread over
//! several phase-shifted clock domains, each doing a trivial amount of
//! per-tick work. The naive executor pays a full component scan per edge
//! (`O(N)`); the bucketed one touches only the firing domain's members, so
//! the gap widens with component count and domain count.

use mpsoc_bench::ledger;
use mpsoc_kernel::reference::NaiveSimulation;
use mpsoc_kernel::{activity, ClockDomain, Component, LinkId, Simulation, TickContext, Time};
use serde::Serialize;
use std::cell::Cell;
use std::rc::Rc;
use std::time::Instant;

/// Components per run. Large enough that the naive per-edge scan dominates.
const COMPONENTS: usize = 384;
/// Simulated horizon per run.
const HORIZON_NS: u64 = 40_000;
/// Best-of-N sampling to shrug off scheduler noise on the host.
const SAMPLES: usize = 3;

/// Trivial synchronous model: counts its own ticks and stays idle.
struct Spinner {
    ticks: u64,
}

impl mpsoc_kernel::Snapshot for Spinner {}

impl Component<u64> for Spinner {
    fn name(&self) -> &str {
        "spinner"
    }
    fn tick(&mut self, _ctx: &mut TickContext<'_, u64>) {
        self.ticks = self.ticks.wrapping_add(1);
    }
}

/// The clock set: related frequencies crossed with phase shifts, mirroring
/// a platform where every IP block brings its own clock tree. Many small
/// domains is exactly the regime the bucketed scheduler targets: the naive
/// executor scans every component on every edge no matter how few fire.
fn clock_set() -> Vec<ClockDomain> {
    let mut clocks = Vec::new();
    for mhz in [400u64, 200, 133, 100, 66, 50, 33, 25] {
        for phase_ns in [0u64, 1, 3, 7, 13, 29] {
            clocks.push(ClockDomain::from_mhz(mhz).with_phase(Time::from_ns(phase_ns)));
        }
    }
    clocks
}

/// One measured run; returns (edges processed, wall seconds).
fn measure<F: FnOnce()>(run: F) -> (u64, f64) {
    let before = activity::snapshot();
    let started = Instant::now();
    run();
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    let delta = activity::snapshot().since(before);
    (delta.edges, wall)
}

fn bench_bucketed(horizon: Time) -> (u64, f64) {
    let clocks = clock_set();
    let mut sim: Simulation<u64> = Simulation::new();
    for i in 0..COMPONENTS {
        sim.add_component(Box::new(Spinner { ticks: 0 }), clocks[i % clocks.len()]);
    }
    measure(|| sim.run_until(horizon))
}

fn bench_naive(horizon: Time) -> (u64, f64) {
    let clocks = clock_set();
    let mut sim: NaiveSimulation<u64> = NaiveSimulation::new();
    for i in 0..COMPONENTS {
        sim.add_component(Box::new(Spinner { ticks: 0 }), clocks[i % clocks.len()]);
    }
    measure(|| sim.run_until(horizon))
}

/// Best-of-N edges/sec for a benchmark closure.
fn best_rate(runs: impl Fn() -> (u64, f64)) -> (u64, f64) {
    let mut best_edges = 0u64;
    let mut best_rate = 0.0f64;
    for _ in 0..SAMPLES {
        let (edges, wall) = runs();
        let rate = edges as f64 / wall;
        if rate > best_rate {
            best_rate = rate;
            best_edges = edges;
        }
    }
    (best_edges, best_rate)
}

// ---------------------------------------------------------------------------
// Idle-heavy case: sparse vs dense ticking.
//
// Many initiators stalled on slow memory is the regime the paper's fig3-fig6
// platforms spend most of their time in: every initiator issues one request,
// then sits idle for a long think window while the memory drains. The dense
// schedule still ticks all of them every edge; the sparse active-set schedule
// executes only the due ones. Both run on the *same* bucketed executor, so
// edges and delivered payloads must match exactly — only executed ticks and
// wall time may differ.
// ---------------------------------------------------------------------------

/// Initiators in the idle-heavy case.
const INITIATORS: usize = 256;
/// Memories the initiators round-robin onto.
const MEMORIES: usize = 4;
/// Cycles each initiator stalls between requests — the idleness knob.
const THINK_CYCLES: u64 = 200;
/// Simulated horizon for the idle-heavy case.
const IDLE_HORIZON_NS: u64 = 40_000;

/// A request generator stalled on memory: pushes one payload, then sleeps
/// [`THINK_CYCLES`] of its own clock, advertising the wake instant through
/// `next_activity`. A full link leaves the deadline in the past, so it
/// retries every edge exactly like the dense schedule would.
struct IdleInitiator {
    out: LinkId,
    period: Time,
    next_at: Time,
    sent: Rc<Cell<u64>>,
}

impl mpsoc_kernel::Snapshot for IdleInitiator {
    fn save(&self, w: &mut mpsoc_kernel::StateWriter) {
        w.write_time(self.next_at);
    }
    fn restore(&mut self, r: &mut mpsoc_kernel::StateReader<'_>) {
        self.next_at = r.read_time();
    }
}

impl Component<u64> for IdleInitiator {
    fn name(&self) -> &str {
        "idle-initiator"
    }
    fn tick(&mut self, ctx: &mut TickContext<'_, u64>) {
        if ctx.time >= self.next_at && ctx.links.can_push(self.out) {
            ctx.links.push(self.out, ctx.time, 1).unwrap();
            self.sent.set(self.sent.get() + 1);
            self.next_at = ctx.time + self.period * THINK_CYCLES;
        }
    }
    fn watched_links(&self) -> Option<Vec<LinkId>> {
        Some(Vec::new()) // purely timer-driven
    }
    fn next_activity(&self) -> Option<Time> {
        Some(self.next_at)
    }
}

/// A memory port draining one request per tick from each attached link,
/// woken only by deliveries.
struct MemoryPort {
    inputs: Vec<LinkId>,
    served: Rc<Cell<u64>>,
}

impl mpsoc_kernel::Snapshot for MemoryPort {}

impl Component<u64> for MemoryPort {
    fn name(&self) -> &str {
        "memory-port"
    }
    fn tick(&mut self, ctx: &mut TickContext<'_, u64>) {
        for &input in &self.inputs {
            if ctx.links.pop(input, ctx.time).is_some() {
                self.served.set(self.served.get() + 1);
            }
        }
    }
    fn watched_links(&self) -> Option<Vec<LinkId>> {
        Some(self.inputs.clone())
    }
}

/// Counters observed from one idle-heavy run.
struct IdleRun {
    edges: u64,
    ticks: u64,
    skipped: u64,
    served: u64,
    wall: f64,
}

fn bench_idle_heavy(dense: bool) -> IdleRun {
    let clocks: Vec<ClockDomain> = [400u64, 200, 133, 100]
        .iter()
        .map(|&mhz| ClockDomain::from_mhz(mhz))
        .collect();
    let sent = Rc::new(Cell::new(0u64));
    let served = Rc::new(Cell::new(0u64));
    let mut sim: Simulation<u64> = Simulation::new();
    sim.set_dense(dense);
    let mut memory_inputs: Vec<Vec<LinkId>> = vec![Vec::new(); MEMORIES];
    for i in 0..INITIATORS {
        let clk = clocks[i % clocks.len()];
        let link = sim.links_mut().add_link(format!("req{i}"), 2, clk.period());
        memory_inputs[i % MEMORIES].push(link);
        sim.add_component(
            Box::new(IdleInitiator {
                out: link,
                period: clk.period(),
                next_at: Time::ZERO,
                sent: Rc::clone(&sent),
            }),
            clk,
        );
    }
    for inputs in memory_inputs {
        sim.add_component(
            Box::new(MemoryPort {
                inputs,
                served: Rc::clone(&served),
            }),
            clocks[0],
        );
    }
    let before = activity::snapshot();
    let started = Instant::now();
    sim.run_until(Time::from_ns(IDLE_HORIZON_NS));
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    let delta = activity::snapshot().since(before);
    IdleRun {
        edges: delta.edges,
        ticks: delta.ticks,
        skipped: delta.skipped,
        served: served.get(),
        wall,
    }
}

/// The `"sparse"` section of `BENCH_kernel.json`: the idle-heavy case's
/// sparse-vs-dense comparison.
#[derive(Serialize)]
struct SparseSection {
    initiators: u64,
    memories: u64,
    think_cycles: u64,
    horizon_ns: u64,
    samples: u64,
    edges_per_run: u64,
    dense_ticks: u64,
    sparse_ticks: u64,
    skip_fraction: f64,
    dense_edges_per_sec: f64,
    sparse_edges_per_sec: f64,
    speedup: f64,
}

/// The `"microbench"` section of `BENCH_kernel.json`.
#[derive(Serialize)]
struct MicrobenchSection {
    components: u64,
    clock_domains: u64,
    horizon_ns: u64,
    samples: u64,
    edges_per_run: u64,
    naive_edges_per_sec: f64,
    bucketed_edges_per_sec: f64,
    speedup: f64,
}

/// Options parsed from the bench's command line. `cargo bench` forwards
/// everything after `--`; unknown flags (e.g. the harness's own `--bench`)
/// are ignored.
struct Options {
    /// Fail the run if the idle-heavy sparse speedup lands below this.
    min_sparse_speedup: Option<f64>,
    /// Also refresh the committed `BENCH_kernel.json` at the repo root.
    committed: bool,
}

fn parse_options() -> Options {
    let mut opts = Options {
        min_sparse_speedup: None,
        committed: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--min-sparse-speedup" => {
                let value = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--min-sparse-speedup needs a number");
                opts.min_sparse_speedup = Some(value);
            }
            "--committed" => opts.committed = true,
            _ => {}
        }
    }
    opts
}

fn main() {
    let opts = parse_options();
    let horizon = Time::from_ns(HORIZON_NS);
    let domains = {
        let clocks = clock_set();
        let mut sim: Simulation<u64> = Simulation::new();
        for i in 0..COMPONENTS {
            sim.add_component(Box::new(Spinner { ticks: 0 }), clocks[i % clocks.len()]);
        }
        sim.domain_count() as u64
    };

    println!(
        "kernel_hotpath: {COMPONENTS} components over {domains} clock domains, \
         horizon {HORIZON_NS} ns, best of {SAMPLES}"
    );

    let (naive_edges, naive_rate) = best_rate(|| bench_naive(horizon));
    println!(
        "  naive    : {naive_edges} edges, {:.3}M edges/s",
        naive_rate / 1e6
    );

    let (bucketed_edges, bucketed_rate) = best_rate(|| bench_bucketed(horizon));
    println!(
        "  bucketed : {bucketed_edges} edges, {:.3}M edges/s",
        bucketed_rate / 1e6
    );

    assert_eq!(
        naive_edges, bucketed_edges,
        "both executors must process the same edge sequence"
    );

    let speedup = bucketed_rate / naive_rate;
    println!("  speedup  : {speedup:.2}x");

    let section = MicrobenchSection {
        components: COMPONENTS as u64,
        clock_domains: domains,
        horizon_ns: HORIZON_NS,
        samples: SAMPLES as u64,
        edges_per_run: bucketed_edges,
        naive_edges_per_sec: naive_rate,
        bucketed_edges_per_sec: bucketed_rate,
        speedup,
    };
    let path = ledger::default_path();
    match ledger::update_section(&path, "microbench", &section.to_json()) {
        Ok(()) => println!("perf ledger updated: {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }

    println!(
        "\nidle-heavy: {INITIATORS} initiators x {MEMORIES} memories, \
         think {THINK_CYCLES} cycles, horizon {IDLE_HORIZON_NS} ns, best of {SAMPLES}"
    );

    let mut dense_best: Option<IdleRun> = None;
    let mut sparse_best: Option<IdleRun> = None;
    for _ in 0..SAMPLES {
        let dense = bench_idle_heavy(true);
        let sparse = bench_idle_heavy(false);
        // Same executor, same components, same horizon: the schedules must
        // agree on everything observable.
        assert_eq!(
            dense.edges, sparse.edges,
            "sparse and dense must process the same edge sequence"
        );
        assert_eq!(
            dense.served, sparse.served,
            "sparse and dense must deliver the same payloads"
        );
        assert_eq!(dense.skipped, 0, "the dense schedule never skips");
        if dense_best.as_ref().is_none_or(|b| dense.wall < b.wall) {
            dense_best = Some(dense);
        }
        if sparse_best.as_ref().is_none_or(|b| sparse.wall < b.wall) {
            sparse_best = Some(sparse);
        }
    }
    let dense = dense_best.expect("sampled");
    let sparse = sparse_best.expect("sampled");
    let dense_rate = dense.edges as f64 / dense.wall;
    let sparse_rate = sparse.edges as f64 / sparse.wall;
    let skip_fraction = sparse.skipped as f64 / (sparse.ticks + sparse.skipped).max(1) as f64;
    let sparse_speedup = sparse_rate / dense_rate;
    println!(
        "  dense    : {} edges, {} ticks, {:.3}M edges/s",
        dense.edges,
        dense.ticks,
        dense_rate / 1e6
    );
    println!(
        "  sparse   : {} edges, {} ticks ({:.0}% skipped), {:.3}M edges/s",
        sparse.edges,
        sparse.ticks,
        skip_fraction * 100.0,
        sparse_rate / 1e6
    );
    println!("  speedup  : {sparse_speedup:.2}x");

    let sparse_section = SparseSection {
        initiators: INITIATORS as u64,
        memories: MEMORIES as u64,
        think_cycles: THINK_CYCLES,
        horizon_ns: IDLE_HORIZON_NS,
        samples: SAMPLES as u64,
        edges_per_run: sparse.edges,
        dense_ticks: dense.ticks,
        sparse_ticks: sparse.ticks,
        skip_fraction,
        dense_edges_per_sec: dense_rate,
        sparse_edges_per_sec: sparse_rate,
        speedup: sparse_speedup,
    };
    match ledger::update_section(&path, "sparse", &sparse_section.to_json()) {
        Ok(()) => println!("perf ledger updated: {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
    if opts.committed {
        let committed = ledger::committed_path();
        let microbench = ledger::update_section(&committed, "microbench", &section.to_json());
        let sparse_write = ledger::update_section(&committed, "sparse", &sparse_section.to_json());
        match microbench.and(sparse_write) {
            Ok(()) => println!("committed ledger updated: {}", committed.display()),
            Err(e) => eprintln!("failed to write {}: {e}", committed.display()),
        }
    }

    if let Some(floor) = opts.min_sparse_speedup {
        if sparse_speedup < floor {
            eprintln!(
                "sparse-ticking floor FAILED: {sparse_speedup:.2}x below the {floor}x floor \
                 on the idle-heavy case"
            );
            std::process::exit(1);
        }
        println!("[check sparse speedup {sparse_speedup:.2}x >= {floor}x — ok]");
    }
}
