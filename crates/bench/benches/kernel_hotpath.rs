//! Kernel scheduler hot-path microbench: bucketed vs naive executor.
//!
//! Builds the same synthetic multi-clock platform twice — once on the
//! production clock-domain bucketed [`Simulation`], once on the
//! pre-bucketing full-scan [`NaiveSimulation`] oracle — runs both to the
//! same horizon, and reports host-side scheduler throughput (edges/sec).
//! The measured speedup is recorded in the `"microbench"` section of the
//! `BENCH_kernel.json` perf ledger.
//!
//! Run with:
//!
//! ```bash
//! cargo bench -p mpsoc-bench --bench kernel_hotpath
//! ```
//!
//! The workload is scheduler-bound on purpose: many components spread over
//! several phase-shifted clock domains, each doing a trivial amount of
//! per-tick work. The naive executor pays a full component scan per edge
//! (`O(N)`); the bucketed one touches only the firing domain's members, so
//! the gap widens with component count and domain count.

use mpsoc_bench::{ledger, SCALING_JOBS};
use mpsoc_kernel::reference::NaiveSimulation;
use mpsoc_kernel::stats::CounterId;
use mpsoc_kernel::{activity, ClockDomain, Component, LinkId, Simulation, TickContext, Time};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Components per run. Large enough that the naive per-edge scan dominates.
const COMPONENTS: usize = 384;
/// Simulated horizon per run.
const HORIZON_NS: u64 = 40_000;
/// Best-of-N sampling to shrug off scheduler noise on the host.
const SAMPLES: usize = 3;

/// Trivial synchronous model: counts its own ticks and stays idle.
struct Spinner {
    ticks: u64,
}

impl mpsoc_kernel::Snapshot for Spinner {}

impl Component<u64> for Spinner {
    fn name(&self) -> &str {
        "spinner"
    }
    fn tick(&mut self, _ctx: &mut TickContext<'_, u64>) {
        self.ticks = self.ticks.wrapping_add(1);
    }
}

/// The clock set: related frequencies crossed with phase shifts, mirroring
/// a platform where every IP block brings its own clock tree. Many small
/// domains is exactly the regime the bucketed scheduler targets: the naive
/// executor scans every component on every edge no matter how few fire.
fn clock_set() -> Vec<ClockDomain> {
    let mut clocks = Vec::new();
    for mhz in [400u64, 200, 133, 100, 66, 50, 33, 25] {
        for phase_ns in [0u64, 1, 3, 7, 13, 29] {
            clocks.push(ClockDomain::from_mhz(mhz).with_phase(Time::from_ns(phase_ns)));
        }
    }
    clocks
}

/// One measured run; returns (edges processed, wall seconds).
fn measure<F: FnOnce()>(run: F) -> (u64, f64) {
    let before = activity::snapshot();
    let started = Instant::now();
    run();
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    let delta = activity::snapshot().since(before);
    (delta.edges, wall)
}

fn bench_bucketed(horizon: Time) -> (u64, f64) {
    let clocks = clock_set();
    let mut sim: Simulation<u64> = Simulation::new();
    for i in 0..COMPONENTS {
        sim.add_component(Box::new(Spinner { ticks: 0 }), clocks[i % clocks.len()]);
    }
    measure(|| sim.run_until(horizon))
}

fn bench_naive(horizon: Time) -> (u64, f64) {
    let clocks = clock_set();
    let mut sim: NaiveSimulation<u64> = NaiveSimulation::new();
    for i in 0..COMPONENTS {
        sim.add_component(Box::new(Spinner { ticks: 0 }), clocks[i % clocks.len()]);
    }
    measure(|| sim.run_until(horizon))
}

/// Best-of-N edges/sec for a benchmark closure.
fn best_rate(runs: impl Fn() -> (u64, f64)) -> (u64, f64) {
    let mut best_edges = 0u64;
    let mut best_rate = 0.0f64;
    for _ in 0..SAMPLES {
        let (edges, wall) = runs();
        let rate = edges as f64 / wall;
        if rate > best_rate {
            best_rate = rate;
            best_edges = edges;
        }
    }
    (best_edges, best_rate)
}

// ---------------------------------------------------------------------------
// Idle-heavy case: sparse vs dense ticking.
//
// Many initiators stalled on slow memory is the regime the paper's fig3-fig6
// platforms spend most of their time in: every initiator issues one request,
// then sits idle for a long think window while the memory drains. The dense
// schedule still ticks all of them every edge; the sparse active-set schedule
// executes only the due ones. Both run on the *same* bucketed executor, so
// edges and delivered payloads must match exactly — only executed ticks and
// wall time may differ.
// ---------------------------------------------------------------------------

/// Initiators in the idle-heavy case.
const INITIATORS: usize = 256;
/// Memories the initiators round-robin onto.
const MEMORIES: usize = 4;
/// Cycles each initiator stalls between requests — the idleness knob.
const THINK_CYCLES: u64 = 200;
/// Simulated horizon for the idle-heavy case.
const IDLE_HORIZON_NS: u64 = 40_000;

/// A request generator stalled on memory: pushes one payload, then sleeps
/// [`THINK_CYCLES`] of its own clock, advertising the wake instant through
/// `next_activity`. A full link leaves the deadline in the past, so it
/// retries every edge exactly like the dense schedule would.
struct IdleInitiator {
    out: LinkId,
    period: Time,
    next_at: Time,
    sent: Arc<AtomicU64>,
}

impl mpsoc_kernel::Snapshot for IdleInitiator {
    fn save(&self, w: &mut mpsoc_kernel::StateWriter) {
        w.write_time(self.next_at);
    }
    fn restore(&mut self, r: &mut mpsoc_kernel::StateReader<'_>) {
        self.next_at = r.read_time();
    }
}

impl Component<u64> for IdleInitiator {
    fn name(&self) -> &str {
        "idle-initiator"
    }
    fn tick(&mut self, ctx: &mut TickContext<'_, u64>) {
        if ctx.time >= self.next_at && ctx.links.can_push(self.out) {
            ctx.links.push(self.out, ctx.time, 1).unwrap();
            self.sent.fetch_add(1, Ordering::Relaxed);
            self.next_at = ctx.time + self.period * THINK_CYCLES;
        }
    }
    fn watched_links(&self) -> Option<Vec<LinkId>> {
        Some(Vec::new()) // purely timer-driven
    }
    fn next_activity(&self) -> Option<Time> {
        Some(self.next_at)
    }
}

/// A memory port draining one request per tick from each attached link,
/// woken only by deliveries.
struct MemoryPort {
    inputs: Vec<LinkId>,
    served: Arc<AtomicU64>,
}

impl mpsoc_kernel::Snapshot for MemoryPort {}

impl Component<u64> for MemoryPort {
    fn name(&self) -> &str {
        "memory-port"
    }
    fn tick(&mut self, ctx: &mut TickContext<'_, u64>) {
        for &input in &self.inputs {
            if ctx.links.pop(input, ctx.time).is_some() {
                self.served.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    fn watched_links(&self) -> Option<Vec<LinkId>> {
        Some(self.inputs.clone())
    }
}

/// Counters observed from one idle-heavy run.
struct IdleRun {
    edges: u64,
    ticks: u64,
    skipped: u64,
    served: u64,
    wall: f64,
}

fn bench_idle_heavy(dense: bool) -> IdleRun {
    let clocks: Vec<ClockDomain> = [400u64, 200, 133, 100]
        .iter()
        .map(|&mhz| ClockDomain::from_mhz(mhz))
        .collect();
    let sent = Arc::new(AtomicU64::new(0));
    let served = Arc::new(AtomicU64::new(0));
    let mut sim: Simulation<u64> = Simulation::new();
    sim.set_dense(dense);
    let mut memory_inputs: Vec<Vec<LinkId>> = vec![Vec::new(); MEMORIES];
    for i in 0..INITIATORS {
        let clk = clocks[i % clocks.len()];
        let link = sim.links_mut().add_link(format!("req{i}"), 2, clk.period());
        memory_inputs[i % MEMORIES].push(link);
        sim.add_component(
            Box::new(IdleInitiator {
                out: link,
                period: clk.period(),
                next_at: Time::ZERO,
                sent: Arc::clone(&sent),
            }),
            clk,
        );
    }
    for inputs in memory_inputs {
        sim.add_component(
            Box::new(MemoryPort {
                inputs,
                served: Arc::clone(&served),
            }),
            clocks[0],
        );
    }
    let before = activity::snapshot();
    let started = Instant::now();
    sim.run_until(Time::from_ns(IDLE_HORIZON_NS));
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    let delta = activity::snapshot().since(before);
    IdleRun {
        edges: delta.edges,
        ticks: delta.ticks,
        skipped: delta.skipped,
        served: served.load(Ordering::Relaxed),
        wall,
    }
}

// ---------------------------------------------------------------------------
// Compute-heavy case: serial vs intra-edge parallel tick execution.
//
// Many initiators each doing real per-tick work on one shared clock edge is
// the regime the compute/commit split targets: the workers tick the
// parallel-safe initiators against a frozen view while the main thread only
// replays their buffered effects in registration order. The output is
// guaranteed byte-identical to serial — asserted here on the rendered stats
// table and the checkpoint bytes — so the only thing allowed to change is
// wall time.
// ---------------------------------------------------------------------------

/// Parallel-safe initiators in the compute-heavy case.
const CRUNCHERS: usize = 128;
/// Mixing rounds each cruncher burns per tick — the work knob.
const CRUNCH_ROUNDS: u64 = 800;
/// Simulated horizon for the compute-heavy case.
const PAR_HORIZON_NS: u64 = 10_000;
/// Worker threads the parallel sample runs with.
const PAR_TICK_JOBS: usize = 4;

/// A compute-heavy initiator: burns [`CRUNCH_ROUNDS`] of integer mixing on
/// its own state every tick, pushes the digest onto its output link and
/// counts the tick. All cross-component effects go through the context, so
/// the kernel may tick it from a worker thread.
struct Cruncher {
    name: String,
    out: LinkId,
    state: u64,
    counter: Option<CounterId>,
}

impl mpsoc_kernel::Snapshot for Cruncher {
    fn save(&self, w: &mut mpsoc_kernel::StateWriter) {
        w.write_u64(self.state);
    }
    fn restore(&mut self, r: &mut mpsoc_kernel::StateReader<'_>) {
        self.state = r.read_u64();
    }
}

impl Component<u64> for Cruncher {
    fn name(&self) -> &str {
        &self.name
    }
    fn register_metrics(&self, stats: &mut mpsoc_kernel::StatsRegistry) {
        // Pre-registering at build time is what keeps the buffered ticks
        // commit-clean: a lazily created counter would miss in the frozen
        // stats view and force a serial retick of the first parallel tick.
        stats.counter(&format!("{}.ticks", self.name));
    }
    fn tick(&mut self, ctx: &mut TickContext<'_, u64>) {
        let counter = match self.counter {
            Some(c) => c,
            None => {
                let c = ctx.stats.counter(&format!("{}.ticks", self.name));
                self.counter = Some(c);
                c
            }
        };
        let mut x = self.state;
        for _ in 0..CRUNCH_ROUNDS {
            // SplitMix64 finalizer — cheap, serially dependent, unhoistable.
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= z ^ (z >> 31);
        }
        self.state = x;
        if ctx.links.can_push(self.out) {
            ctx.links.push(self.out, ctx.time, x).unwrap();
        }
        ctx.stats.inc(counter, 1);
    }
    fn parallel_safe(&self) -> bool {
        true
    }
}

/// Drains every cruncher's output link; deliberately *not* parallel-safe,
/// so each edge mixes worker-computed and serially-committed slots exactly
/// like a real platform with a legacy component in it.
struct Drain {
    inputs: Vec<LinkId>,
    drained: u64,
}

impl mpsoc_kernel::Snapshot for Drain {
    fn save(&self, w: &mut mpsoc_kernel::StateWriter) {
        w.write_u64(self.drained);
    }
    fn restore(&mut self, r: &mut mpsoc_kernel::StateReader<'_>) {
        self.drained = r.read_u64();
    }
}

impl Component<u64> for Drain {
    fn name(&self) -> &str {
        "drain"
    }
    fn tick(&mut self, ctx: &mut TickContext<'_, u64>) {
        for &input in &self.inputs {
            if ctx.links.pop(input, ctx.time).is_some() {
                self.drained += 1;
            }
        }
    }
}

/// Observables of one compute-heavy run.
struct ParRun {
    edges: u64,
    wall: f64,
    report: String,
    blob: Vec<u8>,
    par_computed: u64,
    par_reticked: u64,
}

/// One compute-heavy run at `jobs` worker threads: returns edges, wall
/// seconds and the run's observable fingerprint (stats table + checkpoint).
fn bench_parallel(jobs: usize) -> ParRun {
    let clk = ClockDomain::from_mhz(400);
    let mut sim: Simulation<u64> = Simulation::new();
    sim.set_tick_jobs(jobs);
    let mut inputs = Vec::with_capacity(CRUNCHERS);
    let mut crunchers = Vec::with_capacity(CRUNCHERS);
    for i in 0..CRUNCHERS {
        let link = sim
            .links_mut()
            .add_link(format!("digest{i}"), 4, clk.period());
        inputs.push(link);
        crunchers.push(Cruncher {
            name: format!("crunch{i}"),
            out: link,
            state: 0x9e37_79b9_7f4a_7c15 ^ i as u64,
            counter: None,
        });
    }
    for c in crunchers {
        sim.add_component(Box::new(c), clk);
    }
    sim.add_component(Box::new(Drain { inputs, drained: 0 }), clk);
    let before = activity::snapshot();
    let started = Instant::now();
    sim.run_until(Time::from_ns(PAR_HORIZON_NS));
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    let delta = activity::snapshot().since(before);
    let report = sim.stats().report(sim.time()).to_string();
    ParRun {
        edges: delta.edges,
        wall,
        report,
        blob: sim.checkpoint().as_bytes().to_vec(),
        par_computed: delta.par_computed,
        par_reticked: delta.par_reticked,
    }
}

/// One point of the recorded per-jobs scaling curve. `jobs` is the
/// ladder rung; `effective_jobs` is what actually ran after clamping to
/// the host's cores — an oversubscribed rung (more workers than cores)
/// measures scheduler thrash, not scaling, so the recorder never runs
/// one and annotates the clamp instead.
#[derive(Serialize)]
struct ScalingJson {
    jobs: u64,
    effective_jobs: u64,
    oversubscribed: bool,
    edges_per_sec: f64,
    speedup: f64,
}

/// The `"parallel"` section of `BENCH_kernel.json`: the compute-heavy
/// case's per-jobs scaling curve, stamped with the measuring host's core
/// count so readers can judge a sub-floor speedup. The headline
/// `speedup` is the curve's [`PAR_TICK_JOBS`] point; `scaling` must stay
/// the last field so the section's top-level `speedup` is the first one
/// a prefix scan finds.
#[derive(Serialize)]
struct ParallelSection {
    components: u64,
    rounds_per_tick: u64,
    horizon_ns: u64,
    samples: u64,
    tick_jobs: u64,
    host_cores: u64,
    edges_per_run: u64,
    serial_edges_per_sec: f64,
    parallel_edges_per_sec: f64,
    speedup: f64,
    scaling: Vec<ScalingJson>,
}

/// The `"sparse"` section of `BENCH_kernel.json`: the idle-heavy case's
/// sparse-vs-dense comparison.
#[derive(Serialize)]
struct SparseSection {
    initiators: u64,
    memories: u64,
    think_cycles: u64,
    horizon_ns: u64,
    samples: u64,
    edges_per_run: u64,
    dense_ticks: u64,
    sparse_ticks: u64,
    skip_fraction: f64,
    dense_edges_per_sec: f64,
    sparse_edges_per_sec: f64,
    speedup: f64,
}

/// The `"microbench"` section of `BENCH_kernel.json`.
#[derive(Serialize)]
struct MicrobenchSection {
    components: u64,
    clock_domains: u64,
    horizon_ns: u64,
    samples: u64,
    edges_per_run: u64,
    naive_edges_per_sec: f64,
    bucketed_edges_per_sec: f64,
    speedup: f64,
}

/// Options parsed from the bench's command line. `cargo bench` forwards
/// everything after `--`; unknown flags (e.g. the harness's own `--bench`)
/// are ignored.
struct Options {
    /// Fail the run if the idle-heavy sparse speedup lands below this.
    min_sparse_speedup: Option<f64>,
    /// Fail the run if the compute-heavy parallel speedup lands below
    /// this. Only meaningful on hosts with at least [`PAR_TICK_JOBS`]
    /// cores; `ci.sh` gates the flag on `nproc`.
    min_parallel_speedup: Option<f64>,
    /// Also refresh the committed `BENCH_kernel.json` at the repo root.
    committed: bool,
}

fn parse_options() -> Options {
    let mut opts = Options {
        min_sparse_speedup: None,
        min_parallel_speedup: None,
        committed: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--min-sparse-speedup" => {
                let value = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--min-sparse-speedup needs a number");
                opts.min_sparse_speedup = Some(value);
            }
            "--min-parallel-speedup" => {
                let value = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--min-parallel-speedup needs a number");
                opts.min_parallel_speedup = Some(value);
            }
            "--committed" => opts.committed = true,
            _ => {}
        }
    }
    opts
}

fn main() {
    let opts = parse_options();
    let horizon = Time::from_ns(HORIZON_NS);
    let domains = {
        let clocks = clock_set();
        let mut sim: Simulation<u64> = Simulation::new();
        for i in 0..COMPONENTS {
            sim.add_component(Box::new(Spinner { ticks: 0 }), clocks[i % clocks.len()]);
        }
        sim.domain_count() as u64
    };

    println!(
        "kernel_hotpath: {COMPONENTS} components over {domains} clock domains, \
         horizon {HORIZON_NS} ns, best of {SAMPLES}"
    );

    let (naive_edges, naive_rate) = best_rate(|| bench_naive(horizon));
    println!(
        "  naive    : {naive_edges} edges, {:.3}M edges/s",
        naive_rate / 1e6
    );

    let (bucketed_edges, bucketed_rate) = best_rate(|| bench_bucketed(horizon));
    println!(
        "  bucketed : {bucketed_edges} edges, {:.3}M edges/s",
        bucketed_rate / 1e6
    );

    assert_eq!(
        naive_edges, bucketed_edges,
        "both executors must process the same edge sequence"
    );

    let speedup = bucketed_rate / naive_rate;
    println!("  speedup  : {speedup:.2}x");

    let section = MicrobenchSection {
        components: COMPONENTS as u64,
        clock_domains: domains,
        horizon_ns: HORIZON_NS,
        samples: SAMPLES as u64,
        edges_per_run: bucketed_edges,
        naive_edges_per_sec: naive_rate,
        bucketed_edges_per_sec: bucketed_rate,
        speedup,
    };
    let path = ledger::default_path();
    match ledger::update_section(&path, "microbench", &section.to_json()) {
        Ok(()) => println!("perf ledger updated: {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }

    println!(
        "\nidle-heavy: {INITIATORS} initiators x {MEMORIES} memories, \
         think {THINK_CYCLES} cycles, horizon {IDLE_HORIZON_NS} ns, best of {SAMPLES}"
    );

    let mut dense_best: Option<IdleRun> = None;
    let mut sparse_best: Option<IdleRun> = None;
    for _ in 0..SAMPLES {
        let dense = bench_idle_heavy(true);
        let sparse = bench_idle_heavy(false);
        // Same executor, same components, same horizon: the schedules must
        // agree on everything observable.
        assert_eq!(
            dense.edges, sparse.edges,
            "sparse and dense must process the same edge sequence"
        );
        assert_eq!(
            dense.served, sparse.served,
            "sparse and dense must deliver the same payloads"
        );
        assert_eq!(dense.skipped, 0, "the dense schedule never skips");
        if dense_best.as_ref().is_none_or(|b| dense.wall < b.wall) {
            dense_best = Some(dense);
        }
        if sparse_best.as_ref().is_none_or(|b| sparse.wall < b.wall) {
            sparse_best = Some(sparse);
        }
    }
    let dense = dense_best.expect("sampled");
    let sparse = sparse_best.expect("sampled");
    let dense_rate = dense.edges as f64 / dense.wall;
    let sparse_rate = sparse.edges as f64 / sparse.wall;
    let skip_fraction = sparse.skipped as f64 / (sparse.ticks + sparse.skipped).max(1) as f64;
    let sparse_speedup = sparse_rate / dense_rate;
    println!(
        "  dense    : {} edges, {} ticks, {:.3}M edges/s",
        dense.edges,
        dense.ticks,
        dense_rate / 1e6
    );
    println!(
        "  sparse   : {} edges, {} ticks ({:.0}% skipped), {:.3}M edges/s",
        sparse.edges,
        sparse.ticks,
        skip_fraction * 100.0,
        sparse_rate / 1e6
    );
    println!("  speedup  : {sparse_speedup:.2}x");

    let sparse_section = SparseSection {
        initiators: INITIATORS as u64,
        memories: MEMORIES as u64,
        think_cycles: THINK_CYCLES,
        horizon_ns: IDLE_HORIZON_NS,
        samples: SAMPLES as u64,
        edges_per_run: sparse.edges,
        dense_ticks: dense.ticks,
        sparse_ticks: sparse.ticks,
        skip_fraction,
        dense_edges_per_sec: dense_rate,
        sparse_edges_per_sec: sparse_rate,
        speedup: sparse_speedup,
    };
    match ledger::update_section(&path, "sparse", &sparse_section.to_json()) {
        Ok(()) => println!("perf ledger updated: {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get() as u64);
    println!(
        "\ncompute-heavy: {CRUNCHERS} crunchers x {CRUNCH_ROUNDS} rounds/tick, \
         horizon {PAR_HORIZON_NS} ns, jobs ladder {SCALING_JOBS:?} on {host_cores} \
         core(s), best of {SAMPLES}"
    );

    // The scaling ladder: jobs = 1 is the serial baseline; every higher
    // job count must reproduce its observables byte for byte — the whole
    // point of the compute/commit split — and with pre-registered metrics
    // and buffered fault/RNG draws the retick rate must stay marginal.
    // Rungs beyond the host's cores are clamped: oversubscribing measures
    // scheduler thrash (0.02x "speedups" on a one-core box), not the code.
    let mut best: Vec<Option<ParRun>> = SCALING_JOBS.iter().map(|_| None).collect();
    for _ in 0..SAMPLES {
        let serial = bench_parallel(SCALING_JOBS[0]);
        for (slot, &jobs) in best.iter_mut().zip(&SCALING_JOBS).skip(1) {
            let run = bench_parallel(jobs.min(host_cores as usize));
            assert_eq!(serial.edges, run.edges, "jobs={jobs} edge count differs");
            assert_eq!(
                serial.report, run.report,
                "jobs={jobs} rendered a different stats table"
            );
            assert_eq!(
                serial.blob, run.blob,
                "jobs={jobs} checkpointed to different bytes"
            );
            assert!(
                run.par_reticked * 100 <= run.par_computed,
                "jobs={jobs}: {} of {} parallel ticks re-ran serially (>1%)",
                run.par_reticked,
                run.par_computed,
            );
            if slot.as_ref().is_none_or(|b| run.wall < b.wall) {
                *slot = Some(run);
            }
        }
        if best[0].as_ref().is_none_or(|b| serial.wall < b.wall) {
            best[0] = Some(serial);
        }
    }
    let runs: Vec<ParRun> = best.into_iter().map(|b| b.expect("sampled")).collect();
    let par_edges = runs[0].edges;
    let serial_rate = par_edges as f64 / runs[0].wall;
    let mut scaling = Vec::with_capacity(runs.len());
    for (&jobs, run) in SCALING_JOBS.iter().zip(&runs) {
        let effective_jobs = jobs.min(host_cores as usize);
        let oversubscribed = effective_jobs < jobs;
        let rate = run.edges as f64 / run.wall;
        let speedup = rate / serial_rate;
        println!(
            "  jobs {jobs:<4}: {:.3}M edges/s, {speedup:.2}x, {} par ticks, {} reticked{}",
            rate / 1e6,
            run.par_computed,
            run.par_reticked,
            if oversubscribed {
                format!(" (clamped to {effective_jobs} on this host)")
            } else {
                String::new()
            },
        );
        scaling.push(ScalingJson {
            jobs: jobs as u64,
            effective_jobs: effective_jobs as u64,
            oversubscribed,
            edges_per_sec: rate,
            speedup,
        });
    }
    let headline = scaling
        .iter()
        .find(|p| p.jobs == PAR_TICK_JOBS as u64)
        .expect("the ladder includes the headline job count");
    let par_rate = headline.edges_per_sec;
    let par_speedup = headline.speedup;
    println!(
        "  headline : {par_speedup:.2}x at {PAR_TICK_JOBS} jobs \
         (tables and checkpoints byte-identical at every job count)"
    );

    let parallel_section = ParallelSection {
        components: CRUNCHERS as u64,
        rounds_per_tick: CRUNCH_ROUNDS,
        horizon_ns: PAR_HORIZON_NS,
        samples: SAMPLES as u64,
        tick_jobs: PAR_TICK_JOBS as u64,
        host_cores,
        edges_per_run: par_edges,
        serial_edges_per_sec: serial_rate,
        parallel_edges_per_sec: par_rate,
        speedup: par_speedup,
        scaling,
    };
    match ledger::update_section(&path, "parallel", &parallel_section.to_json()) {
        Ok(()) => println!("perf ledger updated: {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }

    if opts.committed {
        let committed = ledger::committed_path();
        let microbench = ledger::update_section(&committed, "microbench", &section.to_json());
        let sparse_write = ledger::update_section(&committed, "sparse", &sparse_section.to_json());
        let parallel_write =
            ledger::update_section(&committed, "parallel", &parallel_section.to_json());
        match microbench.and(sparse_write).and(parallel_write) {
            Ok(()) => println!("committed ledger updated: {}", committed.display()),
            Err(e) => eprintln!("failed to write {}: {e}", committed.display()),
        }
    }

    if let Some(floor) = opts.min_sparse_speedup {
        if sparse_speedup < floor {
            eprintln!(
                "sparse-ticking floor FAILED: {sparse_speedup:.2}x below the {floor}x floor \
                 on the idle-heavy case"
            );
            std::process::exit(1);
        }
        println!("[check sparse speedup {sparse_speedup:.2}x >= {floor}x — ok]");
    }
    if let Some(floor) = opts.min_parallel_speedup {
        if par_speedup < floor {
            eprintln!(
                "parallel floor FAILED: {par_speedup:.2}x below the {floor}x floor \
                 on the compute-heavy case ({host_cores} cores, {PAR_TICK_JOBS} jobs)"
            );
            std::process::exit(1);
        }
        println!("[check parallel speedup {par_speedup:.2}x >= {floor}x — ok]");
    }
}
