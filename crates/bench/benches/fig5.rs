//! Criterion bench regenerating the paper's Figure 5 (LMI + DDR platform
//! instances).

use criterion::{criterion_group, criterion_main, Criterion};
use mpsoc_platform::experiments::fig5;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("platform_instances_lmi", |b| {
        b.iter(|| fig5(1, 0x0dab).expect("fig5 runs"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
