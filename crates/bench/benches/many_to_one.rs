//! Criterion bench regenerating the Section 4.1.2 many-to-one comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use mpsoc_platform::experiments::many_to_one;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("many_to_one");
    group.sample_size(10);
    group.bench_function("protocol_equivalence", |b| {
        b.iter(|| many_to_one(1, 0x0dab).expect("runs"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
