//! Criterion benches for the ablation studies (buffering depth, bridge
//! functionality, LMI optimization engine).

use criterion::{criterion_group, criterion_main, Criterion};
use mpsoc_platform::experiments::{bridge_ablation, buffering_ablation, lmi_ablation};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("buffering_depth", |b| {
        b.iter(|| buffering_ablation(1, 0x0dab).expect("runs"))
    });
    group.bench_function("bridge_functionality", |b| {
        b.iter(|| bridge_ablation(1, 0x0dab).expect("runs"))
    });
    group.bench_function("lmi_optimizations", |b| {
        b.iter(|| lmi_ablation(1, 0x0dab).expect("runs"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
