//! # mpsoc-protocol
//!
//! Protocol-agnostic vocabulary shared by every bus, bridge, memory and
//! traffic model in the workspace: transactions, request/response packets,
//! address decoding, data-width algebra and protocol capability descriptors.
//!
//! The reference platform (Medardoni et al., DATE 2007) mixes three on-chip
//! communication protocols — STBus Types 1/2/3, AMBA AHB and AMBA AXI — over
//! heterogeneous data widths and clock frequencies. This crate captures what
//! those protocols have in common so that initiators (traffic generators,
//! the DSP model), targets (memories, the LMI controller) and bridges can be
//! wired to any interconnect without modification:
//!
//! * [`Transaction`] — a timing-accurate read or write burst with message
//!   grouping (STBus message-based arbitration operates on these groups).
//! * [`Packet`] — the payload type carried on kernel links: a request or a
//!   response.
//! * [`AddressMap`] — validated, non-overlapping address decoding.
//! * [`DataWidth`] — bus width algebra (beat counts across conversions).
//! * [`ProtocolKind`] — per-protocol capability matrix (split transactions,
//!   posted writes, out-of-order responses, outstanding limits).
//! * [`TransactionTracker`] — bookkeeping used by platforms and tests to
//!   assert transaction conservation and collect latency statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod arbitration;
mod ids;
mod packet;
pub mod persist;
mod protocol_kind;
pub mod testing;
mod tlm;
mod tracker;
mod transaction;
mod width;

pub use address::{AddressMap, AddressMapError, AddressRange};
pub use arbitration::{ArbitrationPolicy, Contender};
pub use ids::{InitiatorId, MessageId, TransactionId};
pub use packet::{Packet, Response};
pub use protocol_kind::ProtocolKind;
pub use tlm::{TlmBus, TlmBusConfig};
pub use tracker::{TrackerError, TransactionTracker};
pub use transaction::{Opcode, Transaction, TransactionBuilder};
pub use width::DataWidth;
