//! Snapshot serialization helpers for protocol vocabulary types.
//!
//! Every component crate that carries [`Transaction`]s or [`Response`]s in
//! its private state (FIFOs, in-flight tables, retry queues) uses these
//! helpers in its [`Snapshot`](mpsoc_kernel::Snapshot) implementation, and
//! the kernel serializes link queues through the
//! [`SnapshotPayload`] impl for [`Packet`].
//!
//! Only identifier-bearing fields need care: ids are reconstructed from
//! their raw packed representations, which round-trip exactly.

use crate::ids::{InitiatorId, MessageId, TransactionId};
use crate::packet::{Packet, Response};
use crate::transaction::{Opcode, Transaction};
use crate::width::DataWidth;
use mpsoc_kernel::{SnapshotPayload, StateReader, StateWriter};

/// Writes a [`TransactionId`].
pub fn save_txn_id(id: TransactionId, w: &mut StateWriter) {
    w.write_u64(id.raw());
}

/// Reads a [`TransactionId`].
pub fn load_txn_id(r: &mut StateReader<'_>) -> TransactionId {
    let raw = r.read_u64();
    TransactionId::new(InitiatorId::new((raw >> 48) as u16), raw & 0xffff_ffff_ffff)
}

/// Writes a [`DataWidth`] as its byte count.
pub fn save_width(width: DataWidth, w: &mut StateWriter) {
    w.write_u32(width.bytes());
}

/// Reads a [`DataWidth`] written by [`save_width`].
pub fn load_width(r: &mut StateReader<'_>) -> DataWidth {
    // A poisoned reader yields 0, which from_bytes rejects; substitute a
    // valid width so decoding continues to the reader's own error.
    match r.read_u32() {
        b if b.is_power_of_two() && b <= 64 => DataWidth::from_bytes(b),
        _ => DataWidth::BITS32,
    }
}

/// Writes a complete [`Transaction`].
pub fn save_txn(txn: &Transaction, w: &mut StateWriter) {
    save_txn_id(txn.id, w);
    w.write_u16(txn.initiator.raw());
    w.write_bool(txn.opcode.is_write());
    w.write_u64(txn.addr);
    w.write_u32(txn.beats);
    save_width(txn.width, w);
    w.write_u8(txn.priority);
    w.write_bool(txn.posted);
    w.write_u64(txn.message.raw());
    w.write_bool(txn.last_in_message);
    w.write_time(txn.created_at);
}

/// Reads a [`Transaction`] written by [`save_txn`].
pub fn load_txn(r: &mut StateReader<'_>) -> Transaction {
    let id = load_txn_id(r);
    let initiator = InitiatorId::new(r.read_u16());
    let opcode = if r.read_bool() {
        Opcode::Write
    } else {
        Opcode::Read
    };
    Transaction {
        id,
        initiator,
        opcode,
        addr: r.read_u64(),
        beats: r.read_u32(),
        width: load_width(r),
        priority: r.read_u8(),
        posted: r.read_bool(),
        message: MessageId::new(r.read_u64()),
        last_in_message: r.read_bool(),
        created_at: r.read_time(),
    }
}

/// Writes a complete [`Response`].
pub fn save_response(resp: &Response, w: &mut StateWriter) {
    save_txn(&resp.txn, w);
    w.write_u32(resp.gap_per_beat);
    w.write_time(resp.serviced_at);
    w.write_bool(resp.error);
}

/// Reads a [`Response`] written by [`save_response`].
pub fn load_response(r: &mut StateReader<'_>) -> Response {
    let txn = load_txn(r);
    Response {
        txn,
        gap_per_beat: r.read_u32(),
        serviced_at: r.read_time(),
        error: r.read_bool(),
    }
}

/// Writes an `Option<Transaction>` as a presence flag plus value.
pub fn save_opt_txn(txn: &Option<Transaction>, w: &mut StateWriter) {
    w.write_bool(txn.is_some());
    if let Some(t) = txn {
        save_txn(t, w);
    }
}

/// Reads an `Option<Transaction>` written by [`save_opt_txn`].
pub fn load_opt_txn(r: &mut StateReader<'_>) -> Option<Transaction> {
    r.read_bool().then(|| load_txn(r))
}

/// Writes an `Option<Response>` as a presence flag plus value.
pub fn save_opt_response(resp: &Option<Response>, w: &mut StateWriter) {
    w.write_bool(resp.is_some());
    if let Some(x) = resp {
        save_response(x, w);
    }
}

/// Reads an `Option<Response>` written by [`save_opt_response`].
pub fn load_opt_response(r: &mut StateReader<'_>) -> Option<Response> {
    r.read_bool().then(|| load_response(r))
}

impl SnapshotPayload for Packet {
    fn save_payload(&self, w: &mut StateWriter) {
        match self {
            Packet::Request(txn) => {
                w.write_bool(false);
                save_txn(txn, w);
            }
            Packet::Response(resp) => {
                w.write_bool(true);
                save_response(resp, w);
            }
        }
    }

    fn restore_payload(r: &mut StateReader<'_>) -> Self {
        if r.read_bool() {
            Packet::Response(load_response(r))
        } else {
            Packet::Request(load_txn(r))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_kernel::Time;

    fn sample_txn() -> Transaction {
        Transaction::builder(InitiatorId::new(9), 0x1234)
            .write(0xdead_0000)
            .beats(7)
            .width(DataWidth::BITS64)
            .priority(3)
            .posted(true)
            .message(MessageId::new(55), false)
            .created_at(Time::from_ns(120))
            .build()
    }

    #[test]
    fn txn_round_trips_exactly() {
        let txn = sample_txn();
        let mut w = StateWriter::new();
        save_txn(&txn, &mut w);
        let blob = w.finish();
        let mut r = StateReader::new(&blob).unwrap();
        assert_eq!(load_txn(&mut r), txn);
        r.finish().unwrap();
    }

    #[test]
    fn packet_variants_round_trip() {
        let req = Packet::Request(sample_txn());
        let resp = Packet::Response(Response::new(sample_txn(), Time::from_ns(300)).with_gap(2));
        let err = Packet::Response(Response::error(sample_txn(), Time::from_ns(5)));
        let mut w = StateWriter::new();
        for p in [&req, &resp, &err] {
            p.save_payload(&mut w);
        }
        let blob = w.finish();
        let mut r = StateReader::new(&blob).unwrap();
        assert_eq!(Packet::restore_payload(&mut r), req);
        assert_eq!(Packet::restore_payload(&mut r), resp);
        assert_eq!(Packet::restore_payload(&mut r), err);
        r.finish().unwrap();
    }

    #[test]
    fn options_round_trip() {
        let mut w = StateWriter::new();
        save_opt_txn(&Some(sample_txn()), &mut w);
        save_opt_txn(&None, &mut w);
        save_opt_response(&Some(Response::new(sample_txn(), Time::ZERO)), &mut w);
        save_opt_response(&None, &mut w);
        let blob = w.finish();
        let mut r = StateReader::new(&blob).unwrap();
        assert_eq!(load_opt_txn(&mut r), Some(sample_txn()));
        assert_eq!(load_opt_txn(&mut r), None);
        assert!(load_opt_response(&mut r).is_some());
        assert_eq!(load_opt_response(&mut r), None);
        r.finish().unwrap();
    }
}
