//! Arbitration policies for bus nodes.

use mpsoc_kernel::Time;
use std::fmt;

/// A request competing for a grant, as seen by the arbiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Contender {
    /// Index of the initiator port.
    pub port: usize,
    /// STBus priority label of the head transaction.
    pub priority: u8,
    /// Creation time of the head transaction (for oldest-first policies).
    pub created_at: Time,
}

/// How a node picks among simultaneously requesting initiators.
///
/// With STBus *message-based arbitration* the policy is consulted only at
/// message boundaries; within a message the previous winner keeps the grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArbitrationPolicy {
    /// Rotating fairness: the port after the previous winner gets the first
    /// chance.
    #[default]
    RoundRobin,
    /// Highest [`Contender::priority`] wins; ties break to the lowest port
    /// index. Can starve low-priority ports under saturation.
    FixedPriority,
    /// The transaction that has waited longest wins (global age order).
    OldestFirst,
}

impl ArbitrationPolicy {
    /// Picks the winning contender.
    ///
    /// `last_winner` is the port that won most recently and `port_count`
    /// the total number of initiator ports (both used by round-robin).
    /// Returns `None` when `contenders` is empty.
    pub fn pick(
        self,
        contenders: &[Contender],
        last_winner: usize,
        port_count: usize,
    ) -> Option<Contender> {
        if contenders.is_empty() {
            return None;
        }
        let winner = match self {
            ArbitrationPolicy::RoundRobin => {
                let n = port_count.max(1);
                let first = (last_winner + 1) % n;
                *contenders
                    .iter()
                    .min_by_key(|c| (c.port + n - first) % n)
                    .expect("non-empty")
            }
            ArbitrationPolicy::FixedPriority => *contenders
                .iter()
                .max_by(|a, b| a.priority.cmp(&b.priority).then(b.port.cmp(&a.port)))
                .expect("non-empty"),
            ArbitrationPolicy::OldestFirst => *contenders
                .iter()
                .min_by(|a, b| a.created_at.cmp(&b.created_at).then(a.port.cmp(&b.port)))
                .expect("non-empty"),
        };
        Some(winner)
    }
}

impl fmt::Display for ArbitrationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArbitrationPolicy::RoundRobin => write!(f, "round-robin"),
            ArbitrationPolicy::FixedPriority => write!(f, "fixed-priority"),
            ArbitrationPolicy::OldestFirst => write!(f, "oldest-first"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(port: usize, priority: u8, age_ns: u64) -> Contender {
        Contender {
            port,
            priority,
            created_at: Time::from_ns(age_ns),
        }
    }

    #[test]
    fn round_robin_rotates() {
        let contenders = vec![c(0, 0, 0), c(1, 0, 0), c(3, 0, 0)];
        let p = ArbitrationPolicy::RoundRobin;
        assert_eq!(p.pick(&contenders, 0, 4).unwrap().port, 1);
        assert_eq!(p.pick(&contenders, 1, 4).unwrap().port, 3);
        assert_eq!(p.pick(&contenders, 3, 4).unwrap().port, 0);
    }

    #[test]
    fn round_robin_gives_everyone_a_turn() {
        let contenders = vec![c(0, 0, 0), c(1, 0, 0), c(2, 0, 0)];
        let p = ArbitrationPolicy::RoundRobin;
        let mut last = 2;
        let mut seen = Vec::new();
        for _ in 0..3 {
            let w = p.pick(&contenders, last, 3).unwrap().port;
            seen.push(w);
            last = w;
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn fixed_priority_prefers_high_then_low_port() {
        let p = ArbitrationPolicy::FixedPriority;
        let contenders = vec![c(0, 1, 0), c(1, 7, 0), c(2, 7, 0)];
        assert_eq!(p.pick(&contenders, 0, 3).unwrap().port, 1);
    }

    #[test]
    fn oldest_first_prefers_age() {
        let p = ArbitrationPolicy::OldestFirst;
        let contenders = vec![c(0, 0, 50), c(1, 0, 10), c(2, 0, 10)];
        let w = p.pick(&contenders, 0, 3).unwrap();
        assert_eq!(w.port, 1); // oldest, tie broken to lower port
    }

    #[test]
    fn empty_contender_list() {
        assert_eq!(ArbitrationPolicy::RoundRobin.pick(&[], 0, 4), None);
        assert_eq!(ArbitrationPolicy::FixedPriority.pick(&[], 0, 4), None);
    }

    #[test]
    fn displays_are_stable() {
        assert_eq!(ArbitrationPolicy::RoundRobin.to_string(), "round-robin");
        assert_eq!(
            ArbitrationPolicy::FixedPriority.to_string(),
            "fixed-priority"
        );
        assert_eq!(ArbitrationPolicy::OldestFirst.to_string(), "oldest-first");
    }
}
