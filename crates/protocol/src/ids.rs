//! Identifier newtypes for transactions, initiators and messages.

use std::fmt;

/// Globally unique identifier of a [`Transaction`](crate::Transaction).
///
/// Allocated by initiators from a per-initiator counter combined with the
/// initiator id, so ids never collide across the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransactionId(u64);

impl TransactionId {
    /// Builds a transaction id from an initiator and its local sequence
    /// number.
    pub fn new(initiator: InitiatorId, seq: u64) -> Self {
        TransactionId(((initiator.raw() as u64) << 48) | (seq & 0xffff_ffff_ffff))
    }

    /// The initiator that allocated this id.
    pub fn initiator(self) -> InitiatorId {
        InitiatorId::new((self.0 >> 48) as u16)
    }

    /// The initiator-local sequence number.
    pub fn sequence(self) -> u64 {
        self.0 & 0xffff_ffff_ffff
    }

    /// Raw representation.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TransactionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn[{}.{}]", self.initiator().raw(), self.sequence())
    }
}

/// Identifier of a communication initiator (master), unique in a platform.
///
/// Corresponds to STBus *source labelling* (introduced by Type 2) and to AXI
/// transaction-id master fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InitiatorId(u16);

impl InitiatorId {
    /// Creates an initiator id.
    pub const fn new(raw: u16) -> Self {
        InitiatorId(raw)
    }

    /// Raw value.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for InitiatorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "init#{}", self.0)
    }
}

/// Identifier of an STBus *message*: a group of transactions that
/// message-granularity arbitration keeps together end to end.
///
/// The paper stresses that messaging "ensures that a sequence of transactions
/// that can be optimized by the memory controller ... are kept together all
/// the way to the controller" — bus arbiters re-arbitrate only at message
/// boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageId(u64);

impl MessageId {
    /// Creates a message id.
    pub const fn new(raw: u64) -> Self {
        MessageId(raw)
    }

    /// Raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "msg#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_packs_and_unpacks() {
        let id = TransactionId::new(InitiatorId::new(7), 123_456);
        assert_eq!(id.initiator(), InitiatorId::new(7));
        assert_eq!(id.sequence(), 123_456);
    }

    #[test]
    fn txn_ids_unique_across_initiators() {
        let a = TransactionId::new(InitiatorId::new(1), 5);
        let b = TransactionId::new(InitiatorId::new(2), 5);
        assert_ne!(a, b);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            TransactionId::new(InitiatorId::new(3), 9).to_string(),
            "txn[3.9]"
        );
        assert_eq!(InitiatorId::new(4).to_string(), "init#4");
        assert_eq!(MessageId::new(2).to_string(), "msg#2");
    }
}
