//! A transaction-level (TLM) interconnect: the fast, approximate end of the
//! multi-abstraction spectrum.
//!
//! The paper's virtual platform is explicitly *multi-abstraction*: IPTGs can
//! "generate bus transactions at different abstraction levels
//! (transaction-level, bus cycle-accurate) according to what is specified".
//! [`TlmBus`] is the transaction-level transport: it routes requests and
//! responses with a fixed latency and **no arbitration, channel occupancy or
//! back-pressure modelling** beyond link capacities. Runs are much faster
//! and still functionally correct, at the cost of contention accuracy —
//! useful for warm-up, software bring-up and first-order exploration before
//! switching the same platform to the cycle-accurate buses.
//!
//! It lives in `mpsoc-protocol` because it is protocol-agnostic by
//! construction.

use crate::packet::Packet;
use crate::{AddressMap, AddressMapError, AddressRange, TransactionId};
use mpsoc_kernel::{ClockDomain, Component, LinkId, TickContext};
use std::collections::HashMap;

/// Configuration of a [`TlmBus`].
#[derive(Debug, Clone, Copy)]
pub struct TlmBusConfig {
    /// Fixed forwarding latency, in bus cycles, applied in each direction.
    pub latency_cycles: u64,
    /// How many packets may be forwarded per direction per cycle (models an
    /// aggregate bandwidth ceiling without per-channel detail; `usize::MAX`
    /// for a pure functional transport).
    pub packets_per_cycle: usize,
}

impl Default for TlmBusConfig {
    fn default() -> Self {
        TlmBusConfig {
            latency_cycles: 2,
            packets_per_cycle: usize::MAX,
        }
    }
}

#[derive(Debug)]
struct InitiatorPort {
    req_in: LinkId,
    resp_out: LinkId,
}

#[derive(Debug)]
struct TargetPort {
    req_out: LinkId,
    resp_in: LinkId,
}

/// A transaction-level interconnect with fixed latency and no contention
/// modelling.
///
/// Wiring is identical to the cycle-accurate buses, so platforms can swap
/// fidelity without touching endpoints.
///
/// # Examples
///
/// ```
/// use mpsoc_kernel::{Simulation, ClockDomain};
/// use mpsoc_protocol::{AddressRange, Packet, TlmBus, TlmBusConfig};
///
/// let mut sim: Simulation<Packet> = Simulation::new();
/// let clk = ClockDomain::from_mhz(250);
/// let i_req = sim.links_mut().add_link("i.req", 4, clk.period());
/// let i_resp = sim.links_mut().add_link("i.resp", 4, clk.period());
/// let t_req = sim.links_mut().add_link("t.req", 4, clk.period());
/// let t_resp = sim.links_mut().add_link("t.resp", 4, clk.period());
/// let mut bus = TlmBus::new("tlm", TlmBusConfig::default(), clk);
/// bus.add_initiator(i_req, i_resp);
/// let t = bus.add_target(t_req, t_resp);
/// bus.add_route(AddressRange::new(0, 0x1000_0000), t)?;
/// sim.add_component(Box::new(bus), clk);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct TlmBus {
    name: String,
    config: TlmBusConfig,
    clock: ClockDomain,
    initiators: Vec<InitiatorPort>,
    targets: Vec<TargetPort>,
    map: AddressMap<usize>,
    in_flight: HashMap<TransactionId, usize>,
}

impl TlmBus {
    /// Creates a TLM bus with no ports.
    pub fn new(name: impl Into<String>, config: TlmBusConfig, clock: ClockDomain) -> Self {
        TlmBus {
            name: name.into(),
            config,
            clock,
            initiators: Vec::new(),
            targets: Vec::new(),
            map: AddressMap::new(),
            in_flight: HashMap::new(),
        }
    }

    /// Attaches an initiator port; returns its index.
    pub fn add_initiator(&mut self, req_in: LinkId, resp_out: LinkId) -> usize {
        self.initiators.push(InitiatorPort { req_in, resp_out });
        self.initiators.len() - 1
    }

    /// Attaches a target port; returns its index.
    pub fn add_target(&mut self, req_out: LinkId, resp_in: LinkId) -> usize {
        self.targets.push(TargetPort { req_out, resp_in });
        self.targets.len() - 1
    }

    /// Routes an address range to a target port.
    ///
    /// # Errors
    ///
    /// Returns an error if the range overlaps an existing route.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not a valid target-port index.
    pub fn add_route(&mut self, range: AddressRange, target: usize) -> Result<(), AddressMapError> {
        assert!(
            target < self.targets.len(),
            "route to unknown target port {target}"
        );
        self.map.add(range, target)
    }
}

impl mpsoc_kernel::Snapshot for TlmBus {
    fn save(&self, w: &mut mpsoc_kernel::StateWriter) {
        let mut in_flight: Vec<_> = self.in_flight.iter().collect();
        in_flight.sort();
        w.write_usize(in_flight.len());
        for (id, port) in in_flight {
            crate::persist::save_txn_id(*id, w);
            w.write_usize(*port);
        }
    }

    fn restore(&mut self, r: &mut mpsoc_kernel::StateReader<'_>) {
        self.in_flight.clear();
        for _ in 0..r.read_usize() {
            let id = crate::persist::load_txn_id(r);
            let port = r.read_usize();
            self.in_flight.insert(id, port);
        }
    }
}

impl Component<Packet> for TlmBus {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut TickContext<'_, Packet>) {
        let now = ctx.time;
        let extra = self.clock.period() * self.config.latency_cycles.saturating_sub(1);
        // Responses: every target port, up to the bandwidth budget.
        let mut budget = self.config.packets_per_cycle;
        for t in 0..self.targets.len() {
            while budget > 0 {
                let Some(Packet::Response(resp)) = ctx.links.peek(self.targets[t].resp_in, now)
                else {
                    break;
                };
                let Some(&port) = self.in_flight.get(&resp.txn.id) else {
                    panic!(
                        "{}: response for unknown transaction {}",
                        self.name, resp.txn.id
                    );
                };
                if !ctx.links.can_push(self.initiators[port].resp_out) {
                    break;
                }
                let pkt = ctx.links.pop(self.targets[t].resp_in, now).expect("peeked");
                if let Packet::Response(r) = &pkt {
                    self.in_flight.remove(&r.txn.id);
                }
                ctx.links
                    .push_after(self.initiators[port].resp_out, now, extra, pkt)
                    .expect("can_push checked");
                budget -= 1;
            }
        }
        // Requests: every initiator port, up to the bandwidth budget.
        let mut budget = self.config.packets_per_cycle;
        for i in 0..self.initiators.len() {
            while budget > 0 {
                let Some(Packet::Request(txn)) = ctx.links.peek(self.initiators[i].req_in, now)
                else {
                    break;
                };
                let Some(target) = self.map.route(txn.addr) else {
                    panic!("{}: no route for address {:#x}", self.name, txn.addr);
                };
                if !ctx.links.can_push(self.targets[target].req_out) {
                    break;
                }
                let pkt = ctx
                    .links
                    .pop(self.initiators[i].req_in, now)
                    .expect("peeked");
                if let Packet::Request(t) = &pkt {
                    if !t.completes_on_acceptance() {
                        self.in_flight.insert(t.id, i);
                    }
                }
                ctx.links
                    .push_after(self.targets[target].req_out, now, extra, pkt)
                    .expect("can_push checked");
                budget -= 1;
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
    }

    fn parallel_safe(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{FixedLatencyTarget, ScriptedInitiator};
    use crate::{DataWidth, InitiatorId, Transaction};
    use mpsoc_kernel::{Simulation, Time};

    fn reads(init: u16, n: u64) -> Vec<Transaction> {
        (0..n)
            .map(|s| {
                Transaction::builder(InitiatorId::new(init), s)
                    .read(0x100 + s * 64)
                    .beats(8)
                    .width(DataWidth::BITS64)
                    .build()
            })
            .collect()
    }

    fn rig(n_initiators: usize, config: TlmBusConfig) -> Time {
        let mut sim: Simulation<Packet> = Simulation::new();
        let clk = ClockDomain::from_mhz(250);
        let mut bus = TlmBus::new("tlm", config, clk);
        for i in 0..n_initiators {
            let req = sim
                .links_mut()
                .add_link(format!("i{i}.req"), 4, clk.period());
            let resp = sim
                .links_mut()
                .add_link(format!("i{i}.resp"), 4, clk.period());
            bus.add_initiator(req, resp);
            sim.add_component(
                Box::new(ScriptedInitiator::new(
                    format!("i{i}"),
                    req,
                    resp,
                    reads(i as u16, 20),
                    4,
                )),
                clk,
            );
        }
        let t_req = sim.links_mut().add_link("t.req", 8, clk.period());
        let t_resp = sim.links_mut().add_link("t.resp", 8, clk.period());
        let t = bus.add_target(t_req, t_resp);
        bus.add_route(AddressRange::new(0, 1 << 20), t).unwrap();
        sim.add_component(Box::new(bus), clk);
        sim.add_component(
            Box::new(FixedLatencyTarget::new("t", clk, t_req, t_resp, 1)),
            clk,
        );
        sim.run_to_quiescence_strict(Time::from_ms(10))
            .expect("drains")
    }

    #[test]
    fn tlm_round_trip_conserves_transactions() {
        let end = rig(3, TlmBusConfig::default());
        assert!(end > Time::ZERO);
    }

    #[test]
    fn latency_knob_is_honoured() {
        let fast = rig(
            1,
            TlmBusConfig {
                latency_cycles: 1,
                ..TlmBusConfig::default()
            },
        );
        let slow = rig(
            1,
            TlmBusConfig {
                latency_cycles: 20,
                ..TlmBusConfig::default()
            },
        );
        assert!(slow > fast, "latency must matter: {slow} vs {fast}");
    }

    #[test]
    fn bandwidth_ceiling_throttles() {
        let unconstrained = rig(4, TlmBusConfig::default());
        let throttled = rig(
            4,
            TlmBusConfig {
                packets_per_cycle: 1,
                ..TlmBusConfig::default()
            },
        );
        assert!(throttled >= unconstrained);
    }
}
