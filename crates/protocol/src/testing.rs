//! Reusable test components: a scripted initiator and a fixed-latency
//! target.
//!
//! Every bus and bridge crate in the workspace exercises its models against
//! the same two counterparts, so they live here rather than being duplicated
//! per crate. They are also useful for downstream experimentation with
//! custom interconnects.

use crate::packet::{Packet, Response};
use crate::transaction::Transaction;
use mpsoc_kernel::{ClockDomain, Component, LinkId, TickContext, Time};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// A shared, ordered record of completions, for tests that need to observe
/// response ordering across boxed components.
pub type CompletionLog = Arc<Mutex<Vec<(Time, Transaction)>>>;

/// An initiator that issues a fixed script of transactions as fast as
/// back-pressure allows, and records every completion.
///
/// * Posted writes complete at injection (no response expected).
/// * Reads and non-posted writes complete when their response arrives.
/// * `max_outstanding` bounds in-flight response-expecting transactions.
#[derive(Debug)]
pub struct ScriptedInitiator {
    name: String,
    req_out: LinkId,
    resp_in: LinkId,
    script: VecDeque<Transaction>,
    max_outstanding: usize,
    outstanding: usize,
    completions: Vec<(Time, Transaction)>,
    shared_log: Option<CompletionLog>,
    injected: u64,
}

impl ScriptedInitiator {
    /// Creates an initiator that will issue `script` in order on `req_out`
    /// and consume responses from `resp_in`.
    pub fn new(
        name: impl Into<String>,
        req_out: LinkId,
        resp_in: LinkId,
        script: Vec<Transaction>,
        max_outstanding: usize,
    ) -> Self {
        ScriptedInitiator {
            name: name.into(),
            req_out,
            resp_in,
            script: script.into(),
            max_outstanding: max_outstanding.max(1),
            outstanding: 0,
            completions: Vec::new(),
            shared_log: None,
            injected: 0,
        }
    }

    /// Mirrors every completion into `log` (in addition to the internal
    /// record), so tests can observe ordering after the component is boxed.
    pub fn with_shared_log(mut self, log: CompletionLog) -> Self {
        self.shared_log = Some(log);
        self
    }

    /// Completions observed so far, in arrival order.
    pub fn completions(&self) -> &[(Time, Transaction)] {
        &self.completions
    }

    /// Transactions injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

impl mpsoc_kernel::Snapshot for ScriptedInitiator {
    fn save(&self, w: &mut mpsoc_kernel::StateWriter) {
        w.write_usize(self.script.len());
        for txn in &self.script {
            crate::persist::save_txn(txn, w);
        }
        w.write_usize(self.outstanding);
        w.write_usize(self.completions.len());
        for (at, txn) in &self.completions {
            w.write_time(*at);
            crate::persist::save_txn(txn, w);
        }
        w.write_u64(self.injected);
        // shared_log is a test-side observation channel, not simulation
        // state; it stays whatever the restoring harness wired up.
    }

    fn restore(&mut self, r: &mut mpsoc_kernel::StateReader<'_>) {
        self.script = (0..r.read_usize())
            .map(|_| crate::persist::load_txn(r))
            .collect();
        self.outstanding = r.read_usize();
        self.completions = (0..r.read_usize())
            .map(|_| (r.read_time(), crate::persist::load_txn(r)))
            .collect();
        self.injected = r.read_u64();
    }
}

impl Component<Packet> for ScriptedInitiator {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut TickContext<'_, Packet>) {
        // Consume one response per cycle.
        if let Some(pkt) = ctx.links.pop(self.resp_in, ctx.time) {
            let resp = pkt.expect_response();
            self.outstanding -= 1;
            if let Some(log) = &self.shared_log {
                log.lock().unwrap().push((ctx.time, resp.txn.clone()));
            }
            self.completions.push((ctx.time, resp.txn));
        }
        // Issue the next scripted transaction if allowed.
        if let Some(head) = self.script.front() {
            let needs_slot = !head.completes_on_acceptance();
            if (!needs_slot || self.outstanding < self.max_outstanding)
                && ctx.links.can_push(self.req_out)
            {
                let mut txn = self.script.pop_front().expect("front checked");
                txn.created_at = ctx.time;
                if needs_slot {
                    self.outstanding += 1;
                } else {
                    // Posted write: completes at injection.
                    if let Some(log) = &self.shared_log {
                        log.lock().unwrap().push((ctx.time, txn.clone()));
                    }
                    self.completions.push((ctx.time, txn.clone()));
                }
                self.injected += 1;
                ctx.links
                    .push(self.req_out, ctx.time, Packet::Request(txn))
                    .expect("can_push checked");
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.script.is_empty() && self.outstanding == 0
    }

    fn parallel_safe(&self) -> bool {
        // The shared log observes completions in global tick order; a
        // buffered compute phase would interleave pushes arbitrarily.
        self.shared_log.is_none()
    }
}

/// A single-slot target that answers every request after a fixed latency.
///
/// `wait_states` behaves like the on-chip memory of the paper's Section 4:
/// each beat costs `1 + wait_states` cycles and responses stream with
/// `gap_per_beat = wait_states`.
#[derive(Debug)]
pub struct FixedLatencyTarget {
    name: String,
    clock: ClockDomain,
    req_in: LinkId,
    resp_out: LinkId,
    wait_states: u32,
    busy_until: Time,
    pending: Option<(Time, Response)>,
    served: u64,
}

impl FixedLatencyTarget {
    /// Creates a target with the given per-beat wait states.
    pub fn new(
        name: impl Into<String>,
        clock: ClockDomain,
        req_in: LinkId,
        resp_out: LinkId,
        wait_states: u32,
    ) -> Self {
        FixedLatencyTarget {
            name: name.into(),
            clock,
            req_in,
            resp_out,
            wait_states,
            busy_until: Time::ZERO,
            pending: None,
            served: 0,
        }
    }

    /// Requests serviced so far.
    pub fn served(&self) -> u64 {
        self.served
    }
}

impl mpsoc_kernel::Snapshot for FixedLatencyTarget {
    fn save(&self, w: &mut mpsoc_kernel::StateWriter) {
        w.write_time(self.busy_until);
        w.write_bool(self.pending.is_some());
        if let Some((ready, resp)) = &self.pending {
            w.write_time(*ready);
            crate::persist::save_response(resp, w);
        }
        w.write_u64(self.served);
    }

    fn restore(&mut self, r: &mut mpsoc_kernel::StateReader<'_>) {
        self.busy_until = r.read_time();
        self.pending = r
            .read_bool()
            .then(|| (r.read_time(), crate::persist::load_response(r)));
        self.served = r.read_u64();
    }
}

impl Component<Packet> for FixedLatencyTarget {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut TickContext<'_, Packet>) {
        if let Some((ready, _)) = &self.pending {
            if *ready <= ctx.time && ctx.links.can_push(self.resp_out) {
                let (_, resp) = self.pending.take().expect("checked");
                ctx.links
                    .push(self.resp_out, ctx.time, Packet::Response(resp))
                    .expect("can_push checked");
            }
        }
        if self.pending.is_none() && self.busy_until <= ctx.time {
            if let Some(pkt) = ctx.links.pop(self.req_in, ctx.time) {
                let txn = pkt.expect_request();
                let beat_cost = 1 + self.wait_states as u64;
                let first = ctx.time + self.clock.period() * beat_cost;
                let done = ctx.time + self.clock.period() * (txn.beats as u64 * beat_cost);
                self.busy_until = done;
                self.served += 1;
                if !txn.completes_on_acceptance() {
                    let resp = Response::new(txn, done).with_gap(self.wait_states);
                    self.pending = Some((first, resp));
                }
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.pending.is_none()
    }

    fn parallel_safe(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::InitiatorId;
    use mpsoc_kernel::Simulation;

    fn read(seq: u64, beats: u32) -> Transaction {
        Transaction::builder(InitiatorId::new(0), seq)
            .read(0x100)
            .beats(beats)
            .build()
    }

    #[test]
    fn initiator_and_target_close_the_loop() {
        let mut sim: Simulation<Packet> = Simulation::new();
        let clk = ClockDomain::from_mhz(100);
        let req = sim.links_mut().add_link("req", 2, clk.period());
        let resp = sim.links_mut().add_link("resp", 2, clk.period());
        sim.add_component(
            Box::new(ScriptedInitiator::new(
                "init",
                req,
                resp,
                vec![read(1, 4), read(2, 4)],
                1,
            )),
            clk,
        );
        sim.add_component(
            Box::new(FixedLatencyTarget::new("tgt", clk, req, resp, 1)),
            clk,
        );
        let end = sim
            .run_to_quiescence_strict(Time::from_us(100))
            .expect("drains");
        assert!(end > Time::ZERO);
    }

    #[test]
    fn max_outstanding_limits_inflight() {
        let mut sim: Simulation<Packet> = Simulation::new();
        let clk = ClockDomain::from_mhz(100);
        // Roomy links, no target: the initiator should stop at its limit.
        let req = sim.links_mut().add_link("req", 16, clk.period());
        let resp = sim.links_mut().add_link("resp", 16, clk.period());
        let script: Vec<Transaction> = (0..8).map(|i| read(i, 1)).collect();
        sim.add_component(
            Box::new(ScriptedInitiator::new("init", req, resp, script, 3)),
            clk,
        );
        sim.run_until(Time::from_us(1));
        assert_eq!(sim.links().link(req).stats().pushes, 3);
    }

    #[test]
    fn posted_writes_do_not_consume_slots() {
        let mut sim: Simulation<Packet> = Simulation::new();
        let clk = ClockDomain::from_mhz(100);
        let req = sim.links_mut().add_link("req", 16, clk.period());
        let resp = sim.links_mut().add_link("resp", 16, clk.period());
        let script: Vec<Transaction> = (0..5)
            .map(|i| {
                Transaction::builder(InitiatorId::new(0), i)
                    .write(0x40 * i)
                    .beats(2)
                    .posted(true)
                    .build()
            })
            .collect();
        sim.add_component(
            Box::new(ScriptedInitiator::new("init", req, resp, script, 1)),
            clk,
        );
        sim.run_until(Time::from_us(1));
        // All five go out despite max_outstanding = 1, and all count as
        // completed without any response.
        assert_eq!(sim.links().link(req).stats().pushes, 5);
    }
}
