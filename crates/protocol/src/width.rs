//! Bus data-width algebra.

use std::fmt;

/// The width of a bus data path, in bytes per beat.
///
/// The reference platform mixes 32-bit (4-byte) IP-core interfaces with a
/// 64-bit (8-byte) central interconnect; GenConv instances perform the
/// *datawidth conversion* between them. `DataWidth` provides the beat-count
/// arithmetic those converters need.
///
/// # Examples
///
/// ```
/// use mpsoc_protocol::DataWidth;
///
/// let narrow = DataWidth::BITS32;
/// let wide = DataWidth::BITS64;
/// // A 64-byte cache line is 16 beats at 32 bits, 8 beats at 64 bits.
/// assert_eq!(narrow.beats_for_bytes(64), 16);
/// assert_eq!(wide.beats_for_bytes(64), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataWidth {
    bytes: u32,
}

impl DataWidth {
    /// 32-bit data path.
    pub const BITS32: DataWidth = DataWidth { bytes: 4 };
    /// 64-bit data path.
    pub const BITS64: DataWidth = DataWidth { bytes: 8 };
    /// 128-bit data path.
    pub const BITS128: DataWidth = DataWidth { bytes: 16 };

    /// Creates a width from a byte count.
    ///
    /// # Panics
    ///
    /// Panics unless `bytes` is a power of two between 1 and 64.
    pub fn from_bytes(bytes: u32) -> Self {
        assert!(
            bytes.is_power_of_two() && (1..=64).contains(&bytes),
            "data width must be a power of two between 1 and 64 bytes, got {bytes}"
        );
        DataWidth { bytes }
    }

    /// Creates a width from a bit count (must be a multiple of 8).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not a byte multiple or the byte count is invalid.
    pub fn from_bits(bits: u32) -> Self {
        assert!(
            bits.is_multiple_of(8),
            "data width bits must be a byte multiple"
        );
        DataWidth::from_bytes(bits / 8)
    }

    /// Bytes transferred per beat.
    pub const fn bytes(self) -> u32 {
        self.bytes
    }

    /// Width in bits.
    pub const fn bits(self) -> u32 {
        self.bytes * 8
    }

    /// Number of beats needed to move `bytes` over this width (ceiling).
    pub const fn beats_for_bytes(self, bytes: u64) -> u32 {
        (bytes.div_ceil(self.bytes as u64)) as u32
    }

    /// Converts a beat count from another width to this one, preserving the
    /// total payload size (ceiling).
    pub const fn convert_beats(self, beats: u32, from: DataWidth) -> u32 {
        self.beats_for_bytes(beats as u64 * from.bytes as u64)
    }
}

impl fmt::Display for DataWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(DataWidth::BITS32.bytes(), 4);
        assert_eq!(DataWidth::BITS64.bits(), 64);
        assert_eq!(DataWidth::from_bits(128), DataWidth::BITS128);
    }

    #[test]
    fn beat_counts_round_up() {
        let w = DataWidth::BITS64;
        assert_eq!(w.beats_for_bytes(1), 1);
        assert_eq!(w.beats_for_bytes(8), 1);
        assert_eq!(w.beats_for_bytes(9), 2);
        assert_eq!(w.beats_for_bytes(0), 0);
    }

    #[test]
    fn upsize_halves_beats() {
        // 32 -> 64 bit upsize converter, as in front of the ST220.
        let beats32 = 8;
        assert_eq!(
            DataWidth::BITS64.convert_beats(beats32, DataWidth::BITS32),
            4
        );
    }

    #[test]
    fn downsize_doubles_beats() {
        assert_eq!(DataWidth::BITS32.convert_beats(4, DataWidth::BITS64), 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_width_rejected() {
        let _ = DataWidth::from_bytes(3);
    }

    #[test]
    #[should_panic(expected = "byte multiple")]
    fn invalid_bits_rejected() {
        let _ = DataWidth::from_bits(12);
    }
}
