//! Validated address decoding.

use std::error::Error;
use std::fmt;

/// A half-open byte-address range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddressRange {
    /// First byte covered.
    pub start: u64,
    /// One past the last byte covered.
    pub end: u64,
}

impl AddressRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start < end, "empty address range [{start:#x}, {end:#x})");
        AddressRange { start, end }
    }

    /// Range size in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the range is empty (never true for a constructed range).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Whether `addr` falls inside.
    pub fn contains(&self, addr: u64) -> bool {
        (self.start..self.end).contains(&addr)
    }

    /// Whether two ranges share any address.
    pub fn overlaps(&self, other: &AddressRange) -> bool {
        self.start < other.end && other.start < self.end
    }
}

impl fmt::Display for AddressRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}, {:#x})", self.start, self.end)
    }
}

/// Errors adding ranges to an [`AddressMap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddressMapError {
    /// The new range overlaps an existing one.
    Overlap {
        /// The rejected range.
        new: AddressRange,
        /// The existing range it collides with.
        existing: AddressRange,
    },
}

impl fmt::Display for AddressMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddressMapError::Overlap { new, existing } => {
                write!(f, "address range {new} overlaps existing {existing}")
            }
        }
    }
}

impl Error for AddressMapError {}

/// A non-overlapping mapping from address ranges to route values (typically
/// a bus-local target-port index).
///
/// # Examples
///
/// ```
/// use mpsoc_protocol::{AddressMap, AddressRange};
///
/// let mut map: AddressMap<usize> = AddressMap::new();
/// map.add(AddressRange::new(0x0000, 0x1000), 0)?;
/// map.add(AddressRange::new(0x8000_0000, 0x9000_0000), 1)?;
/// assert_eq!(map.route(0x42), Some(0));
/// assert_eq!(map.route(0x8000_0010), Some(1));
/// assert_eq!(map.route(0x7000_0000), None);
/// # Ok::<(), mpsoc_protocol::AddressMapError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressMap<V> {
    // Sorted by start address.
    ranges: Vec<(AddressRange, V)>,
}

impl<V: Copy> AddressMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        AddressMap { ranges: Vec::new() }
    }

    /// Adds a range.
    ///
    /// # Errors
    ///
    /// Returns [`AddressMapError::Overlap`] if the range collides with an
    /// existing entry.
    pub fn add(&mut self, range: AddressRange, value: V) -> Result<(), AddressMapError> {
        if let Some((existing, _)) = self.ranges.iter().find(|(r, _)| r.overlaps(&range)) {
            return Err(AddressMapError::Overlap {
                new: range,
                existing: *existing,
            });
        }
        let pos = self.ranges.partition_point(|(r, _)| r.start < range.start);
        self.ranges.insert(pos, (range, value));
        Ok(())
    }

    /// Resolves an address to its route value.
    pub fn route(&self, addr: u64) -> Option<V> {
        let idx = self.ranges.partition_point(|(r, _)| r.start <= addr);
        idx.checked_sub(1).and_then(|i| {
            let (r, v) = &self.ranges[i];
            r.contains(addr).then_some(*v)
        })
    }

    /// Number of mapped ranges.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Iterates over `(range, value)` in ascending address order.
    pub fn iter(&self) -> impl Iterator<Item = (AddressRange, V)> + '_ {
        self.ranges.iter().map(|(r, v)| (*r, *v))
    }
}

impl<V: Copy> Default for AddressMap<V> {
    fn default() -> Self {
        AddressMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_basics() {
        let mut m = AddressMap::new();
        m.add(AddressRange::new(0x100, 0x200), 'a').unwrap();
        m.add(AddressRange::new(0x300, 0x400), 'b').unwrap();
        assert_eq!(m.route(0x100), Some('a'));
        assert_eq!(m.route(0x1ff), Some('a'));
        assert_eq!(m.route(0x200), None);
        assert_eq!(m.route(0x350), Some('b'));
        assert_eq!(m.route(0x0), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let mut m = AddressMap::new();
        m.add(AddressRange::new(0x300, 0x400), 'b').unwrap();
        m.add(AddressRange::new(0x100, 0x200), 'a').unwrap();
        assert_eq!(m.route(0x150), Some('a'));
        let starts: Vec<u64> = m.iter().map(|(r, _)| r.start).collect();
        assert_eq!(starts, vec![0x100, 0x300]);
    }

    #[test]
    fn overlap_rejected() {
        let mut m = AddressMap::new();
        m.add(AddressRange::new(0x100, 0x200), 1).unwrap();
        let err = m.add(AddressRange::new(0x180, 0x280), 2).unwrap_err();
        assert!(matches!(err, AddressMapError::Overlap { .. }));
        assert!(err.to_string().contains("overlaps"));
        // Adjacent ranges are fine.
        m.add(AddressRange::new(0x200, 0x280), 2).unwrap();
    }

    #[test]
    fn range_predicates() {
        let r = AddressRange::new(0x10, 0x20);
        assert_eq!(r.len(), 0x10);
        assert!(!r.is_empty());
        assert!(r.contains(0x10));
        assert!(!r.contains(0x20));
        assert!(r.overlaps(&AddressRange::new(0x1f, 0x30)));
        assert!(!r.overlaps(&AddressRange::new(0x20, 0x30)));
    }

    #[test]
    #[should_panic(expected = "empty address range")]
    fn empty_range_panics() {
        let _ = AddressRange::new(5, 5);
    }
}
