//! Transaction conservation and latency bookkeeping.

use crate::ids::TransactionId;
use crate::transaction::Transaction;
use mpsoc_kernel::Time;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors detected by the [`TransactionTracker`]; any of these indicates a
/// platform model bug (duplicated or spurious responses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrackerError {
    /// The same transaction id was injected twice.
    DuplicateInjection(TransactionId),
    /// A completion arrived for an id that was never injected (or already
    /// completed).
    UnknownCompletion(TransactionId),
}

impl fmt::Display for TrackerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrackerError::DuplicateInjection(id) => write!(f, "{id} injected twice"),
            TrackerError::UnknownCompletion(id) => {
                write!(f, "completion for unknown or finished {id}")
            }
        }
    }
}

impl Error for TrackerError {}

/// Tracks outstanding transactions to assert conservation (every request is
/// answered exactly once) and to aggregate end-to-end latency.
///
/// # Examples
///
/// ```
/// use mpsoc_protocol::{TransactionTracker, Transaction, InitiatorId};
/// use mpsoc_kernel::Time;
///
/// let mut tracker = TransactionTracker::new();
/// let txn = Transaction::builder(InitiatorId::new(0), 1).read(0x10).build();
/// tracker.on_inject(&txn, Time::from_ns(5))?;
/// assert_eq!(tracker.outstanding(), 1);
/// let latency = tracker.on_complete(txn.id, Time::from_ns(45))?;
/// assert_eq!(latency, Time::from_ns(40));
/// assert!(tracker.is_balanced());
/// # Ok::<(), mpsoc_protocol::TrackerError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TransactionTracker {
    in_flight: HashMap<TransactionId, Time>,
    injected: u64,
    completed: u64,
    latency_sum: u128,
    latency_max: Time,
}

impl TransactionTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        TransactionTracker::default()
    }

    /// Records a request injection.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::DuplicateInjection`] if the id is already in
    /// flight.
    pub fn on_inject(&mut self, txn: &Transaction, now: Time) -> Result<(), TrackerError> {
        if self.in_flight.insert(txn.id, now).is_some() {
            return Err(TrackerError::DuplicateInjection(txn.id));
        }
        self.injected += 1;
        Ok(())
    }

    /// Records a completion and returns the end-to-end latency.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::UnknownCompletion`] for ids that were never
    /// injected or have already completed.
    pub fn on_complete(&mut self, id: TransactionId, now: Time) -> Result<Time, TrackerError> {
        let start = self
            .in_flight
            .remove(&id)
            .ok_or(TrackerError::UnknownCompletion(id))?;
        self.completed += 1;
        let latency = now.saturating_sub(start);
        self.latency_sum += latency.as_ps() as u128;
        self.latency_max = self.latency_max.max(latency);
        Ok(latency)
    }

    /// Transactions currently in flight.
    pub fn outstanding(&self) -> usize {
        self.in_flight.len()
    }

    /// Total injections seen.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Total completions seen.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Whether every injected transaction has completed.
    pub fn is_balanced(&self) -> bool {
        self.in_flight.is_empty() && self.injected == self.completed
    }

    /// Mean end-to-end latency over all completions.
    pub fn mean_latency(&self) -> Time {
        if self.completed == 0 {
            Time::ZERO
        } else {
            Time::from_ps((self.latency_sum / self.completed as u128) as u64)
        }
    }

    /// Worst-case end-to-end latency.
    pub fn max_latency(&self) -> Time {
        self.latency_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::InitiatorId;

    fn txn(seq: u64) -> Transaction {
        Transaction::builder(InitiatorId::new(0), seq)
            .read(0x100)
            .build()
    }

    #[test]
    fn balanced_lifecycle() {
        let mut t = TransactionTracker::new();
        let a = txn(1);
        let b = txn(2);
        t.on_inject(&a, Time::from_ns(0)).unwrap();
        t.on_inject(&b, Time::from_ns(10)).unwrap();
        assert_eq!(t.outstanding(), 2);
        assert!(!t.is_balanced());
        assert_eq!(
            t.on_complete(a.id, Time::from_ns(30)).unwrap(),
            Time::from_ns(30)
        );
        assert_eq!(
            t.on_complete(b.id, Time::from_ns(20)).unwrap(),
            Time::from_ns(10)
        );
        assert!(t.is_balanced());
        assert_eq!(t.mean_latency(), Time::from_ns(20));
        assert_eq!(t.max_latency(), Time::from_ns(30));
    }

    #[test]
    fn duplicate_injection_detected() {
        let mut t = TransactionTracker::new();
        let a = txn(1);
        t.on_inject(&a, Time::ZERO).unwrap();
        assert_eq!(
            t.on_inject(&a, Time::ZERO),
            Err(TrackerError::DuplicateInjection(a.id))
        );
    }

    #[test]
    fn unknown_completion_detected() {
        let mut t = TransactionTracker::new();
        let a = txn(1);
        assert_eq!(
            t.on_complete(a.id, Time::ZERO),
            Err(TrackerError::UnknownCompletion(a.id))
        );
        t.on_inject(&a, Time::ZERO).unwrap();
        t.on_complete(a.id, Time::ZERO).unwrap();
        assert!(t.on_complete(a.id, Time::ZERO).is_err());
    }

    #[test]
    fn empty_tracker_statistics() {
        let t = TransactionTracker::new();
        assert!(t.is_balanced());
        assert_eq!(t.mean_latency(), Time::ZERO);
        assert_eq!(t.max_latency(), Time::ZERO);
    }
}
