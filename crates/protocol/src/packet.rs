//! The link payload: request and response packets.

use crate::transaction::Transaction;
use mpsoc_kernel::Time;
use std::fmt;

/// A completed transaction travelling back towards its initiator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The original transaction (echoed in full so that bridges and
    /// interconnects can re-associate responses without side tables).
    pub txn: Transaction,
    /// Extra idle cycles the producer interleaves between consecutive
    /// response beats when streaming over a bus channel. An on-chip memory
    /// with 1 wait state sets this to 1, which is exactly the paper's
    /// "1 data transfer followed by 1 idle cycle" — a 50 % response-channel
    /// efficiency ceiling.
    pub gap_per_beat: u32,
    /// Time the target finished servicing the access (for latency
    /// decomposition: queueing vs service vs return path).
    pub serviced_at: Time,
    /// Whether this response reports an *error completion*: the transaction
    /// was abandoned by recovery machinery (retry budget exhausted) and the
    /// initiator must not wait for data. Error responses keep initiators
    /// drainable under fault injection — a lost transaction still produces
    /// exactly one response upstream.
    pub error: bool,
}

impl Response {
    /// Creates a response for `txn` with no streaming gaps.
    pub fn new(txn: Transaction, serviced_at: Time) -> Self {
        Response {
            txn,
            gap_per_beat: 0,
            serviced_at,
            error: false,
        }
    }

    /// Creates an error-completion response for `txn` (see
    /// [`Response::error`]).
    pub fn error(txn: Transaction, serviced_at: Time) -> Self {
        Response {
            txn,
            gap_per_beat: 0,
            serviced_at,
            error: true,
        }
    }

    /// Sets the per-beat streaming gap.
    pub fn with_gap(mut self, gap_per_beat: u32) -> Self {
        self.gap_per_beat = gap_per_beat;
        self
    }

    /// Bus cycles the response occupies on a response channel of the
    /// transaction's width, including streaming gaps. An error completion
    /// carries no data and occupies a single notification cycle.
    pub fn channel_cycles(&self) -> u64 {
        if self.error {
            return 1;
        }
        let beats = self.txn.response_cycles();
        beats + beats.saturating_sub(1) * self.gap_per_beat as u64
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "resp({})", self.txn)
    }
}

/// What flows on kernel links: requests travel initiator→target, responses
/// travel target→initiator.
///
/// By convention a link carries only one variant (request links vs response
/// links); the [`Packet::expect_request`] / [`Packet::expect_response`]
/// accessors make violations loud.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// A request (the transaction itself).
    Request(Transaction),
    /// A response.
    Response(Response),
}

impl Packet {
    /// Unwraps a request.
    ///
    /// # Panics
    ///
    /// Panics if this is a response — that indicates mis-wired links.
    pub fn expect_request(self) -> Transaction {
        match self {
            Packet::Request(t) => t,
            Packet::Response(r) => panic!("expected request packet, got {r}"),
        }
    }

    /// Unwraps a response.
    ///
    /// # Panics
    ///
    /// Panics if this is a request — that indicates mis-wired links.
    pub fn expect_response(self) -> Response {
        match self {
            Packet::Response(r) => r,
            Packet::Request(t) => panic!("expected response packet, got {t}"),
        }
    }

    /// Borrowing view of the request, if it is one.
    pub fn as_request(&self) -> Option<&Transaction> {
        match self {
            Packet::Request(t) => Some(t),
            Packet::Response(_) => None,
        }
    }

    /// Borrowing view of the response, if it is one.
    pub fn as_response(&self) -> Option<&Response> {
        match self {
            Packet::Response(r) => Some(r),
            Packet::Request(_) => None,
        }
    }
}

impl From<Transaction> for Packet {
    fn from(txn: Transaction) -> Self {
        Packet::Request(txn)
    }
}

impl From<Response> for Packet {
    fn from(resp: Response) -> Self {
        Packet::Response(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::InitiatorId;

    fn read(beats: u32) -> Transaction {
        Transaction::builder(InitiatorId::new(0), 1)
            .read(0x40)
            .beats(beats)
            .build()
    }

    #[test]
    fn response_channel_cycles_with_gap() {
        let r = Response::new(read(4), Time::ZERO);
        assert_eq!(r.channel_cycles(), 4);
        let gapped = r.with_gap(1);
        // 4 beats with 1 idle cycle between them: d.d.d.d = 7 cycles.
        assert_eq!(gapped.channel_cycles(), 7);
        let single = Response::new(read(1), Time::ZERO).with_gap(3);
        assert_eq!(single.channel_cycles(), 1);
    }

    #[test]
    fn error_responses_are_single_cycle_notifications() {
        let ok = Response::new(read(8), Time::ZERO);
        assert!(!ok.error);
        let err = Response::error(read(8), Time::from_ns(3));
        assert!(err.error);
        assert_eq!(err.channel_cycles(), 1);
        assert_eq!(err.serviced_at, Time::from_ns(3));
    }

    #[test]
    fn packet_round_trips() {
        let t = read(2);
        let p: Packet = t.clone().into();
        assert_eq!(p.as_request(), Some(&t));
        assert!(p.as_response().is_none());
        assert_eq!(p.expect_request(), t);

        let r = Response::new(read(2), Time::from_ns(5));
        let p: Packet = r.clone().into();
        assert_eq!(p.as_response(), Some(&r));
        assert_eq!(p.expect_response(), r);
    }

    #[test]
    #[should_panic(expected = "expected request")]
    fn expect_request_on_response_panics() {
        Packet::from(Response::new(read(1), Time::ZERO)).expect_request();
    }

    #[test]
    #[should_panic(expected = "expected response")]
    fn expect_response_on_request_panics() {
        Packet::from(read(1)).expect_response();
    }
}
