//! Bus transactions.

use crate::ids::{InitiatorId, MessageId, TransactionId};
use crate::width::DataWidth;
use mpsoc_kernel::Time;
use std::fmt;

/// Direction of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// A read burst: the response carries the data beats.
    Read,
    /// A write burst: the request carries the data beats; the response is a
    /// single acknowledgement (omitted entirely for *posted* writes once the
    /// request has been accepted downstream).
    Write,
}

impl Opcode {
    /// Whether this is a read.
    pub fn is_read(self) -> bool {
        matches!(self, Opcode::Read)
    }

    /// Whether this is a write.
    pub fn is_write(self) -> bool {
        matches!(self, Opcode::Write)
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Opcode::Read => write!(f, "RD"),
            Opcode::Write => write!(f, "WR"),
        }
    }
}

/// A single bus transaction: a read or write burst issued by an initiator.
///
/// Data *values* are not modelled (this is a timing-accuracy platform, like
/// the IPTG abstraction in the paper), but the **address stream** is, because
/// the LMI memory controller's optimization engine (opcode merging, row-hit
/// lookahead) depends on it.
///
/// Use [`TransactionBuilder`] (via [`Transaction::builder`]) to construct
/// one:
///
/// ```
/// use mpsoc_protocol::{Transaction, Opcode, InitiatorId, DataWidth};
/// use mpsoc_kernel::Time;
///
/// let txn = Transaction::builder(InitiatorId::new(2), 1)
///     .read(0x8000_0000)
///     .beats(8)
///     .width(DataWidth::BITS64)
///     .created_at(Time::from_ns(40))
///     .build();
/// assert_eq!(txn.opcode, Opcode::Read);
/// assert_eq!(txn.bytes(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Globally unique id.
    pub id: TransactionId,
    /// The issuing master.
    pub initiator: InitiatorId,
    /// Read or write.
    pub opcode: Opcode,
    /// Byte address of the first beat.
    pub addr: u64,
    /// Number of data beats at [`Transaction::width`].
    pub beats: u32,
    /// Data-path width the beats are expressed in. Bridges performing
    /// datawidth conversion rewrite `beats`/`width` while preserving
    /// [`Transaction::bytes`].
    pub width: DataWidth,
    /// Arbitration priority (higher wins for priority-based policies);
    /// STBus Type 2 *priority labelling*.
    pub priority: u8,
    /// Whether a write is *posted*: the initiator considers it complete as
    /// soon as the first downstream stage accepts it. Only meaningful for
    /// writes and only honoured by protocols whose
    /// [`ProtocolKind::supports_posted_writes`](crate::ProtocolKind::supports_posted_writes)
    /// is true.
    pub posted: bool,
    /// Message this transaction belongs to (STBus message-based
    /// arbitration).
    pub message: MessageId,
    /// Whether this is the final transaction of its message; arbiters may
    /// re-arbitrate after it.
    pub last_in_message: bool,
    /// Time the initiator created the transaction (for latency accounting).
    pub created_at: Time,
}

impl Transaction {
    /// Starts building a transaction; `seq` is the initiator-local sequence
    /// number used to derive the unique id.
    pub fn builder(initiator: InitiatorId, seq: u64) -> TransactionBuilder {
        TransactionBuilder::new(initiator, seq)
    }

    /// Total payload size in bytes.
    pub fn bytes(&self) -> u64 {
        self.beats as u64 * self.width.bytes() as u64
    }

    /// The address one past the last byte of the burst.
    pub fn end_addr(&self) -> u64 {
        self.addr + self.bytes()
    }

    /// Returns a copy re-expressed at a different data width (beat count
    /// recomputed, payload size preserved).
    pub fn with_width(&self, width: DataWidth) -> Transaction {
        let mut t = self.clone();
        t.beats = width.convert_beats(self.beats, self.width);
        t.width = width;
        t
    }

    /// Number of request-channel cycles this transaction occupies on a bus
    /// of its width: one address/opcode cell, plus the data beats for a
    /// write.
    pub fn request_cycles(&self) -> u64 {
        match self.opcode {
            Opcode::Read => 1,
            Opcode::Write => 1 + self.beats as u64,
        }
    }

    /// Number of response-channel cycles: the data beats for a read, a
    /// single acknowledgement cell for a write.
    pub fn response_cycles(&self) -> u64 {
        match self.opcode {
            Opcode::Read => self.beats as u64,
            Opcode::Write => 1,
        }
    }

    /// Whether a downstream acceptance completes this transaction from the
    /// initiator's point of view (posted write).
    pub fn completes_on_acceptance(&self) -> bool {
        self.posted && self.opcode.is_write()
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} @0x{:x} x{} ({})",
            self.id, self.opcode, self.addr, self.beats, self.width
        )
    }
}

/// Builder for [`Transaction`] (see there for an example).
#[derive(Debug, Clone)]
pub struct TransactionBuilder {
    txn: Transaction,
}

impl TransactionBuilder {
    fn new(initiator: InitiatorId, seq: u64) -> Self {
        TransactionBuilder {
            txn: Transaction {
                id: TransactionId::new(initiator, seq),
                initiator,
                opcode: Opcode::Read,
                addr: 0,
                beats: 1,
                width: DataWidth::BITS32,
                priority: 0,
                posted: false,
                message: MessageId::new(TransactionId::new(initiator, seq).raw()),
                last_in_message: true,
                created_at: Time::ZERO,
            },
        }
    }

    /// Makes this a read burst starting at `addr`.
    pub fn read(mut self, addr: u64) -> Self {
        self.txn.opcode = Opcode::Read;
        self.txn.addr = addr;
        self
    }

    /// Makes this a write burst starting at `addr`.
    pub fn write(mut self, addr: u64) -> Self {
        self.txn.opcode = Opcode::Write;
        self.txn.addr = addr;
        self
    }

    /// Sets the number of data beats.
    ///
    /// # Panics
    ///
    /// Panics if `beats` is zero.
    pub fn beats(mut self, beats: u32) -> Self {
        assert!(beats > 0, "a transaction needs at least one beat");
        self.txn.beats = beats;
        self
    }

    /// Sets the data-path width.
    pub fn width(mut self, width: DataWidth) -> Self {
        self.txn.width = width;
        self
    }

    /// Sets the arbitration priority.
    pub fn priority(mut self, priority: u8) -> Self {
        self.txn.priority = priority;
        self
    }

    /// Marks a write as posted.
    pub fn posted(mut self, posted: bool) -> Self {
        self.txn.posted = posted;
        self
    }

    /// Assigns the transaction to a message group.
    pub fn message(mut self, message: MessageId, last_in_message: bool) -> Self {
        self.txn.message = message;
        self.txn.last_in_message = last_in_message;
        self
    }

    /// Stamps the creation time.
    pub fn created_at(mut self, at: Time) -> Self {
        self.txn.created_at = at;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> Transaction {
        self.txn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn() -> Transaction {
        Transaction::builder(InitiatorId::new(1), 7)
            .write(0x100)
            .beats(4)
            .width(DataWidth::BITS32)
            .build()
    }

    #[test]
    fn builder_defaults_are_sane() {
        let t = Transaction::builder(InitiatorId::new(0), 0).build();
        assert_eq!(t.opcode, Opcode::Read);
        assert_eq!(t.beats, 1);
        assert!(t.last_in_message);
        assert!(!t.posted);
    }

    #[test]
    fn byte_and_address_arithmetic() {
        let t = txn();
        assert_eq!(t.bytes(), 16);
        assert_eq!(t.end_addr(), 0x110);
    }

    #[test]
    fn width_conversion_preserves_bytes() {
        let t = txn();
        let wide = t.with_width(DataWidth::BITS64);
        assert_eq!(wide.bytes(), t.bytes());
        assert_eq!(wide.beats, 2);
        // Odd sizes round the beat count up, growing the payload.
        let t3 = Transaction::builder(InitiatorId::new(1), 8)
            .read(0)
            .beats(3)
            .width(DataWidth::BITS32)
            .build();
        assert_eq!(t3.with_width(DataWidth::BITS64).beats, 2);
    }

    #[test]
    fn channel_cycle_counts() {
        let w = txn();
        assert_eq!(w.request_cycles(), 5); // address + 4 data beats
        assert_eq!(w.response_cycles(), 1); // ack
        let r = Transaction::builder(InitiatorId::new(1), 9)
            .read(0)
            .beats(8)
            .build();
        assert_eq!(r.request_cycles(), 1);
        assert_eq!(r.response_cycles(), 8);
    }

    #[test]
    fn posted_write_completes_on_acceptance() {
        let mut t = txn();
        t.posted = true;
        assert!(t.completes_on_acceptance());
        let mut r = t.clone();
        r.opcode = Opcode::Read;
        assert!(!r.completes_on_acceptance());
    }

    #[test]
    #[should_panic(expected = "at least one beat")]
    fn zero_beats_rejected() {
        let _ = Transaction::builder(InitiatorId::new(0), 0).beats(0);
    }
}
