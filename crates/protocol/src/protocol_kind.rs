//! The protocol capability matrix.

use std::fmt;

/// The on-chip communication protocols modelled in the workspace, with the
/// capability differences the paper's analysis turns on.
///
/// | capability | STBus T1 | STBus T2 | STBus T3 | AHB | AXI |
/// |---|---|---|---|---|---|
/// | split transactions | yes | yes | yes | **no** | yes |
/// | posted writes | no | yes | yes | no | yes |
/// | multiple outstanding | yes | yes | yes | **no** | yes |
/// | out-of-order responses | no | no | yes | no | yes |
/// | handover hiding | grant propagation | grant propagation | grant propagation | early `HGRANTx` | burst overlap |
///
/// (The AHB column reflects the paper's model, which — like ours — does not
/// implement AHB SPLIT/RETRY.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// STBus Type 1: low-cost implementation for low/medium performance.
    StbusT1,
    /// STBus Type 2: adds compound operations, source/priority labelling and
    /// posted writes; split and pipelined transactions fully supported.
    StbusT2,
    /// STBus Type 3: adds shaped request/response packets and out-of-order
    /// transaction support.
    StbusT3,
    /// AMBA AHB: shared channel, pipelined but non-split, non-posted writes.
    Ahb,
    /// AMBA AXI: five independent channels, multiple outstanding
    /// transactions, optional out-of-order completion via transaction IDs.
    Axi,
}

impl ProtocolKind {
    /// Whether the protocol frees the request path while the target
    /// services the access (split transactions). Non-split protocols hold
    /// the bus for the entire access — the root cause of the multi-layer
    /// AHB collapse in the paper's Figure 3/5 experiments.
    pub fn supports_split(self) -> bool {
        !matches!(self, ProtocolKind::Ahb)
    }

    /// Whether write transactions may be posted (completed on acceptance).
    pub fn supports_posted_writes(self) -> bool {
        matches!(
            self,
            ProtocolKind::StbusT2 | ProtocolKind::StbusT3 | ProtocolKind::Axi
        )
    }

    /// Whether an initiator interface may have several transactions in
    /// flight concurrently.
    pub fn supports_multiple_outstanding(self) -> bool {
        !matches!(self, ProtocolKind::Ahb)
    }

    /// Whether responses may return in a different order than requests were
    /// issued.
    pub fn supports_out_of_order(self) -> bool {
        matches!(self, ProtocolKind::StbusT3 | ProtocolKind::Axi)
    }

    /// Whether this is any STBus type.
    pub fn is_stbus(self) -> bool {
        matches!(
            self,
            ProtocolKind::StbusT1 | ProtocolKind::StbusT2 | ProtocolKind::StbusT3
        )
    }

    /// Clamps a requested outstanding-transaction budget to what the
    /// protocol allows (AHB is forced to 1).
    pub fn clamp_outstanding(self, requested: usize) -> usize {
        if self.supports_multiple_outstanding() {
            requested.max(1)
        } else {
            1
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolKind::StbusT1 => write!(f, "STBus Type 1"),
            ProtocolKind::StbusT2 => write!(f, "STBus Type 2"),
            ProtocolKind::StbusT3 => write!(f, "STBus Type 3"),
            ProtocolKind::Ahb => write!(f, "AMBA AHB"),
            ProtocolKind::Axi => write!(f, "AMBA AXI"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_matrix_matches_paper() {
        use ProtocolKind::*;
        assert!(StbusT1.supports_split());
        assert!(StbusT3.supports_split());
        assert!(!Ahb.supports_split());
        assert!(Axi.supports_split());

        assert!(!StbusT1.supports_posted_writes());
        assert!(StbusT2.supports_posted_writes());
        assert!(!Ahb.supports_posted_writes());

        assert!(!StbusT2.supports_out_of_order());
        assert!(StbusT3.supports_out_of_order());
        assert!(Axi.supports_out_of_order());

        assert!(!Ahb.supports_multiple_outstanding());
        assert!(StbusT1.supports_multiple_outstanding());
    }

    #[test]
    fn outstanding_clamp() {
        assert_eq!(ProtocolKind::Ahb.clamp_outstanding(8), 1);
        assert_eq!(ProtocolKind::Axi.clamp_outstanding(8), 8);
        assert_eq!(ProtocolKind::StbusT2.clamp_outstanding(0), 1);
    }

    #[test]
    fn stbus_family() {
        assert!(ProtocolKind::StbusT1.is_stbus());
        assert!(!ProtocolKind::Axi.is_stbus());
    }
}
