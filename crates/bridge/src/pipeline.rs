//! Register slices (pipeline stages) for timing closure.
//!
//! AXI explicitly supports "register insertion for timing closure
//! transparent to the protocol" (paper §3.2): a slice adds one cycle of
//! latency on a channel without changing any handshake semantics. The same
//! element is useful on long STBus paths. A [`PipelineStage`] is a pair of
//! 1-deep registered repeaters — one for the request direction, one for the
//! response direction — packaged as a single component.

use mpsoc_kernel::{Component, LinkId, TickContext};
use mpsoc_protocol::Packet;

/// A registered repeater on a request/response link pair: every payload is
/// delayed by exactly one cycle of the stage's clock (plus the downstream
/// link latency), with full back-pressure propagation.
///
/// Insert one by splitting a link in two and placing the stage between the
/// halves:
///
/// ```
/// use mpsoc_kernel::{Simulation, ClockDomain};
/// use mpsoc_protocol::Packet;
/// use mpsoc_bridge::PipelineStage;
///
/// let mut sim: Simulation<Packet> = Simulation::new();
/// let clk = ClockDomain::from_mhz(250);
/// // master -> req_a -> [stage] -> req_b -> target, and back.
/// let req_a = sim.links_mut().add_link("req.a", 2, clk.period());
/// let req_b = sim.links_mut().add_link("req.b", 2, clk.period());
/// let resp_a = sim.links_mut().add_link("resp.a", 2, clk.period());
/// let resp_b = sim.links_mut().add_link("resp.b", 2, clk.period());
/// let stage = PipelineStage::new("slice0", (req_a, req_b), (resp_b, resp_a));
/// sim.add_component(Box::new(stage), clk);
/// ```
#[derive(Debug)]
pub struct PipelineStage {
    name: String,
    req_in: LinkId,
    req_out: LinkId,
    resp_in: LinkId,
    resp_out: LinkId,
}

impl PipelineStage {
    /// Creates a stage forwarding requests from `req.0` to `req.1` and
    /// responses from `resp.0` to `resp.1`.
    pub fn new(name: impl Into<String>, req: (LinkId, LinkId), resp: (LinkId, LinkId)) -> Self {
        PipelineStage {
            name: name.into(),
            req_in: req.0,
            req_out: req.1,
            resp_in: resp.0,
            resp_out: resp.1,
        }
    }
}

// In-flight payloads live in the kernel's link pool; the stage itself is
// stateless.
impl mpsoc_kernel::Snapshot for PipelineStage {}

impl Component<Packet> for PipelineStage {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut TickContext<'_, Packet>) {
        let now = ctx.time;
        if ctx.links.has_deliverable(self.req_in, now) && ctx.links.can_push(self.req_out) {
            let pkt = ctx.links.pop(self.req_in, now).expect("deliverable");
            ctx.links.push(self.req_out, now, pkt).expect("can_push");
        }
        if ctx.links.has_deliverable(self.resp_in, now) && ctx.links.can_push(self.resp_out) {
            let pkt = ctx.links.pop(self.resp_in, now).expect("deliverable");
            ctx.links.push(self.resp_out, now, pkt).expect("can_push");
        }
    }

    fn parallel_safe(&self) -> bool {
        true
    }

    fn fast_forward_safe(&self) -> bool {
        true
    }

    fn fast_forward(&mut self, ctx: &mut mpsoc_kernel::FastCtx<'_, Packet>) {
        while let Some(mut tc) = ctx.next_edge() {
            let now = tc.time;
            self.tick(&mut tc);
            // The stage has no watched links (a full output wire frees
            // without any delivery), so it bounds its own sleep: backlog
            // retries every edge, a future head sets the wake, empty queues
            // sleep to the window boundary.
            let mut wake = u64::MAX;
            for id in [self.req_in, self.resp_in] {
                if let Some(head) = ctx.next_delivery(id) {
                    wake = wake.min(head.as_ps().max(now.as_ps()));
                }
            }
            if wake <= now.as_ps() {
                continue;
            }
            ctx.sleep_until((wake != u64::MAX).then(|| mpsoc_kernel::Time::from_ps(wake)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_kernel::{ClockDomain, Simulation, Time};
    use mpsoc_protocol::testing::{FixedLatencyTarget, ScriptedInitiator};
    use mpsoc_protocol::{DataWidth, InitiatorId, Transaction};

    fn reads(n: u64) -> Vec<Transaction> {
        (0..n)
            .map(|s| {
                Transaction::builder(InitiatorId::new(0), s)
                    .read(0x100 + s * 64)
                    .beats(4)
                    .width(DataWidth::BITS32)
                    .build()
            })
            .collect()
    }

    fn run_with_stages(stages: usize) -> Time {
        let mut sim: Simulation<Packet> = Simulation::new();
        let clk = ClockDomain::from_mhz(250);
        let mut req = sim.links_mut().add_link("req.0", 2, clk.period());
        let mut resp_tail = sim.links_mut().add_link("resp.0", 2, clk.period());
        let first_req = req;
        let first_resp = resp_tail;
        let mut stage_components = Vec::new();
        for i in 0..stages {
            let req_next = sim
                .links_mut()
                .add_link(format!("req.{}", i + 1), 2, clk.period());
            let resp_next = sim
                .links_mut()
                .add_link(format!("resp.{}", i + 1), 2, clk.period());
            stage_components.push(PipelineStage::new(
                format!("slice{i}"),
                (req, req_next),
                (resp_next, resp_tail),
            ));
            req = req_next;
            resp_tail = resp_next;
        }
        sim.add_component(
            Box::new(ScriptedInitiator::new(
                "m",
                first_req,
                first_resp,
                reads(10),
                4,
            )),
            clk,
        );
        for s in stage_components {
            sim.add_component(Box::new(s), clk);
        }
        sim.add_component(
            Box::new(FixedLatencyTarget::new("t", clk, req, resp_tail, 1)),
            clk,
        );
        sim.run_to_quiescence_strict(Time::from_ms(1))
            .expect("drains")
    }

    #[test]
    fn stage_is_transparent_but_adds_latency() {
        let none = run_with_stages(0);
        let one = run_with_stages(1);
        let three = run_with_stages(3);
        assert!(one > none, "a slice adds latency: {one} vs {none}");
        assert!(three > one, "more slices add more: {three} vs {one}");
    }

    #[test]
    fn all_transactions_survive_the_pipeline() {
        // Indirectly covered by run_to_quiescence_strict (the initiator
        // would never go idle if responses were lost); assert explicitly.
        let end = run_with_stages(2);
        assert!(end > Time::ZERO);
    }
}
