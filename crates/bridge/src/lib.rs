//! # mpsoc-bridge
//!
//! Bridges between interconnect layers, after the generic hybrid-bridge
//! scheme of the paper's Figure 2: a **target side** facing the source bus,
//! an **initiator side** facing the destination bus, and asynchronous FIFOs
//! between them providing clock-domain crossing.
//!
//! Two configuration presets capture the paper's two bridge classes:
//!
//! * [`BridgeConfig::lightweight`] — the basic bridges built for the AHB and
//!   AXI platform variants: store-and-forward writes, **blocking target side
//!   on read transactions** and tunable latency. Cheap in area, but they
//!   serialise reads across layers — the effect that nullifies AXI's
//!   advanced features in the distributed platforms of Figures 3 and 5.
//! * [`BridgeConfig::genconv`] — the proprietary STBus *Generic Converter*:
//!   split-capable (non-blocking) reads with multiple outstanding
//!   transactions, plus clock-domain crossing, datawidth conversion and
//!   protocol-type adaptation in a single instance.
//!
//! A bridge is **two** kernel components (one per clock domain) created
//! together by [`Bridge::build`]; the connecting FIFOs are ordinary links.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bridge;
mod pipeline;

pub use bridge::{Bridge, BridgeConfig, BridgeHalves, ReadPolicy};
pub use pipeline::PipelineStage;
