//! The hybrid bridge: target side, initiator side, async FIFOs.

use mpsoc_kernel::{
    ClockDomain, Component, FaultKind, LinkId, LinkPool, TickContext, Time, TraceKind,
};
use mpsoc_protocol::{DataWidth, Packet, Response, Transaction, TransactionId};
use std::collections::{HashMap, HashSet, VecDeque};

/// How the bridge's target side handles response-expecting transactions
/// (reads and non-posted writes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPolicy {
    /// The target side blocks after accepting one response-expecting
    /// transaction until its response has returned to the source bus. This
    /// is the lightweight implementation of the paper's hand-written
    /// bridges: "they have a blocking target side in presence of read
    /// transactions".
    Blocking,
    /// Split/non-blocking: up to `max_outstanding` response-expecting
    /// transactions may be in flight; control information is stored and
    /// re-associated with response data (the expensive bridge the paper
    /// says turns bridges into true IP blocks).
    Split {
        /// In-flight bound.
        max_outstanding: usize,
    },
}

/// Configuration of a [`Bridge`].
#[derive(Debug, Clone, Copy)]
pub struct BridgeConfig {
    /// Read handling policy.
    pub read_policy: ReadPolicy,
    /// Data width on the destination side; `None` keeps the source width.
    /// When set, beat counts are converted on the way out and restored on
    /// the way back.
    pub out_width: Option<DataWidth>,
    /// When true, posted writes are forwarded as non-posted and the bridge
    /// consumes the downstream acknowledgement itself (protocol-type
    /// conversion towards non-posted protocols).
    pub strip_posted: bool,
    /// Extra pipeline cycles (of the destination clock) added to the
    /// request path, and (of the source clock) to the response path —
    /// the paper's "tunable latency".
    pub extra_latency: u64,
    /// Depth of the request FIFO between the two sides.
    pub req_fifo_depth: usize,
    /// Depth of the response FIFO between the two sides.
    pub resp_fifo_depth: usize,
}

impl BridgeConfig {
    /// The lightweight bridge used for the AHB/AXI platform variants.
    pub fn lightweight() -> Self {
        BridgeConfig {
            read_policy: ReadPolicy::Blocking,
            out_width: None,
            strip_posted: false,
            extra_latency: 3,
            req_fifo_depth: 1,
            resp_fifo_depth: 1,
        }
    }

    /// The proprietary STBus Generic Converter: split-capable, buffered,
    /// low-latency.
    pub fn genconv() -> Self {
        BridgeConfig {
            read_policy: ReadPolicy::Split { max_outstanding: 8 },
            out_width: None,
            strip_posted: false,
            extra_latency: 0,
            req_fifo_depth: 8,
            resp_fifo_depth: 8,
        }
    }

    /// Sets the destination data width (datawidth conversion).
    pub fn with_out_width(mut self, width: DataWidth) -> Self {
        self.out_width = Some(width);
        self
    }

    /// Enables posted-write stripping (protocol conversion towards
    /// non-posted destinations).
    pub fn with_strip_posted(mut self) -> Self {
        self.strip_posted = true;
        self
    }

    /// Sets the extra pipeline latency.
    pub fn with_extra_latency(mut self, cycles: u64) -> Self {
        self.extra_latency = cycles;
        self
    }
}

impl Default for BridgeConfig {
    fn default() -> Self {
        BridgeConfig::lightweight()
    }
}

/// The two kernel components a bridge consists of, plus the links that the
/// neighbouring buses attach to.
///
/// Register `target_side` on the source-bus clock and `initiator_side` on
/// the destination-bus clock.
#[derive(Debug)]
pub struct BridgeHalves {
    /// Component facing the source bus (register on the source clock).
    pub target_side: BridgeTargetSide,
    /// Component facing the destination bus (register on the destination
    /// clock).
    pub initiator_side: BridgeInitiatorSide,
}

/// Builder for a bridge between two interconnect layers.
///
/// # Examples
///
/// ```
/// use mpsoc_kernel::{Simulation, ClockDomain};
/// use mpsoc_protocol::Packet;
/// use mpsoc_bridge::{Bridge, BridgeConfig};
///
/// let mut sim: Simulation<Packet> = Simulation::new();
/// let src_clk = ClockDomain::from_mhz(200);
/// let dst_clk = ClockDomain::from_mhz(250);
/// // Links towards the source bus (the bridge is that bus's target) ...
/// let a_req = sim.links_mut().add_link("br.a.req", 2, src_clk.period());
/// let a_resp = sim.links_mut().add_link("br.a.resp", 2, src_clk.period());
/// // ... and towards the destination bus (the bridge is its initiator).
/// let b_req = sim.links_mut().add_link("br.b.req", 2, dst_clk.period());
/// let b_resp = sim.links_mut().add_link("br.b.resp", 2, dst_clk.period());
///
/// let halves = Bridge::build(
///     "n5-to-n8",
///     BridgeConfig::genconv(),
///     sim.links_mut(),
///     src_clk,
///     dst_clk,
///     (a_req, a_resp),
///     (b_req, b_resp),
/// );
/// sim.add_component(Box::new(halves.target_side), src_clk);
/// sim.add_component(Box::new(halves.initiator_side), dst_clk);
/// ```
#[derive(Debug)]
pub struct Bridge;

impl Bridge {
    /// Creates the two bridge halves and their internal FIFOs.
    ///
    /// `a` is the `(request-in, response-out)` link pair on the source-bus
    /// side; `b` is the `(request-out, response-in)` pair on the
    /// destination-bus side.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        name: impl Into<String>,
        config: BridgeConfig,
        links: &mut LinkPool<Packet>,
        src_clock: ClockDomain,
        dst_clock: ClockDomain,
        a: (LinkId, LinkId),
        b: (LinkId, LinkId),
    ) -> BridgeHalves {
        let name = name.into();
        // Clock-domain crossing costs two destination (resp. source) cycles
        // of synchronisation, plus the configured pipeline latency.
        let req_latency = dst_clock.period() * (2 + config.extra_latency);
        let resp_latency = src_clock.period() * (2 + config.extra_latency);
        let req_fifo = links.add_link(
            format!("{name}.fifo.req"),
            config.req_fifo_depth,
            req_latency,
        );
        let resp_fifo = links.add_link(
            format!("{name}.fifo.resp"),
            config.resp_fifo_depth,
            resp_latency,
        );
        BridgeHalves {
            target_side: BridgeTargetSide {
                name: format!("{name}.target_side"),
                config,
                req_in: a.0,
                resp_out: a.1,
                req_fifo,
                resp_fifo,
                in_flight: HashMap::new(),
                consume_ack: HashSet::new(),
                src_width: None,
                src_period: src_clock.period(),
                dst_period: dst_clock.period(),
                retries: VecDeque::new(),
                dead_letters: VecDeque::new(),
            },
            initiator_side: BridgeInitiatorSide {
                name: format!("{name}.initiator_side"),
                req_fifo,
                resp_fifo,
                req_out: b.0,
                resp_in: b.1,
            },
        }
    }
}

/// The bridge half that appears as a *target* on the source bus.
///
/// Created by [`Bridge::build`].
#[derive(Debug)]
pub struct BridgeTargetSide {
    name: String,
    config: BridgeConfig,
    req_in: LinkId,
    resp_out: LinkId,
    req_fifo: LinkId,
    resp_fifo: LinkId,
    /// Response-expecting transactions currently beyond this bridge, with
    /// the source-side width to restore on the way back.
    in_flight: HashMap<TransactionId, DataWidth>,
    /// Acks the bridge must swallow (stripped posted writes).
    consume_ack: HashSet<TransactionId>,
    /// Width observed on the first accepted transaction (sanity checking).
    src_width: Option<DataWidth>,
    /// Period of the source-bus clock (detection timeouts count in it).
    src_period: Time,
    /// Period of the destination-bus clock (glitch delays count in it).
    dst_period: Time,
    /// Transfers awaiting retransmission after an injected crossing fault,
    /// ordered by enqueue time. Empty in every fault-free run.
    retries: VecDeque<RetryEntry>,
    /// Error completions for abandoned transactions, waiting for space on
    /// the source-bus response channel.
    dead_letters: VecDeque<Response>,
}

/// A transfer the crossing lost or corrupted, queued for retransmission.
#[derive(Debug)]
struct RetryEntry {
    txn: Transaction,
    expects_response: bool,
    /// Retransmissions performed so far.
    attempt: u32,
    /// Earliest time the retransmission may go out (detection timeout with
    /// exponential backoff for drops, next cycle for corruptions).
    deadline: Time,
    /// Injected faults accumulated by this transfer (a retransmission can
    /// be hit again), resolved in one batch when it finally crosses or is
    /// abandoned.
    faults: u64,
}

impl BridgeTargetSide {
    fn accept_allowed(&self, response_expected: bool) -> bool {
        match self.config.read_policy {
            ReadPolicy::Blocking => {
                if self.in_flight.is_empty() {
                    true
                } else {
                    // Blocked on an outstanding response: nothing passes,
                    // not even writes — the source layer sees a busy target.
                    false
                }
            }
            ReadPolicy::Split { max_outstanding } => {
                !response_expected || self.in_flight.len() < max_outstanding
            }
        }
    }

    /// Sends `entry` across the clock-domain crossing, probing the fault
    /// engine at the one point where crossing faults are physically
    /// meaningful. The caller has already checked `can_push(req_fifo)`.
    fn dispatch(&mut self, mut entry: RetryEntry, ctx: &mut TickContext<'_, Packet>) {
        let now = ctx.time;
        if ctx.faults.probe(FaultKind::LinkDrop) {
            // Lost in transit; detected only when the retransmission timer
            // expires (exponential backoff per attempt).
            entry.faults += 1;
            let backoff = ctx.faults.schedule().timeout_cycles << entry.attempt.min(16);
            self.requeue_or_abandon(entry, self.src_period * backoff, ctx);
        } else if ctx.faults.probe(FaultKind::LinkCorrupt) {
            // Corrupted in transit; the receiver's checksum catches it
            // immediately, so the retransmission goes out next cycle.
            entry.faults += 1;
            self.requeue_or_abandon(entry, self.src_period, ctx);
        } else if ctx.faults.probe(FaultKind::ClockGlitch) {
            // Metastability glitch: the transfer survives but the crossing
            // takes extra synchroniser cycles. Delivered late = recovered.
            let glitch = self.dst_period * ctx.faults.schedule().glitch_cycles;
            ctx.faults.record_recovered(entry.faults + 1);
            let c = ctx.stats.counter(&format!("{}.fault_glitches", self.name));
            ctx.stats.inc(c, 1);
            ctx.links
                .push_after(self.req_fifo, now, glitch, Packet::Request(entry.txn))
                .expect("can_push checked");
        } else {
            if entry.faults > 0 {
                ctx.faults.record_recovered(entry.faults);
                let c = ctx.stats.counter(&format!("{}.fault_recovered", self.name));
                ctx.stats.inc(c, entry.faults);
            }
            ctx.links
                .push(self.req_fifo, now, Packet::Request(entry.txn))
                .expect("can_push checked");
        }
    }

    /// A transmission of `entry` was hit: schedule the retransmission after
    /// `detect_delay`, or — with the retry budget exhausted — abandon the
    /// transfer, releasing every upstream waiter with an error completion.
    fn requeue_or_abandon(
        &mut self,
        mut entry: RetryEntry,
        detect_delay: Time,
        ctx: &mut TickContext<'_, Packet>,
    ) {
        let now = ctx.time;
        if entry.attempt < ctx.faults.schedule().retry_budget {
            entry.deadline = now + detect_delay;
            self.retries.push_back(entry);
            return;
        }
        ctx.faults.record_lost(entry.faults);
        let c = ctx.stats.counter(&format!("{}.fault_lost", self.name));
        ctx.stats.inc(c, 1);
        self.consume_ack.remove(&entry.txn.id);
        let mut txn = entry.txn;
        if let Some(width) = self.in_flight.remove(&txn.id) {
            txn = txn.with_width(width);
        }
        ctx.stats.emit_trace(now, &self.name, TraceKind::State, || {
            format!("{txn} abandoned after {} attempts", entry.attempt + 1)
        });
        if entry.expects_response {
            self.dead_letters.push_back(Response::error(txn, now));
        }
    }
}

impl mpsoc_kernel::Snapshot for BridgeTargetSide {
    fn save(&self, w: &mut mpsoc_kernel::StateWriter) {
        use mpsoc_protocol::persist;
        let mut in_flight: Vec<_> = self.in_flight.iter().collect();
        in_flight.sort_by_key(|(id, _)| **id);
        w.write_usize(in_flight.len());
        for (id, width) in in_flight {
            persist::save_txn_id(*id, w);
            persist::save_width(*width, w);
        }
        let mut acks: Vec<_> = self.consume_ack.iter().copied().collect();
        acks.sort();
        w.write_usize(acks.len());
        for id in acks {
            persist::save_txn_id(id, w);
        }
        w.write_bool(self.src_width.is_some());
        if let Some(width) = self.src_width {
            persist::save_width(width, w);
        }
        w.write_usize(self.retries.len());
        for entry in &self.retries {
            persist::save_txn(&entry.txn, w);
            w.write_bool(entry.expects_response);
            w.write_u32(entry.attempt);
            w.write_time(entry.deadline);
            w.write_u64(entry.faults);
        }
        w.write_usize(self.dead_letters.len());
        for resp in &self.dead_letters {
            persist::save_response(resp, w);
        }
    }

    fn restore(&mut self, r: &mut mpsoc_kernel::StateReader<'_>) {
        use mpsoc_protocol::persist;
        self.in_flight.clear();
        for _ in 0..r.read_usize() {
            let id = persist::load_txn_id(r);
            let width = persist::load_width(r);
            self.in_flight.insert(id, width);
        }
        self.consume_ack.clear();
        for _ in 0..r.read_usize() {
            self.consume_ack.insert(persist::load_txn_id(r));
        }
        self.src_width = r.read_bool().then(|| persist::load_width(r));
        self.retries = (0..r.read_usize())
            .map(|_| RetryEntry {
                txn: persist::load_txn(r),
                expects_response: r.read_bool(),
                attempt: r.read_u32(),
                deadline: r.read_time(),
                faults: r.read_u64(),
            })
            .collect();
        self.dead_letters = (0..r.read_usize())
            .map(|_| persist::load_response(r))
            .collect();
    }
}

impl Component<Packet> for BridgeTargetSide {
    fn name(&self) -> &str {
        &self.name
    }

    fn register_metrics(&self, stats: &mut mpsoc_kernel::StatsRegistry) {
        for metric in [
            "fault_glitches",
            "fault_recovered",
            "fault_lost",
            "fault_retries",
        ] {
            stats.counter(&format!("{}.{metric}", self.name));
        }
    }

    fn tick(&mut self, ctx: &mut TickContext<'_, Packet>) {
        let now = ctx.time;
        // Release initiators of abandoned transfers (error completions wait
        // for response-channel space like any other response).
        if !self.dead_letters.is_empty() && ctx.links.can_push(self.resp_out) {
            let dead = self.dead_letters.pop_front().expect("checked non-empty");
            ctx.links
                .push(self.resp_out, now, Packet::Response(dead))
                .expect("can_push checked");
        }
        // Return a response towards the source bus.
        if let Some(Packet::Response(resp)) = ctx.links.peek(self.resp_fifo, now) {
            let id = resp.txn.id;
            if self.consume_ack.contains(&id) {
                ctx.links.pop(self.resp_fifo, now);
                self.consume_ack.remove(&id);
            } else if ctx.links.can_push(self.resp_out) {
                let pkt = ctx.links.pop(self.resp_fifo, now).expect("peeked");
                let mut resp = pkt.expect_response();
                if let Some(width) = self.in_flight.remove(&id) {
                    resp.txn = resp.txn.with_width(width);
                }
                // The response data sits buffered in the bridge FIFO, so the
                // source-side re-stream runs gapless even if the original
                // target streamed with wait states.
                resp.gap_per_beat = 0;
                ctx.links
                    .push(self.resp_out, now, Packet::Response(resp))
                    .expect("can_push checked");
            }
        }
        // Retransmit a due retry, with priority over new accepts (one
        // request crosses per cycle either way).
        let due = self.retries.iter().position(|entry| entry.deadline <= now);
        if let Some(pos) = due {
            if ctx.links.can_push(self.req_fifo) {
                let mut entry = self.retries.remove(pos).expect("position found");
                entry.attempt += 1;
                ctx.faults.record_retry(1);
                let c = ctx.stats.counter(&format!("{}.fault_retries", self.name));
                ctx.stats.inc(c, 1);
                ctx.stats
                    .emit_trace(now, &self.name, TraceKind::Forward, || {
                        format!("{} retransmission #{}", entry.txn, entry.attempt)
                    });
                self.dispatch(entry, ctx);
            }
            return;
        }
        // Accept a request from the source bus (store-and-forward: the
        // source bus delivers writes only once their data has fully
        // transferred, so the arrival time already reflects the store).
        let response_expected = ctx
            .links
            .peek(self.req_in, now)
            .and_then(Packet::as_request)
            .map(|t| !t.completes_on_acceptance());
        if let Some(response_expected) = response_expected {
            if self.accept_allowed(response_expected) && ctx.links.can_push(self.req_fifo) {
                let pkt = ctx.links.pop(self.req_in, now).expect("peeked");
                let mut txn = pkt.expect_request();
                self.src_width.get_or_insert(txn.width);
                if let Some(w) = self.config.out_width {
                    txn = txn.with_width(w);
                }
                let mut expects_response = response_expected;
                if self.config.strip_posted && txn.posted {
                    txn.posted = false;
                    // The downstream ack terminates here.
                    self.consume_ack.insert(txn.id);
                    expects_response = false;
                }
                if expects_response {
                    self.in_flight
                        .insert(txn.id, self.src_width.unwrap_or(txn.width));
                }
                ctx.stats
                    .emit_trace(now, &self.name, TraceKind::Forward, || {
                        format!("{txn} crosses ({} in flight)", self.in_flight.len())
                    });
                self.dispatch(
                    RetryEntry {
                        txn,
                        expects_response,
                        attempt: 0,
                        deadline: now,
                        faults: 0,
                    },
                    ctx,
                );
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
            && self.consume_ack.is_empty()
            && self.retries.is_empty()
            && self.dead_letters.is_empty()
    }

    fn parallel_safe(&self) -> bool {
        true
    }

    fn watched_links(&self) -> Option<Vec<LinkId>> {
        Some(vec![self.req_in, self.resp_fifo])
    }

    fn next_activity(&self) -> Option<Time> {
        // Dead letters wait only on response-channel space, so they must be
        // retried every edge; retry entries sleep until their backoff
        // deadline. Everything else (accepts, response returns) is woken by
        // deliveries on req_in / resp_fifo.
        if !self.dead_letters.is_empty() {
            return Some(Time::ZERO);
        }
        self.retries.iter().map(|entry| entry.deadline).min()
    }

    fn fast_forward_safe(&self) -> bool {
        true
    }

    fn fast_forward(&mut self, ctx: &mut mpsoc_kernel::FastCtx<'_, Packet>) {
        while let Some(mut tc) = ctx.next_edge() {
            self.tick(&mut tc);
            if !self.dead_letters.is_empty()
                || ctx.has_deliverable(self.req_in)
                || ctx.has_deliverable(self.resp_fifo)
            {
                // Dead letters poll for channel space; queued backlog
                // (accepts, response returns) processes one head per cycle.
                continue;
            }
            let wake = self
                .retries
                .iter()
                .map(|entry| entry.deadline.as_ps())
                .min();
            ctx.sleep_until(wake.map(Time::from_ps));
        }
    }
}

/// The bridge half that appears as an *initiator* on the destination bus.
///
/// Created by [`Bridge::build`].
#[derive(Debug)]
pub struct BridgeInitiatorSide {
    name: String,
    req_fifo: LinkId,
    resp_fifo: LinkId,
    req_out: LinkId,
    resp_in: LinkId,
}

// The FIFO contents live in the kernel's link pool; this half keeps no
// private state of its own.
impl mpsoc_kernel::Snapshot for BridgeInitiatorSide {}

impl Component<Packet> for BridgeInitiatorSide {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut TickContext<'_, Packet>) {
        let now = ctx.time;
        // Responses from the destination bus into the response FIFO.
        if ctx.links.has_deliverable(self.resp_in, now) && ctx.links.can_push(self.resp_fifo) {
            let pkt = ctx.links.pop(self.resp_in, now).expect("deliverable");
            ctx.links
                .push(self.resp_fifo, now, pkt)
                .expect("can_push checked");
        }
        // Requests from the request FIFO onto the destination bus.
        if ctx.links.has_deliverable(self.req_fifo, now) && ctx.links.can_push(self.req_out) {
            let pkt = ctx.links.pop(self.req_fifo, now).expect("deliverable");
            ctx.links
                .push(self.req_out, now, pkt)
                .expect("can_push checked");
        }
    }

    fn parallel_safe(&self) -> bool {
        true
    }

    fn watched_links(&self) -> Option<Vec<LinkId>> {
        Some(vec![self.req_fifo, self.resp_in])
    }
    // Purely reactive FIFO shuttling: a payload blocked by a full
    // destination stays queued on the watched link, which keeps the wake
    // due until it crosses. `next_activity` stays `None`.

    fn fast_forward_safe(&self) -> bool {
        true
    }

    fn fast_forward(&mut self, ctx: &mut mpsoc_kernel::FastCtx<'_, Packet>) {
        while let Some(mut tc) = ctx.next_edge() {
            self.tick(&mut tc);
            if ctx.has_deliverable(self.req_fifo) || ctx.has_deliverable(self.resp_in) {
                // One payload shuttles per direction per cycle: backlog
                // (including heads blocked on a full destination) retries
                // every edge, as the cycle gear does.
                continue;
            }
            ctx.sleep_until(None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_kernel::Simulation;
    use mpsoc_protocol::testing::{FixedLatencyTarget, ScriptedInitiator};
    use mpsoc_protocol::{InitiatorId, Transaction};

    fn read(seq: u64, addr: u64, beats: u32) -> Transaction {
        Transaction::builder(InitiatorId::new(0), seq)
            .read(addr)
            .beats(beats)
            .width(DataWidth::BITS32)
            .build()
    }

    /// initiator -> bridge -> target, point to point.
    fn rig(
        config: BridgeConfig,
        script: Vec<Transaction>,
        target_ws: u32,
    ) -> (Simulation<Packet>, LinkId, LinkId) {
        let mut sim: Simulation<Packet> = Simulation::new();
        let src = ClockDomain::from_mhz(200);
        let dst = ClockDomain::from_mhz(250);
        let a_req = sim.links_mut().add_link("a.req", 2, src.period());
        let a_resp = sim.links_mut().add_link("a.resp", 2, src.period());
        let b_req = sim.links_mut().add_link("b.req", 2, dst.period());
        let b_resp = sim.links_mut().add_link("b.resp", 2, dst.period());
        let halves = Bridge::build(
            "br",
            config,
            sim.links_mut(),
            src,
            dst,
            (a_req, a_resp),
            (b_req, b_resp),
        );
        sim.add_component(
            Box::new(ScriptedInitiator::new("i0", a_req, a_resp, script, 8)),
            src,
        );
        sim.add_component(Box::new(halves.target_side), src);
        sim.add_component(Box::new(halves.initiator_side), dst);
        sim.add_component(
            Box::new(FixedLatencyTarget::new("t0", dst, b_req, b_resp, target_ws)),
            dst,
        );
        (sim, b_req, a_resp)
    }

    #[test]
    fn read_crosses_clock_domains_and_returns() {
        let (mut sim, _, a_resp) = rig(BridgeConfig::lightweight(), vec![read(1, 0x100, 4)], 1);
        sim.run_to_quiescence_strict(Time::from_us(100))
            .expect("drains");
        assert_eq!(sim.links().link(a_resp).stats().pushes, 1);
    }

    #[test]
    fn blocking_bridge_serialises_reads() {
        let script: Vec<Transaction> = (0..4).map(|s| read(s, 0x100, 4)).collect();
        let (mut sim, b_req, _) = rig(BridgeConfig::lightweight(), script.clone(), 10);
        // While the first read is outstanding (first response appears only
        // after ~44 ns of target service plus the return path) the second
        // must not reach the destination side.
        sim.run_until(Time::from_ns(40));
        assert_eq!(sim.links().link(b_req).stats().pushes, 1);
        let blocking_end = sim
            .run_to_quiescence_strict(Time::from_ms(10))
            .expect("drains");

        let (mut sim2, b_req2, _) = rig(BridgeConfig::genconv(), script, 10);
        sim2.run_until(Time::from_ns(300));
        assert!(
            sim2.links().link(b_req2).stats().pushes >= 2,
            "split bridge pipelines reads"
        );
        let split_end = sim2
            .run_to_quiescence_strict(Time::from_ms(10))
            .expect("drains");
        assert!(
            split_end < blocking_end,
            "split ({split_end}) must beat blocking ({blocking_end})"
        );
    }

    #[test]
    fn width_conversion_and_restoration() {
        let cfg = BridgeConfig::genconv().with_out_width(DataWidth::BITS64);
        let (mut sim, b_req, a_resp) = rig(cfg, vec![read(1, 0x100, 8)], 0);
        // Observe the converted request on the destination side.
        let mut seen_beats = None;
        for _ in 0..2000 {
            sim.step();
            if let Some(Packet::Request(t)) = sim.links().peek(b_req, Time::MAX) {
                seen_beats = Some((t.beats, t.width));
                break;
            }
        }
        assert_eq!(seen_beats, Some((4, DataWidth::BITS64)));
        sim.run_to_quiescence_strict(Time::from_ms(1))
            .expect("drains");
        // The response returned to the initiator restored to 32-bit beats.
        // (The link has already been drained by the initiator; check the
        // push count instead and rely on the conversion unit tests for the
        // width restore.)
        assert_eq!(sim.links().link(a_resp).stats().pushes, 1);
    }

    #[test]
    fn strip_posted_consumes_downstream_ack() {
        let cfg = BridgeConfig::genconv().with_strip_posted();
        let script = vec![Transaction::builder(InitiatorId::new(0), 1)
            .write(0x200)
            .beats(4)
            .width(DataWidth::BITS32)
            .posted(true)
            .build()];
        let (mut sim, _, a_resp) = rig(cfg, script, 1);
        sim.run_to_quiescence_strict(Time::from_ms(1))
            .expect("drains");
        // No response ever reaches the source side.
        assert_eq!(sim.links().link(a_resp).stats().pushes, 0);
    }

    #[test]
    fn posted_writes_flow_through_without_blocking() {
        let cfg = BridgeConfig::lightweight();
        let script: Vec<Transaction> = (0..5)
            .map(|s| {
                Transaction::builder(InitiatorId::new(0), s)
                    .write(0x100 + s * 64)
                    .beats(2)
                    .width(DataWidth::BITS32)
                    .posted(true)
                    .build()
            })
            .collect();
        let (mut sim, b_req, _) = rig(cfg, script, 1);
        sim.run_to_quiescence_strict(Time::from_ms(1))
            .expect("drains");
        assert_eq!(sim.links().link(b_req).stats().pushes, 5);
    }

    #[test]
    fn extra_latency_slows_the_path() {
        let fast = {
            let (mut sim, _, _) = rig(
                BridgeConfig::genconv().with_extra_latency(0),
                vec![read(1, 0x100, 4)],
                1,
            );
            sim.run_to_quiescence_strict(Time::from_ms(1))
                .expect("drains")
        };
        let slow = {
            let (mut sim, _, _) = rig(
                BridgeConfig::genconv().with_extra_latency(8),
                vec![read(1, 0x100, 4)],
                1,
            );
            sim.run_to_quiescence_strict(Time::from_ms(1))
                .expect("drains")
        };
        assert!(slow > fast, "latency knob must matter: {slow} vs {fast}");
    }
}
