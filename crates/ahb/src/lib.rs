//! # mpsoc-ahb
//!
//! A behavioural, cycle-accurate model of the **AMBA AHB** system backbone
//! as used in the paper's protocol-interaction experiments.
//!
//! The model reflects the AHB semantics the analysis turns on (and matches
//! the paper's own SystemC model, which also omits SPLIT/RETRY):
//!
//! * A **single active data path**: the channel is composed of split read
//!   and write links but only one can be active at a time, so requests and
//!   responses cannot be multiplexed.
//! * **Non-split transactions**: the bus is held from the grant until the
//!   last response beat, so target wait states translate directly into bus
//!   idle cycles.
//! * **Non-posted writes**: every write is acknowledged before the master
//!   may consider it done (the bus strips any posted flag it is handed).
//! * **Pipelined address phase / early `HGRANTx`**: the arbiter changes
//!   grant while the penultimate data beat transfers, so back-to-back
//!   transactions incur no handover bubble — AHB's best case is exactly the
//!   many-to-one pattern of Section 4.1.2.
//!
//! The component is [`AhbBus`]; wiring follows the same link convention as
//! the other interconnects, so initiators and targets are interchangeable
//! across protocols.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;

pub use bus::{AhbBus, AhbBusConfig};
