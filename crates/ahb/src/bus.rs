//! The AHB shared-bus component.

use mpsoc_kernel::stats::CounterId;
use mpsoc_kernel::{ClockDomain, Component, LinkId, TickContext, Time, TraceKind};
use mpsoc_protocol::{
    AddressMap, AddressMapError, AddressRange, ArbitrationPolicy, Contender, DataWidth, Packet,
    TransactionId,
};

/// How many cycles before the current transaction completes the arbiter may
/// hand out the next grant (early `HGRANTx` switching at the penultimate
/// beat). This is what hides the handover overhead in the many-to-one
/// scenario.
const EARLY_GRANT_CYCLES: u64 = 2;

/// Configuration of an [`AhbBus`].
#[derive(Debug, Clone, Copy)]
pub struct AhbBusConfig {
    /// Data-path width.
    pub width: DataWidth,
    /// Arbitration policy (AHB arbiters are typically fixed-priority, but
    /// all workspace policies are available).
    pub arbitration: ArbitrationPolicy,
}

impl Default for AhbBusConfig {
    fn default() -> Self {
        AhbBusConfig {
            width: DataWidth::BITS32,
            arbitration: ArbitrationPolicy::FixedPriority,
        }
    }
}

#[derive(Debug)]
struct InitiatorPort {
    req_in: LinkId,
    resp_out: LinkId,
}

#[derive(Debug)]
struct TargetPort {
    req_out: LinkId,
    resp_in: LinkId,
}

#[derive(Debug)]
struct Active {
    txn_id: TransactionId,
    initiator_port: usize,
    target_port: usize,
    granted_at: Time,
    /// Whether the completion is forwarded to the initiator. Posted writes
    /// are bus-terminated: the master already completed at injection, but
    /// the bus still holds until the target acknowledges (AHB writes are
    /// implicitly non-posted on the wire).
    forward_response: bool,
}

#[derive(Debug, Default)]
struct Counters {
    granted: Option<CounterId>,
    busy_ps: Option<CounterId>,
    idle_waits: Option<CounterId>,
}

/// A cycle-accurate AMBA AHB shared bus.
///
/// One transaction owns the bus at a time, from grant to the final response
/// beat — wait states of the target are bus idle cycles, the defining
/// non-split behaviour. Wiring follows the workspace link convention (see
/// [`StbusNode`] for the pattern); initiator and target components are
/// interchangeable across the bus crates.
///
/// [`StbusNode`]: https://docs.rs/mpsoc-stbus
///
/// # Examples
///
/// ```
/// use mpsoc_kernel::{Simulation, ClockDomain};
/// use mpsoc_protocol::{AddressRange, Packet};
/// use mpsoc_ahb::{AhbBus, AhbBusConfig};
///
/// let mut sim: Simulation<Packet> = Simulation::new();
/// let clk = ClockDomain::from_mhz(200);
/// let i_req = sim.links_mut().add_link("i.req", 2, clk.period());
/// let i_resp = sim.links_mut().add_link("i.resp", 2, clk.period());
/// let t_req = sim.links_mut().add_link("t.req", 2, clk.period());
/// let t_resp = sim.links_mut().add_link("t.resp", 2, clk.period());
///
/// let mut bus = AhbBus::new("ahb", AhbBusConfig::default(), clk);
/// bus.add_initiator(i_req, i_resp);
/// let t = bus.add_target(t_req, t_resp);
/// bus.add_route(AddressRange::new(0, 0x1000_0000), t)?;
/// sim.add_component(Box::new(bus), clk);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct AhbBus {
    name: String,
    config: AhbBusConfig,
    clock: ClockDomain,
    initiators: Vec<InitiatorPort>,
    targets: Vec<TargetPort>,
    map: AddressMap<usize>,
    active: Option<Active>,
    busy_until: Time,
    /// High-water mark of busy time already charged to the utilisation
    /// counter (early grants overlap transactions; intervals must not be
    /// double-counted).
    charged_until: Time,
    last_winner: usize,
    counters: Counters,
}

impl AhbBus {
    /// Creates a bus with no ports.
    pub fn new(name: impl Into<String>, config: AhbBusConfig, clock: ClockDomain) -> Self {
        AhbBus {
            name: name.into(),
            config,
            clock,
            initiators: Vec::new(),
            targets: Vec::new(),
            map: AddressMap::new(),
            active: None,
            busy_until: Time::ZERO,
            charged_until: Time::ZERO,
            last_winner: 0,
            counters: Counters::default(),
        }
    }

    /// Attaches an initiator port; returns its index.
    pub fn add_initiator(&mut self, req_in: LinkId, resp_out: LinkId) -> usize {
        self.initiators.push(InitiatorPort { req_in, resp_out });
        self.initiators.len() - 1
    }

    /// Attaches a target port; returns its index.
    pub fn add_target(&mut self, req_out: LinkId, resp_in: LinkId) -> usize {
        self.targets.push(TargetPort { req_out, resp_in });
        self.targets.len() - 1
    }

    /// Routes an address range to a target port.
    ///
    /// # Errors
    ///
    /// Returns an error if the range overlaps an existing route.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not a valid target-port index.
    pub fn add_route(&mut self, range: AddressRange, target: usize) -> Result<(), AddressMapError> {
        assert!(
            target < self.targets.len(),
            "route to unknown target port {target}"
        );
        self.map.add(range, target)
    }

    /// Number of initiator ports.
    pub fn initiator_count(&self) -> usize {
        self.initiators.len()
    }

    /// Number of target ports.
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    fn complete_active(&mut self, ctx: &mut TickContext<'_, Packet>) {
        let now = ctx.time;
        if now < self.busy_until {
            return;
        }
        let Some(active) = &self.active else { return };
        let resp_in = self.targets[active.target_port].resp_in;
        let Some(Packet::Response(resp)) = ctx.links.peek(resp_in, now) else {
            return;
        };
        assert_eq!(
            resp.txn.id, active.txn_id,
            "{}: response id mismatch on a single-outstanding bus",
            self.name
        );
        if active.forward_response
            && !ctx
                .links
                .can_push(self.initiators[active.initiator_port].resp_out)
        {
            return;
        }
        let pkt = ctx.links.pop(resp_in, now).expect("peeked above");
        let resp = pkt.expect_response();
        let cycles = resp.channel_cycles();
        let period = self.clock.period();
        self.busy_until = now + period * cycles;
        let active = self.active.take().expect("checked above");
        if active.forward_response {
            ctx.links
                .push_after(
                    self.initiators[active.initiator_port].resp_out,
                    now,
                    period * cycles.saturating_sub(1),
                    Packet::Response(resp),
                )
                .expect("can_push checked");
        }
        ctx.stats
            .emit_trace(now, &self.name, TraceKind::Deliver, || {
                format!("txn {} -> port {}", active.txn_id, active.initiator_port)
            });
        let busy = *self
            .counters
            .busy_ps
            .get_or_insert_with(|| ctx.stats.counter(&format!("{}.busy_ps", self.name)));
        let charge_from = active.granted_at.max(self.charged_until);
        ctx.stats
            .inc(busy, self.busy_until.saturating_sub(charge_from).as_ps());
        self.charged_until = self.charged_until.max(self.busy_until);
    }

    fn arbitrate(&mut self, ctx: &mut TickContext<'_, Packet>) {
        let now = ctx.time;
        let period = self.clock.period();
        if self.active.is_some() {
            return;
        }
        // Early grant: the next master may be granted while the previous
        // transaction's final beats are still draining.
        let early = self.busy_until.saturating_sub(period * EARLY_GRANT_CYCLES);
        if now < early {
            return;
        }
        let mut contenders = Vec::new();
        for (p, port) in self.initiators.iter().enumerate() {
            let Some(Packet::Request(txn)) = ctx.links.peek(port.req_in, now) else {
                continue;
            };
            let (addr, priority, created_at) = (txn.addr, txn.priority, txn.created_at);
            let Some(target) = self.map.route(addr) else {
                panic!("{}: no route for address {addr:#x}", self.name);
            };
            if !ctx.links.can_push(self.targets[target].req_out) {
                continue;
            }
            contenders.push(Contender {
                port: p,
                priority,
                created_at,
            });
        }
        let Some(winner) =
            self.config
                .arbitration
                .pick(&contenders, self.last_winner, self.initiators.len())
        else {
            return;
        };
        let pkt = ctx
            .links
            .pop(self.initiators[winner.port].req_in, now)
            .expect("contender head present");
        let mut txn = pkt.expect_request();
        debug_assert_eq!(
            txn.width, self.config.width,
            "{}: transaction width mismatch (missing converter?)",
            self.name
        );
        let target = self.map.route(txn.addr).expect("routed above");
        // AHB writes are non-posted on the wire: the bus always collects the
        // target's acknowledgement, but only forwards it if the master
        // expects one.
        let forward_response = !txn.completes_on_acceptance();
        txn.posted = false;
        let req_cycles = txn.request_cycles();
        // The address phase may overlap the previous data phase (pipelining)
        // but the request must not reach the target before the bus is free.
        let natural_arrival = now + period * req_cycles;
        let arrival = natural_arrival.max(self.busy_until);
        let extra = arrival - now - period;
        self.last_winner = winner.port;
        let txn_id = txn.id;
        ctx.links
            .push_after(
                self.targets[target].req_out,
                now,
                extra,
                Packet::Request(txn),
            )
            .expect("can_push checked");
        self.active = Some(Active {
            txn_id,
            initiator_port: winner.port,
            target_port: target,
            granted_at: now,
            forward_response,
        });
        self.busy_until = self.busy_until.max(arrival);
        ctx.stats.emit_trace(now, &self.name, TraceKind::Grant, || {
            format!("txn {txn_id} port {} -> target {target}", winner.port)
        });
        let granted = *self
            .counters
            .granted
            .get_or_insert_with(|| ctx.stats.counter(&format!("{}.granted", self.name)));
        ctx.stats.inc(granted, 1);
    }
}

impl mpsoc_kernel::Snapshot for AhbBus {
    fn save(&self, w: &mut mpsoc_kernel::StateWriter) {
        use mpsoc_protocol::persist;
        w.write_bool(self.active.is_some());
        if let Some(active) = &self.active {
            persist::save_txn_id(active.txn_id, w);
            w.write_usize(active.initiator_port);
            w.write_usize(active.target_port);
            w.write_time(active.granted_at);
            w.write_bool(active.forward_response);
        }
        w.write_time(self.busy_until);
        w.write_time(self.charged_until);
        w.write_usize(self.last_winner);
    }

    fn restore(&mut self, r: &mut mpsoc_kernel::StateReader<'_>) {
        use mpsoc_protocol::persist;
        self.active = r.read_bool().then(|| Active {
            txn_id: persist::load_txn_id(r),
            initiator_port: r.read_usize(),
            target_port: r.read_usize(),
            granted_at: r.read_time(),
            forward_response: r.read_bool(),
        });
        self.busy_until = r.read_time();
        self.charged_until = r.read_time();
        self.last_winner = r.read_usize();
    }
}

impl Component<Packet> for AhbBus {
    fn name(&self) -> &str {
        &self.name
    }

    fn register_metrics(&self, stats: &mut mpsoc_kernel::StatsRegistry) {
        for metric in ["busy_ps", "granted", "idle_waits"] {
            stats.counter(&format!("{}.{metric}", self.name));
        }
    }

    fn tick(&mut self, ctx: &mut TickContext<'_, Packet>) {
        self.complete_active(ctx);
        if self.active.is_some() && ctx.time >= self.busy_until {
            // Bus held, waiting on the target: idle wait cycles (the paper's
            // "memory wait states translate into idle cycles for AMBA AHB").
            let idle = *self
                .counters
                .idle_waits
                .get_or_insert_with(|| ctx.stats.counter(&format!("{}.idle_waits", self.name)));
            ctx.stats.inc(idle, 1);
        }
        self.arbitrate(ctx);
    }

    fn is_idle(&self) -> bool {
        self.active.is_none()
    }

    fn parallel_safe(&self) -> bool {
        true
    }

    fn watched_links(&self) -> Option<Vec<LinkId>> {
        Some(
            self.initiators
                .iter()
                .map(|p| p.req_in)
                .chain(self.targets.iter().map(|t| t.resp_in))
                .collect(),
        )
    }

    fn next_activity(&self) -> Option<Time> {
        // While a transaction is held the bus has its own deadline: the
        // data-phase end (`busy_until`), after which every further cycle
        // spent waiting on the target counts as an idle wait — `busy_until`
        // stays in the past then, keeping the bus ticking each edge exactly
        // as the dense schedule does. An un-held bus is purely reactive
        // (grants need a deliverable request, which wakes it).
        self.active.is_some().then_some(self.busy_until)
    }

    fn fast_forward_safe(&self) -> bool {
        true
    }

    fn fast_forward(&mut self, ctx: &mut mpsoc_kernel::FastCtx<'_, Packet>) {
        while let Some(mut tc) = ctx.next_edge() {
            let now = tc.time;
            self.tick(&mut tc);
            if self.active.is_some() {
                if now < self.busy_until {
                    ctx.sleep_until(Some(self.busy_until));
                } else {
                    // Held past the data phase: every further cycle counts
                    // an idle wait — keep ticking so the stat stays exact.
                    continue;
                }
            } else {
                // Un-held bus: a grant needs a new request (watched) or
                // target wire space (frees only across windows).
                ctx.sleep_until(None);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_kernel::Simulation;
    use mpsoc_protocol::testing::{FixedLatencyTarget, ScriptedInitiator};
    use mpsoc_protocol::{InitiatorId, Transaction};

    const CLK_MHZ: u64 = 200;

    fn read(init: u16, seq: u64, addr: u64, beats: u32) -> Transaction {
        Transaction::builder(InitiatorId::new(init), seq)
            .read(addr)
            .beats(beats)
            .width(DataWidth::BITS32)
            .build()
    }

    struct Rig {
        sim: Simulation<Packet>,
        clk: ClockDomain,
        bus: Option<AhbBus>,
    }

    impl Rig {
        fn new() -> Self {
            let clk = ClockDomain::from_mhz(CLK_MHZ);
            Rig {
                sim: Simulation::new(),
                clk,
                bus: Some(AhbBus::new("ahb", AhbBusConfig::default(), clk)),
            }
        }

        fn attach_initiator(&mut self, name: &str, script: Vec<Transaction>) -> (LinkId, LinkId) {
            let req = self
                .sim
                .links_mut()
                .add_link(format!("{name}.req"), 2, self.clk.period());
            let resp = self
                .sim
                .links_mut()
                .add_link(format!("{name}.resp"), 2, self.clk.period());
            self.bus.as_mut().unwrap().add_initiator(req, resp);
            self.sim.add_component(
                Box::new(ScriptedInitiator::new(name, req, resp, script, 4)),
                self.clk,
            );
            (req, resp)
        }

        fn attach_target(&mut self, name: &str, range: AddressRange, ws: u32) -> (LinkId, LinkId) {
            let req = self
                .sim
                .links_mut()
                .add_link(format!("{name}.req"), 2, self.clk.period());
            let resp = self
                .sim
                .links_mut()
                .add_link(format!("{name}.resp"), 2, self.clk.period());
            let t = self.bus.as_mut().unwrap().add_target(req, resp);
            self.bus.as_mut().unwrap().add_route(range, t).unwrap();
            self.sim.add_component(
                Box::new(FixedLatencyTarget::new(name, self.clk, req, resp, ws)),
                self.clk,
            );
            (req, resp)
        }

        fn finish(&mut self) {
            let bus = self.bus.take().expect("finish called once");
            self.sim.add_component(Box::new(bus), self.clk);
        }
    }

    #[test]
    fn single_read_completes() {
        let mut rig = Rig::new();
        rig.attach_initiator("i0", vec![read(0, 1, 0x100, 4)]);
        rig.attach_target("t0", AddressRange::new(0, 1 << 20), 1);
        rig.finish();
        rig.sim
            .run_to_quiescence_strict(Time::from_us(100))
            .expect("drains");
        assert_eq!(rig.sim.stats().counter_by_name("ahb.granted"), 1);
    }

    /// Non-split behaviour: with two slow targets, AHB cannot overlap the
    /// two initiators' transactions — unlike a split bus, adding a second
    /// target does not help.
    #[test]
    fn non_split_bus_cannot_overlap_targets() {
        let run = |two_targets: bool| -> Time {
            let mut rig = Rig::new();
            rig.attach_initiator("i0", (0..5).map(|s| read(0, s, 0x100, 4)).collect());
            rig.attach_initiator(
                "i1",
                (0..5)
                    .map(|s| read(1, s, if two_targets { 0x10_0100 } else { 0x100 }, 4))
                    .collect(),
            );
            rig.attach_target("t0", AddressRange::new(0, 1 << 20), 6);
            rig.attach_target("t1", AddressRange::new(1 << 20, 1 << 21), 6);
            rig.finish();
            rig.sim
                .run_to_quiescence_strict(Time::from_ms(10))
                .expect("drains")
        };
        let one = run(false);
        let two = run(true);
        // The second target absorbs no contention: execution time barely
        // moves (only the target-side service pipelining differs slightly).
        let ratio = two.as_ps() as f64 / one.as_ps() as f64;
        assert!(
            ratio > 0.9,
            "non-split bus should not gain from a second target, ratio {ratio}"
        );
    }

    /// The bus is held during target wait states (idle waits accumulate).
    #[test]
    fn wait_states_hold_the_bus() {
        let mut rig = Rig::new();
        rig.attach_initiator("i0", vec![read(0, 1, 0x100, 2)]);
        rig.attach_target("t0", AddressRange::new(0, 1 << 20), 20);
        rig.finish();
        rig.sim
            .run_to_quiescence_strict(Time::from_ms(1))
            .expect("drains");
        assert!(rig.sim.stats().counter_by_name("ahb.idle_waits") > 10);
    }

    /// Posted writes are bus-terminated: the target ack is consumed by the
    /// bus and the master sees no response, yet the bus was held for the
    /// full write duration.
    #[test]
    fn posted_writes_are_bus_terminated() {
        let mut rig = Rig::new();
        let script = vec![Transaction::builder(InitiatorId::new(0), 1)
            .write(0x100)
            .beats(4)
            .width(DataWidth::BITS32)
            .posted(true)
            .build()];
        let (_, i_resp) = rig.attach_initiator("i0", script);
        rig.attach_target("t0", AddressRange::new(0, 1 << 20), 1);
        rig.finish();
        rig.sim
            .run_to_quiescence_strict(Time::from_us(100))
            .expect("drains");
        assert_eq!(rig.sim.links().link(i_resp).stats().pushes, 0);
        assert_eq!(rig.sim.stats().counter_by_name("ahb.granted"), 1);
    }

    /// Bus utilisation accounting: grant-to-completion time is charged.
    #[test]
    fn busy_time_accounts_grant_to_completion() {
        let mut rig = Rig::new();
        rig.attach_initiator("i0", vec![read(0, 1, 0x100, 4)]);
        rig.attach_target("t0", AddressRange::new(0, 1 << 20), 1);
        rig.finish();
        let end = rig
            .sim
            .run_to_quiescence_strict(Time::from_us(100))
            .expect("drains");
        let busy = rig.sim.stats().counter_by_name("ahb.busy_ps");
        assert!(busy > 0);
        assert!(busy <= end.as_ps());
    }

    /// Fixed-priority arbitration favours the higher-priority master.
    #[test]
    fn priority_arbitration() {
        let mut rig = Rig::new();
        let low: Vec<Transaction> = (0..4).map(|s| read(0, s, 0x100, 4)).collect();
        let high: Vec<Transaction> = (0..4)
            .map(|s| {
                let mut t = read(1, s, 0x200, 4);
                t.priority = 7;
                t
            })
            .collect();
        rig.attach_initiator("low", low);
        rig.attach_initiator("high", high);
        rig.attach_target("t0", AddressRange::new(0, 1 << 20), 4);
        rig.finish();
        // After a settling cycle both have pending heads; the high-priority
        // master should win the majority of early grants. Run to completion
        // and compare first-completion times via the response links.
        rig.sim
            .run_to_quiescence_strict(Time::from_ms(1))
            .expect("drains");
        assert_eq!(rig.sim.stats().counter_by_name("ahb.granted"), 8);
    }

    /// Back-to-back transactions on an idle target: early grant keeps the
    /// response channel at its efficiency ceiling (no handover bubbles).
    #[test]
    fn no_handover_bubble_between_bursts() {
        let mut rig = Rig::new();
        let n = 10u64;
        let beats = 4u32;
        rig.attach_initiator("i0", (0..n).map(|s| read(0, s, 0x100, beats)).collect());
        rig.attach_target("t0", AddressRange::new(0, 1 << 20), 1);
        rig.finish();
        let end = rig
            .sim
            .run_to_quiescence_strict(Time::from_ms(1))
            .expect("drains");
        let period = rig.clk.period();
        let cycles = end.as_ps() / period.as_ps();
        // Per transaction: ~beats*(1+ws) service cycles + small constant
        // pipeline overhead; with early grant the steady-state cost per
        // transaction must stay close to the service time.
        let per_txn = cycles as f64 / n as f64;
        assert!(
            per_txn < 14.0,
            "expected < 14 cycles per 4-beat transaction, got {per_txn}"
        );
    }
}
