//! DSE determinism properties: across seeds, the search must produce
//! byte-identical Pareto tables at any `--jobs`, and a checkpointed,
//! interrupted, resumed search must reproduce the uninterrupted run
//! exactly.

use mpsoc_dse::{explore, DseConfig};
use proptest::prelude::*;
use std::path::PathBuf;

fn temp_checkpoint(tag: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mpsoc-dse-prop-{tag}-{}-{seed:x}.bin",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The rendered rung accounting and Pareto front are a pure function
    /// of the seed — `--jobs` must not leak into a single byte.
    #[test]
    fn front_is_byte_identical_across_jobs(seed in 0u64..10_000) {
        let serial = explore(&DseConfig {
            seed,
            ..DseConfig::default()
        })
        .expect("serial search runs")
        .to_string();
        let fanned = explore(&DseConfig {
            seed,
            jobs: 4,
            ..DseConfig::default()
        })
        .expect("parallel search runs")
        .to_string();
        prop_assert_eq!(serial, fanned);
    }

    /// Checkpoint mid-ladder, resume, and the result is byte-identical
    /// to never having stopped.
    #[test]
    fn resume_equals_uninterrupted(seed in 0u64..10_000, stop_after in 1u32..3) {
        let uninterrupted = explore(&DseConfig {
            seed,
            ..DseConfig::default()
        })
        .expect("uninterrupted search runs");
        let ckpt = temp_checkpoint("resume", seed);
        let stopped = explore(&DseConfig {
            seed,
            checkpoint_path: Some(ckpt.clone()),
            stop_after: Some(stop_after),
            ..DseConfig::default()
        })
        .expect("interrupted search runs");
        prop_assert!(stopped.stopped);
        prop_assert!(stopped.front.is_empty());
        let resumed = explore(&DseConfig {
            seed,
            checkpoint_path: Some(ckpt.clone()),
            resume: true,
            ..DseConfig::default()
        })
        .expect("resumed search runs");
        std::fs::remove_file(&ckpt).ok();
        prop_assert_eq!(uninterrupted.to_string(), resumed.to_string());
        prop_assert_eq!(uninterrupted.front.len(), resumed.front.len());
        for (a, b) in uninterrupted.front.iter().zip(&resumed.front) {
            prop_assert_eq!(a.candidate, b.candidate);
            prop_assert_eq!(a.score.throughput.to_bits(), b.score.throughput.to_bits());
            prop_assert_eq!(a.score.latency_ns.to_bits(), b.score.latency_ns.to_bits());
            prop_assert_eq!(a.score.cost, b.score.cost);
        }
    }
}
