//! Candidate → platform construction.
//!
//! Every candidate is instantiated against the same 8-initiator /
//! 4-memory workload shell used by the EXT-NOC experiment, so that
//! scores are comparable across fabric families. The bus families are
//! wired through [`PlatformBuilder`] (this search is deliberately a
//! stress-test of that API); the mesh is wired through the builder's
//! raw-simulation escape hatch because the mesh attaches through
//! network interfaces, not bus ports.

use crate::space::{Candidate, FabricFamily, INITIATORS, TARGETS};
use mpsoc_bridge::BridgeConfig;
use mpsoc_kernel::{ClockDomain, SimResult, Simulation};
use mpsoc_memory::{LmiConfig, OnChipMemory, OnChipMemoryConfig};
use mpsoc_noc::{Mesh, NocConfig};
use mpsoc_platform::{BusHandle, BusSpec, Platform, PlatformBuilder};
use mpsoc_protocol::{AddressRange, DataWidth, InitiatorId, Packet, ProtocolKind};
use mpsoc_stbus::{ChannelTopology, StbusNodeConfig};
use mpsoc_traffic::{
    AddressPattern, AgentConfig, IpTrafficGenerator, IptgConfig, TraceDrivenGenerator, TraceEntry,
    TrafficSegment,
};

/// Base address of the memory map (mirrors the platform convention).
pub const MEM_BASE: u64 = 0x8000_0000;
/// Per-target address region length.
pub const REGION: u64 = 16 << 20;

const BUS_MHZ: u64 = 250;
const LMI_MHZ: u64 = 200;

/// The traffic bound to every candidate during evaluation.
#[derive(Debug, Clone)]
pub enum DseWorkload {
    /// The saturated many-to-many random workload of EXT-NOC
    /// (`60 * scale` transactions per initiator).
    Saturated,
    /// Explicit per-initiator IPTG configurations, applied round-robin;
    /// the initiator id is overridden for platform uniqueness.
    Iptg(Vec<IptgConfig>),
    /// Trace-driven replay: per-initiator entry streams, applied
    /// round-robin.
    Trace(Vec<Vec<TraceEntry>>),
}

impl DseWorkload {
    /// Stable label for tables and ledger rows.
    pub fn label(&self) -> &'static str {
        match self {
            DseWorkload::Saturated => "saturated",
            DseWorkload::Iptg(_) => "iptg",
            DseWorkload::Trace(_) => "trace",
        }
    }
}

fn saturated_cfg(i: usize, scale: u64, seed: u64) -> IptgConfig {
    let t = i % TARGETS;
    let base = MEM_BASE + t as u64 * REGION;
    IptgConfig {
        initiator: InitiatorId::new(i as u16),
        width: DataWidth::BITS64,
        seed: seed ^ (0x77 + i as u64),
        agents: vec![AgentConfig {
            name: "load".into(),
            pattern: AddressPattern::Random { base, len: REGION },
            read_fraction: 0.7,
            beats_choices: vec![4, 8],
            message_len: 1,
            max_outstanding: 4,
            posted_writes: true,
            blocking: false,
            priority: 0,
            segments: vec![TrafficSegment {
                transactions: 60 * scale,
                burst_len: (2, 6),
                think_cycles: (0, 4),
            }],
            start_after: None,
        }],
    }
}

/// Resolves the IPTG configuration of generator `i`, or `None` when the
/// workload is trace-driven.
fn iptg_cfg(workload: &DseWorkload, i: usize, scale: u64, seed: u64) -> Option<IptgConfig> {
    match workload {
        DseWorkload::Saturated => Some(saturated_cfg(i, scale, seed)),
        DseWorkload::Iptg(cfgs) => {
            let mut cfg = cfgs[i % cfgs.len()].clone();
            cfg.initiator = InitiatorId::new(i as u16);
            Some(cfg)
        }
        DseWorkload::Trace(_) => None,
    }
}

fn mem_range(t: usize) -> AddressRange {
    let base = MEM_BASE + t as u64 * REGION;
    AddressRange::new(base, base + REGION)
}

fn stbus_spec(topology: ChannelTopology) -> BusSpec {
    BusSpec::Stbus(StbusNodeConfig {
        protocol: ProtocolKind::StbusT3,
        topology,
        ..StbusNodeConfig::default()
    })
}

fn lmi_config(c: &Candidate) -> LmiConfig {
    LmiConfig {
        lookahead_depth: c.lmi_lookahead,
        opcode_merging: c.lmi_merging,
        ..LmiConfig::default()
    }
}

/// Attaches the four memories of the candidate to `bus`.
fn add_memories(b: &mut PlatformBuilder, bus: BusHandle, c: &Candidate) -> SimResult<()> {
    let bus_clk = b.bus_clock(bus);
    let lmi_clk = ClockDomain::from_mhz(LMI_MHZ);
    for t in 0..TARGETS {
        let name = format!("m{t}");
        if c.lmi {
            b.add_lmi(bus, &name, lmi_config(c), lmi_clk, mem_range(t))?;
        } else {
            // target_port (rather than add_on_chip_memory) so the
            // prefetch/response FIFO depth is a live knob.
            let iface = b.target_port(bus, &name, c.target_fifo, c.target_fifo, &[mem_range(t)])?;
            b.add_component(
                Box::new(OnChipMemory::new(
                    name,
                    OnChipMemoryConfig {
                        wait_states: c.wait_states,
                    },
                    bus_clk,
                    iface.req,
                    iface.resp,
                )),
                bus_clk,
            );
        }
    }
    Ok(())
}

/// Attaches generator `i` to `bus` under the candidate's issue FIFO.
fn add_generator(
    b: &mut PlatformBuilder,
    bus: BusHandle,
    c: &Candidate,
    workload: &DseWorkload,
    i: usize,
    scale: u64,
    seed: u64,
) -> SimResult<()> {
    let name = format!("g{i}");
    match iptg_cfg(workload, i, scale, seed) {
        Some(cfg) => b.add_iptg(bus, &name, cfg, c.issue_fifo),
        None => {
            let DseWorkload::Trace(traces) = workload else {
                unreachable!("iptg_cfg is None only for traces")
            };
            let clk = b.bus_clock(bus);
            let (req, resp) = b.initiator_port(bus, &name, c.issue_fifo);
            b.add_component(
                Box::new(TraceDrivenGenerator::new(
                    name,
                    InitiatorId::new(i as u16),
                    DataWidth::BITS64,
                    clk,
                    req,
                    resp,
                    traces[i % traces.len()].clone(),
                    4,
                )),
                clk,
            );
            Ok(())
        }
    }
}

fn build_shared(
    c: &Candidate,
    workload: &DseWorkload,
    scale: u64,
    seed: u64,
) -> SimResult<Platform> {
    let clk = ClockDomain::from_mhz(BUS_MHZ);
    let mut b = PlatformBuilder::new(seed);
    let bus = b.add_bus("fabric", stbus_spec(ChannelTopology::SharedBus), clk);
    add_memories(&mut b, bus, c)?;
    for i in 0..INITIATORS {
        add_generator(&mut b, bus, c, workload, i, scale, seed)?;
    }
    Ok(b.finish(clk))
}

fn build_partial_xbar(
    c: &Candidate,
    workload: &DseWorkload,
    scale: u64,
    seed: u64,
) -> SimResult<Platform> {
    let clk = ClockDomain::from_mhz(BUS_MHZ);
    let mut b = PlatformBuilder::new(seed);
    let xbar = b.add_bus("xbar", stbus_spec(ChannelTopology::FullCrossbar), clk);
    add_memories(&mut b, xbar, c)?;
    let whole = AddressRange::new(MEM_BASE, MEM_BASE + TARGETS as u64 * REGION);
    let bridge = if c.split_bridge {
        BridgeConfig::genconv()
    } else {
        BridgeConfig::lightweight()
    };
    for cluster in 0..2 {
        let cbus = b.add_bus(
            format!("cluster{cluster}"),
            stbus_spec(ChannelTopology::SharedBus),
            clk,
        );
        b.add_bridge(&format!("br{cluster}"), bridge, cbus, xbar, &[whole])?;
        for g in 0..INITIATORS / 2 {
            let i = cluster * (INITIATORS / 2) + g;
            add_generator(&mut b, cbus, c, workload, i, scale, seed)?;
        }
    }
    Ok(b.finish(clk))
}

fn build_mesh(c: &Candidate, workload: &DseWorkload, scale: u64, seed: u64) -> SimResult<Platform> {
    let clk = ClockDomain::from_mhz(BUS_MHZ);
    let mut b = PlatformBuilder::new(seed);
    let sim: &mut Simulation<Packet> = b.sim_mut();
    let mut mesh = Mesh::new(
        "noc",
        NocConfig {
            width: DataWidth::BITS64,
            port_fifo_depth: c.target_fifo,
            hop_cycles: 1,
        },
        clk,
        4,
        3,
    );
    let invalid = |e: mpsoc_noc::MeshError| mpsoc_kernel::SimError::InvalidConfig {
        reason: e.to_string(),
    };
    // Memories in the middle row, initiators along the outer rows — the
    // EXT-NOC floorplan.
    let lmi_clk = ClockDomain::from_mhz(LMI_MHZ);
    let target_spots = [(0u32, 1u32), (1, 1), (2, 1), (3, 1)];
    for (t, (x, y)) in target_spots.iter().enumerate() {
        let iface = mesh
            .attach_target(sim.links_mut(), *x, *y, mem_range(t))
            .map_err(invalid)?;
        if c.lmi {
            sim.add_component(
                Box::new(mpsoc_memory::LmiController::new(
                    format!("m{t}"),
                    lmi_config(c),
                    lmi_clk,
                    iface.req,
                    iface.resp,
                )),
                lmi_clk,
            );
        } else {
            sim.add_component(
                Box::new(OnChipMemory::new(
                    format!("m{t}"),
                    OnChipMemoryConfig {
                        wait_states: c.wait_states,
                    },
                    clk,
                    iface.req,
                    iface.resp,
                )),
                clk,
            );
        }
    }
    let initiator_spots = [
        (0u32, 0u32),
        (1, 0),
        (2, 0),
        (3, 0),
        (0, 2),
        (1, 2),
        (2, 2),
        (3, 2),
    ];
    for (i, (x, y)) in initiator_spots.iter().enumerate() {
        let (req, resp) = mesh
            .try_attach_initiator(sim.links_mut(), *x, *y)
            .map_err(invalid)?;
        let name = format!("g{i}");
        match iptg_cfg(workload, i, scale, seed) {
            Some(cfg) => {
                let gen = IpTrafficGenerator::new(name, cfg, req, resp).map_err(|e| {
                    mpsoc_kernel::SimError::InvalidConfig {
                        reason: e.to_string(),
                    }
                })?;
                sim.add_component(Box::new(gen), clk);
            }
            None => {
                let DseWorkload::Trace(traces) = workload else {
                    unreachable!("iptg_cfg is None only for traces")
                };
                sim.add_component(
                    Box::new(TraceDrivenGenerator::new(
                        name,
                        InitiatorId::new(i as u16),
                        DataWidth::BITS64,
                        clk,
                        req,
                        resp,
                        traces[i % traces.len()].clone(),
                        4,
                    )),
                    clk,
                );
            }
        }
    }
    for router in mesh.build(sim.links_mut()) {
        sim.add_component(router, clk);
    }
    Ok(b.finish(clk))
}

/// Instantiates `candidate` against `workload` as a runnable platform.
///
/// The simulation seed, the generator streams and all structure are pure
/// functions of `(candidate, workload, scale, seed)`, so two builds of
/// the same tuple are byte-identical (checked by the platform's
/// structural fingerprint during search).
///
/// # Errors
///
/// Fails if the candidate wires an invalid configuration — which the
/// normalized space should never produce; such an error is a bug worth
/// surfacing, not skipping.
pub fn build_candidate(
    candidate: &Candidate,
    workload: &DseWorkload,
    scale: u64,
    seed: u64,
) -> SimResult<Platform> {
    match candidate.family {
        FabricFamily::SharedStbus => build_shared(candidate, workload, scale, seed),
        FabricFamily::PartialCrossbar => build_partial_xbar(candidate, workload, scale, seed),
        FabricFamily::NocMesh => build_mesh(candidate, workload, scale, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::sample_generation;
    use mpsoc_kernel::Time;
    use mpsoc_protocol::Opcode;

    #[test]
    fn every_sampled_candidate_builds_and_runs() {
        for c in sample_generation(24, 0x5eed) {
            let mut p = build_candidate(&c, &DseWorkload::Saturated, 1, 0x0dab)
                .unwrap_or_else(|e| panic!("{c} failed to build: {e}"));
            p.sim_mut().run_until(Time::from_us(2));
            assert!(p.sim().ticks_executed() > 0, "{c} never ticked");
        }
    }

    #[test]
    fn builds_are_structurally_reproducible() {
        for c in sample_generation(6, 9) {
            let a = build_candidate(&c, &DseWorkload::Saturated, 1, 1).expect("builds");
            let b = build_candidate(&c, &DseWorkload::Saturated, 1, 1).expect("builds");
            assert_eq!(
                a.structural_fingerprint(),
                b.structural_fingerprint(),
                "{c} not reproducible"
            );
        }
    }

    #[test]
    fn trace_workload_builds_on_every_family() {
        let trace: Vec<TraceEntry> = (0..40)
            .map(|k| TraceEntry {
                delay_cycles: k % 3,
                opcode: if k % 4 == 0 {
                    Opcode::Write
                } else {
                    Opcode::Read
                },
                addr: MEM_BASE + (k * 64) % (TARGETS as u64 * REGION),
                beats: 4,
                posted: k % 4 == 0,
            })
            .collect();
        let workload = DseWorkload::Trace(vec![trace]);
        for c in sample_generation(6, 2) {
            let mut p = build_candidate(&c, &workload, 1, 3)
                .unwrap_or_else(|e| panic!("{c} failed to build: {e}"));
            p.sim_mut().run_until(Time::from_us(2));
            let injected: u64 = (0..INITIATORS)
                .map(|i| p.sim().stats().counter_by_name(&format!("g{i}.injected")))
                .sum();
            assert!(injected > 0, "{c} replayed nothing");
        }
    }
}
