//! The typed design space: candidate encoding, seeded sampling and the
//! static cost model.
//!
//! A [`Candidate`] is a complete communication-architecture configuration
//! for the fixed 8-initiator / 4-memory workload shell: a fabric family
//! (shared STBus, partial crossbar, NoC mesh), the bridge blockingness of
//! the partial crossbar, the buffer depths of every interface, the memory
//! wait states and the LMI controller settings. Fields that do not apply
//! to a family are *normalized* to canonical values so that every distinct
//! candidate has exactly one encoding — which makes deduplication, the
//! frontier checkpoint and the Pareto table deterministic.

use mpsoc_kernel::SplitMix64;
use std::fmt;

/// Number of traffic initiators every candidate platform carries.
pub const INITIATORS: usize = 8;

/// Number of memory targets (one address region each).
pub const TARGETS: usize = 4;

/// Data-path width of every fabric, in bits (all candidates are 64-bit).
pub const WIDTH_BITS: u64 = 64;

/// The transport fabric family of a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FabricFamily {
    /// One shared STBus node carrying all initiators and memories.
    SharedStbus,
    /// Two shared cluster buses bridged into a central full crossbar that
    /// hosts the memories — the application-specific "partial crossbar"
    /// arrangement of Murali & De Micheli, modelled compositionally.
    PartialCrossbar,
    /// A 4x3 mesh NoC with memories in the middle row and initiators on
    /// the outer rows.
    NocMesh,
}

impl FabricFamily {
    /// All families, in sampling (round-robin) order.
    pub const ALL: [FabricFamily; 3] = [
        FabricFamily::SharedStbus,
        FabricFamily::PartialCrossbar,
        FabricFamily::NocMesh,
    ];

    /// Stable short label used in tables and the frontier encoding.
    pub fn label(self) -> &'static str {
        match self {
            FabricFamily::SharedStbus => "shared-stbus",
            FabricFamily::PartialCrossbar => "partial-xbar",
            FabricFamily::NocMesh => "noc-mesh",
        }
    }

    /// Stable numeric tag for the frontier encoding.
    pub fn tag(self) -> u8 {
        match self {
            FabricFamily::SharedStbus => 0,
            FabricFamily::PartialCrossbar => 1,
            FabricFamily::NocMesh => 2,
        }
    }

    /// Inverse of [`FabricFamily::tag`].
    pub fn from_tag(tag: u8) -> Option<FabricFamily> {
        FabricFamily::ALL.into_iter().find(|f| f.tag() == tag)
    }
}

/// One point of the design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Position in the generation; the deterministic identity used for
    /// tie-breaking and tables.
    pub index: u32,
    /// Transport fabric family.
    pub family: FabricFamily,
    /// Partial crossbar only: split-capable GenConv bridges (`true`) vs
    /// lightweight blocking bridges (`false`).
    pub split_bridge: bool,
    /// Initiator issue-FIFO depth (bus families; the mesh network
    /// interface depth is [`Candidate::target_fifo`]).
    pub issue_fifo: usize,
    /// Target-side FIFO depth: the prefetch/response FIFO of on-chip
    /// memories on a bus, or the per-port router FIFO of the mesh.
    pub target_fifo: usize,
    /// On-chip memory wait states (dead when `lmi`).
    pub wait_states: u32,
    /// Whether the memories sit behind LMI controllers + DDR SDRAM
    /// instead of being simple on-chip memories.
    pub lmi: bool,
    /// LMI optimization-engine lookahead depth (0 = strict FIFO).
    pub lmi_lookahead: usize,
    /// LMI opcode merging.
    pub lmi_merging: bool,
}

impl Candidate {
    /// Samples one candidate. The two dominant axes are stratified on the
    /// index — the family round-robins (every generation spans all
    /// families) and the memory system alternates per family lap (both
    /// on-chip and LMI memories appear under every family) — while every
    /// other knob comes from the seeded stream. The result is normalized.
    pub fn sample(index: u32, rng: &mut SplitMix64) -> Candidate {
        let families = FabricFamily::ALL.len() as u32;
        let mut c = Candidate {
            index,
            family: FabricFamily::ALL[index as usize % FabricFamily::ALL.len()],
            split_bridge: rng.next_u64() & 1 == 1,
            issue_fifo: 1 << rng.range(1, 4),  // {2, 4, 8}
            target_fifo: 1 << rng.range(0, 3), // {1, 2, 4}
            wait_states: 1 << rng.range(0, 4), // {1, 2, 4, 8}
            lmi: (index / families) % 2 == 1,
            lmi_lookahead: 2 * rng.range(0, 3) as usize, // {0, 2, 4}
            lmi_merging: rng.next_u64() & 1 == 1,
        };
        c.normalize();
        c
    }

    /// Forces every dead knob to its canonical value, so that two
    /// candidates that build identical platforms encode identically.
    pub fn normalize(&mut self) {
        if self.family != FabricFamily::PartialCrossbar {
            self.split_bridge = false;
        }
        if self.family == FabricFamily::NocMesh {
            // Mesh network interfaces use the router port FIFO, not the
            // issue FIFO.
            self.issue_fifo = 2;
            // A depth-1 router FIFO cannot hold a full header+payload flit
            // pair in flight; keep the mesh in its safe operating range.
            self.target_fifo = self.target_fifo.max(2);
        }
        if self.lmi {
            // The LMI brings its own input/output FIFOs and SDRAM timing;
            // the on-chip knobs are dead. (The mesh keeps its router FIFO
            // depth — that knob is fabric-side, not memory-side.)
            self.wait_states = 1;
            if self.family != FabricFamily::NocMesh {
                self.target_fifo = 1;
            }
        } else {
            self.lmi_lookahead = 0;
            self.lmi_merging = false;
        }
    }

    /// The canonical dedup key: every knob except the index.
    pub fn key(&self) -> (u8, bool, usize, usize, u32, bool, usize, bool) {
        (
            self.family.tag(),
            self.split_bridge,
            self.issue_fifo,
            self.target_fifo,
            self.wait_states,
            self.lmi,
            self.lmi_lookahead,
            self.lmi_merging,
        )
    }

    /// Static implementation cost of the candidate: fabric links plus
    /// buffer bits. Links count the directed request/response channel
    /// pairs the fabric wires (attachment ports, bridge hops, crossbar
    /// channels, inter-router mesh links); buffer bits multiply every FIFO
    /// the configuration instantiates by the 64-bit data-path width.
    pub fn cost(&self) -> u64 {
        let i = INITIATORS as u64;
        let t = TARGETS as u64;
        let (links, fabric_fifo_slots) = match self.family {
            // One node: a port pair per initiator and per target.
            FabricFamily::SharedStbus => (i + t, 0),
            // Two cluster buses (4 initiator ports + 1 bridge target port
            // each), two bridges, a crossbar with 2 initiator ports,
            // `t` target ports and a full 2 x t channel matrix.
            FabricFamily::PartialCrossbar => {
                let bridge_fifo = if self.split_bridge { 8 + 8 } else { 1 + 1 };
                (i + 2 + 2 + t + 2 * t, 2 * bridge_fifo)
            }
            // 4x3 mesh: 17 bidirectional inter-router links (2 directed
            // channels each) plus a network-interface pair per attached
            // node; every router buffers 5 ports.
            FabricFamily::NocMesh => {
                let routers = 12u64;
                (2 * 17 + i + t, routers * 5 * self.target_fifo as u64)
            }
        };
        let memory_fifo_slots = if self.lmi {
            // LMI input (8) + output (8) FIFOs plus the lookahead window
            // registers, per controller.
            t * (8 + 8 + self.lmi_lookahead as u64)
        } else {
            t * 2 * self.target_fifo as u64
        };
        let issue_slots = i * 2 * self.issue_fifo as u64;
        links * WIDTH_BITS + (fabric_fifo_slots + memory_fifo_slots + issue_slots) * WIDTH_BITS
    }

    /// Compact deterministic configuration summary for the Pareto table.
    pub fn summary(&self) -> String {
        let mem = if self.lmi {
            format!(
                "lmi la{} {}",
                self.lmi_lookahead,
                if self.lmi_merging { "mrg" } else { "raw" }
            )
        } else {
            format!("ws{}", self.wait_states)
        };
        let bridge = match self.family {
            FabricFamily::PartialCrossbar => {
                if self.split_bridge {
                    " split"
                } else {
                    " blk"
                }
            }
            _ => "",
        };
        format!(
            "f{}/{}{} {}",
            self.issue_fifo, self.target_fifo, bridge, mem
        )
    }
}

impl fmt::Display for Candidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {} {}",
            self.index,
            self.family.label(),
            self.summary()
        )
    }
}

/// Samples a generation of `count` normalized candidates, deduplicating
/// exact repeats (the survivor keeps the lowest index, so the population
/// and its order are a pure function of the seed).
pub fn sample_generation(count: usize, seed: u64) -> Vec<Candidate> {
    let mut rng = SplitMix64::new(seed ^ 0x5eed_d5e0_0000_0001);
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::with_capacity(count);
    let mut index = 0u32;
    // Draw until `count` distinct candidates exist; the space is far
    // larger than any generation, so the bounded extra draws are a
    // formality that keeps the loop finite under adversarial seeds.
    let mut draws = 0usize;
    while out.len() < count && draws < count * 32 {
        let c = Candidate::sample(index, &mut rng);
        draws += 1;
        if seen.insert(c.key()) {
            index += 1;
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_distinct() {
        let a = sample_generation(12, 7);
        let b = sample_generation(12, 7);
        assert_eq!(a, b);
        let keys: std::collections::BTreeSet<_> = a.iter().map(|c| c.key()).collect();
        assert_eq!(keys.len(), a.len());
    }

    #[test]
    fn generations_span_all_families() {
        let g = sample_generation(9, 0x0dab);
        for family in FabricFamily::ALL {
            assert!(
                g.iter().any(|c| c.family == family),
                "family {} missing",
                family.label()
            );
        }
    }

    #[test]
    fn normalization_kills_dead_knobs() {
        let mut rng = SplitMix64::new(3);
        for index in 0..64 {
            let c = Candidate::sample(index, &mut rng);
            if c.family != FabricFamily::PartialCrossbar {
                assert!(!c.split_bridge);
            }
            if c.family == FabricFamily::NocMesh {
                assert_eq!(c.issue_fifo, 2);
                assert!(c.target_fifo >= 2);
            }
            if !c.lmi {
                assert_eq!(c.lmi_lookahead, 0);
                assert!(!c.lmi_merging);
            } else {
                assert_eq!(c.wait_states, 1);
            }
        }
    }

    #[test]
    fn cost_grows_with_buffering_and_parallelism() {
        let mut small = Candidate {
            index: 0,
            family: FabricFamily::SharedStbus,
            split_bridge: false,
            issue_fifo: 2,
            target_fifo: 1,
            wait_states: 1,
            lmi: false,
            lmi_lookahead: 0,
            lmi_merging: false,
        };
        small.normalize();
        let mut deep = small;
        deep.issue_fifo = 8;
        deep.target_fifo = 4;
        assert!(deep.cost() > small.cost());
        let mut mesh = small;
        mesh.family = FabricFamily::NocMesh;
        mesh.normalize();
        assert!(mesh.cost() > small.cost(), "the mesh wires more links");
    }

    #[test]
    fn family_tags_round_trip() {
        for family in FabricFamily::ALL {
            assert_eq!(FabricFamily::from_tag(family.tag()), Some(family));
        }
        assert_eq!(FabricFamily::from_tag(9), None);
    }
}
