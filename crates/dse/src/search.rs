//! Seeded successive halving over the design space.
//!
//! A generation of candidates is raced at a small simulated-time budget
//! with the loosely-timed fast-forward gear, the top fraction (by Pareto
//! rank) is promoted to a doubled cycle-accurate budget, and the
//! finalists run to quiescence. Each evaluation ends in a warm
//! checkpoint, so a promotion resumes the candidate's simulation from
//! where the previous rung left it instead of replaying from reset —
//! the same warm-fork discipline the FIG-4 sweep uses, applied across
//! budget rungs.
//!
//! Everything observable (scores, cuts, rung accounting, the final
//! front) is a pure function of `(seed, scale, workload)`: evaluations
//! fan out through `parallel_map`, which preserves input order, and all
//! frontier mutation happens after collection, so any `--jobs` value
//! produces byte-identical results.

use crate::build::{build_candidate, DseWorkload};
use crate::frontier::{Frontier, FrontierEntry, RungStats};
use crate::pareto::{promotion_order, Score};
use crate::space::{sample_generation, Candidate, INITIATORS};
use mpsoc_kernel::{Fidelity, RunOutcome, SimResult, Simulation, SnapshotBlob, Time};
use mpsoc_platform::experiments::parallel_map;
use mpsoc_protocol::Packet;
use std::path::Path;

/// Horizon of the final run-to-quiescence rung; a candidate that stalls
/// scores its (poor) progress at this point instead of erroring out.
const FINAL_HORIZON: Time = Time::from_ms(60);

/// Rung-0 budget per unit of scale, in nanoseconds (doubles every rung).
const BASE_BUDGET_NS: u64 = 4_000;

/// Generation size for a given scale.
pub fn population_size(scale: u64) -> usize {
    9 + 3 * scale.max(1) as usize
}

/// Number of finalists that run to quiescence.
pub fn finalist_count(scale: u64) -> usize {
    (population_size(scale) / 3).max(4)
}

/// Simulated-time budget of rung `k`, or `None` for the final
/// run-to-quiescence rung.
fn rung_budget(scale: u64, rung: u32, is_final: bool) -> Option<Time> {
    (!is_final).then(|| Time::from_ns((BASE_BUDGET_NS * scale.max(1)) << rung))
}

/// Everything `explore` needs beyond the workload itself.
pub(crate) struct SearchParams<'a> {
    pub scale: u64,
    pub seed: u64,
    pub jobs: usize,
    pub workload: &'a DseWorkload,
    /// Save the frontier to this path every `checkpoint_every` rungs.
    pub checkpoint_path: Option<&'a Path>,
    pub checkpoint_every: Option<u32>,
    /// Stop (cleanly, with the frontier saved if a path is set) once
    /// this many rungs have completed — the mid-search interruption the
    /// resume-equality proof uses.
    pub stop_after: Option<u32>,
}

/// What one rung's evaluation of one candidate produced.
struct EvalOutput {
    score: Score,
    warm: Option<SnapshotBlob>,
    ticks: u64,
}

fn score_of(sim: &Simulation<Packet>, elapsed: Time, cost: u64) -> Score {
    let stats = sim.stats();
    let mut completed = 0u64;
    let mut lat_weighted = 0.0f64;
    let mut lat_count = 0u64;
    let mut p95 = 0u64;
    for i in 0..INITIATORS {
        completed += stats.counter_by_name(&format!("g{i}.completed"));
        if let Some(h) = stats.histogram_by_name(&format!("g{i}.latency_ns")) {
            if h.count() > 0 {
                lat_weighted += h.mean() * h.count() as f64;
                lat_count += h.count();
                p95 = p95.max(h.percentile(0.95).unwrap_or(0));
            }
        }
    }
    let us = elapsed.as_ps() as f64 / 1e6;
    let throughput = if completed > 0 && us > 0.0 {
        completed as f64 / us
    } else {
        0.0
    };
    // A candidate that completed nothing must not look attractive on the
    // latency axis.
    let latency_ns = if completed == 0 {
        f64::INFINITY
    } else if lat_count > 0 {
        lat_weighted / lat_count as f64
    } else {
        0.0
    };
    Score {
        throughput,
        latency_ns,
        p95_ns: p95,
        completed,
        cost,
    }
}

/// Evaluates one candidate for one rung.
///
/// Rung 0 starts from reset in the fast gear (the race heuristic);
/// every later rung restores the candidate's warm checkpoint and
/// continues cycle-accurately. Non-final rungs end in a fresh warm
/// checkpoint for the next promotion.
fn eval_one(
    candidate: &Candidate,
    warm: Option<&SnapshotBlob>,
    workload: &DseWorkload,
    scale: u64,
    seed: u64,
    budget: Option<Time>,
) -> SimResult<EvalOutput> {
    let mut platform = build_candidate(candidate, workload, scale, seed)?;
    let sim = platform.sim_mut();
    match warm {
        Some(blob) => {
            sim.restore(blob)?;
            sim.set_fidelity(Fidelity::Cycle);
        }
        // The fast gear is only for the budgeted race from reset; a final
        // rung that somehow starts cold stays cycle-accurate.
        None if budget.is_some() => sim.set_fidelity(Fidelity::fast()),
        None => sim.set_fidelity(Fidelity::Cycle),
    }
    let begin_ticks = sim.ticks_executed();
    let elapsed = match budget {
        Some(horizon) => {
            sim.run_until(horizon);
            // Shift back to the cycle gear before checkpointing so the
            // next rung continues cycle-accurately from a settled state.
            sim.set_fidelity(Fidelity::Cycle);
            horizon.max(sim.time())
        }
        None => match sim.run_to_quiescence(FINAL_HORIZON) {
            RunOutcome::Quiescent { at } => at,
            RunOutcome::HorizonReached { at } => at,
        },
    };
    let ticks = sim.ticks_executed() - begin_ticks;
    let warm = budget.is_some().then(|| sim.checkpoint());
    let score = score_of(platform.sim(), elapsed, candidate.cost());
    Ok(EvalOutput { score, warm, ticks })
}

/// Seeds a fresh frontier for `(scale, seed, workload)`.
pub(crate) fn seed_frontier(scale: u64, seed: u64, workload: &DseWorkload) -> Frontier {
    let entries = sample_generation(population_size(scale), seed)
        .into_iter()
        .map(|candidate| FrontierEntry {
            candidate,
            alive: true,
            score: None,
            warm: None,
        })
        .collect();
    Frontier {
        seed,
        scale,
        workload: workload.label().to_owned(),
        next_rung: 0,
        rungs: Vec::new(),
        entries,
    }
}

/// Runs the successive-halving ladder on `frontier` until the finalists
/// have run to quiescence (returns `false`) or `stop_after` interrupted
/// it mid-search (returns `true`).
///
/// # Errors
///
/// Propagates platform build/restore failures and checkpoint-file I/O
/// errors.
pub(crate) fn run_search(frontier: &mut Frontier, params: &SearchParams<'_>) -> SimResult<bool> {
    let finalists = finalist_count(params.scale);
    loop {
        let alive: Vec<usize> = (0..frontier.entries.len())
            .filter(|&i| frontier.entries[i].alive)
            .collect();
        let is_final = alive.len() <= finalists;
        if is_final && frontier.rungs.last().is_some_and(|r| r.budget_ps == 0) {
            return Ok(false); // the quiescence rung already ran
        }
        if let Some(limit) = params.stop_after {
            if frontier.next_rung >= limit {
                if let Some(path) = params.checkpoint_path {
                    save_frontier(frontier, path)?;
                }
                return Ok(true);
            }
        }
        let budget = rung_budget(params.scale, frontier.next_rung, is_final);

        let inputs: Vec<(usize, Candidate, Option<SnapshotBlob>)> = alive
            .iter()
            .map(|&i| {
                let e = &frontier.entries[i];
                (i, e.candidate, e.warm.clone())
            })
            .collect();
        let outputs = parallel_map(inputs, params.jobs, |(slot, candidate, warm)| {
            let out = eval_one(
                &candidate,
                warm.as_ref(),
                params.workload,
                params.scale,
                params.seed,
                budget,
            )?;
            Ok::<_, mpsoc_kernel::SimError>((slot, out))
        });

        let mut sim_ticks = 0u64;
        for result in outputs {
            let (slot, out) = result?;
            sim_ticks += out.ticks;
            let entry = &mut frontier.entries[slot];
            entry.score = Some(out.score);
            entry.warm = out.warm;
        }

        let survivors = if is_final {
            alive.len()
        } else {
            let scores: Vec<Score> = alive
                .iter()
                .map(|&i| frontier.entries[i].score.expect("just evaluated"))
                .collect();
            let ids: Vec<u32> = alive
                .iter()
                .map(|&i| frontier.entries[i].candidate.index)
                .collect();
            let keep = alive.len().div_ceil(2).max(finalists).min(alive.len());
            let order = promotion_order(&scores, &ids);
            // Diversity preservation: the best-ranked candidate of every
            // fabric family survives the cut, so the finalists (and the
            // front) always span the families still in the race; the
            // remaining slots go to the global promotion order.
            let mut promoted = vec![false; alive.len()];
            let mut taken = 0usize;
            let mut families_seen = [false; 3];
            for &pos in &order {
                let fam = frontier.entries[alive[pos]].candidate.family.tag() as usize;
                if taken < keep && !families_seen[fam] {
                    families_seen[fam] = true;
                    promoted[pos] = true;
                    taken += 1;
                }
            }
            for &pos in &order {
                if taken >= keep {
                    break;
                }
                if !promoted[pos] {
                    promoted[pos] = true;
                    taken += 1;
                }
            }
            for (pos, keep_it) in promoted.iter().enumerate() {
                if !keep_it {
                    let entry = &mut frontier.entries[alive[pos]];
                    entry.alive = false;
                    entry.warm = None; // eliminated candidates free their checkpoint
                }
            }
            keep
        };

        frontier.rungs.push(RungStats {
            budget_ps: budget.map_or(0, Time::as_ps),
            population: alive.len() as u32,
            survivors: survivors as u32,
            sim_ticks,
        });
        frontier.next_rung += 1;

        if let (Some(path), Some(every)) = (params.checkpoint_path, params.checkpoint_every) {
            if every > 0 && frontier.next_rung.is_multiple_of(every) {
                save_frontier(frontier, path)?;
            }
        }
        if is_final {
            return Ok(false);
        }
    }
}

fn save_frontier(frontier: &Frontier, path: &Path) -> SimResult<()> {
    frontier
        .save(path)
        .map_err(|e| mpsoc_kernel::SimError::InvalidConfig {
            reason: format!("writing DSE checkpoint {}: {e}", path.display()),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_shrinks_to_finalists_and_quiesces() {
        let workload = DseWorkload::Saturated;
        let mut frontier = seed_frontier(1, 0x0dab, &workload);
        let params = SearchParams {
            scale: 1,
            seed: 0x0dab,
            jobs: 1,
            workload: &workload,
            checkpoint_path: None,
            checkpoint_every: None,
            stop_after: None,
        };
        let stopped = run_search(&mut frontier, &params).expect("search runs");
        assert!(!stopped);
        let last = frontier.rungs.last().expect("ran rungs");
        assert_eq!(last.budget_ps, 0, "last rung runs to quiescence");
        assert!(frontier.rungs.len() >= 3, "ladder has at least two cuts");
        let alive = frontier.entries.iter().filter(|e| e.alive).count();
        assert_eq!(alive, finalist_count(1));
        for e in frontier.entries.iter().filter(|e| e.alive) {
            let s = e.score.expect("finalists are scored");
            assert!(s.completed > 0, "{} completed nothing", e.candidate);
        }
    }

    #[test]
    fn budgets_double_per_rung() {
        assert_eq!(rung_budget(1, 0, false), Some(Time::from_ns(4_000)));
        assert_eq!(rung_budget(1, 1, false), Some(Time::from_ns(8_000)));
        assert_eq!(rung_budget(2, 2, false), Some(Time::from_ns(32_000)));
        assert_eq!(rung_budget(2, 5, true), None);
    }
}
