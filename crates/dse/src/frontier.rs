//! The search frontier and its checkpoint encoding.
//!
//! The frontier is everything the successive-halving loop needs to
//! continue: the population with scores and aliveness, the warm
//! per-candidate simulation checkpoints, per-rung accounting and the
//! next rung to run. It serialises through the kernel's tagged
//! [`StateWriter`]/[`StateReader`] machinery, so a frontier file gets
//! the same magic/version/checksum armour as a simulation snapshot —
//! a truncated or corrupted file fails closed on load.

use crate::pareto::Score;
use crate::space::{Candidate, FabricFamily};
use mpsoc_kernel::{SnapshotBlob, SnapshotError, StateReader, StateWriter};

/// Frontier encoding version (bumped on layout changes).
pub const FRONTIER_VERSION: u32 = 1;

/// Accounting for one completed rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RungStats {
    /// Simulated-time budget of the rung in picoseconds (0 marks the
    /// final run-to-quiescence rung).
    pub budget_ps: u64,
    /// Candidates raced in the rung.
    pub population: u32,
    /// Candidates promoted out of the rung.
    pub survivors: u32,
    /// Kernel ticks executed across the rung's evaluations.
    pub sim_ticks: u64,
}

/// One population slot of the frontier.
#[derive(Debug, Clone)]
pub struct FrontierEntry {
    /// The design point.
    pub candidate: Candidate,
    /// Still racing (not yet eliminated by a promotion cut).
    pub alive: bool,
    /// Last measured score, if the entry has run at least one rung.
    pub score: Option<Score>,
    /// Warm simulation checkpoint at the end of the entry's last rung;
    /// promotions resume from here instead of replaying from reset.
    pub warm: Option<SnapshotBlob>,
}

/// The resumable state of a successive-halving search.
#[derive(Debug, Clone)]
pub struct Frontier {
    /// Search seed (must match on resume).
    pub seed: u64,
    /// Workload scale (must match on resume).
    pub scale: u64,
    /// Workload label (must match on resume).
    pub workload: String,
    /// Next rung index to execute.
    pub next_rung: u32,
    /// Accounting of the rungs already completed.
    pub rungs: Vec<RungStats>,
    /// The population, in sampling order.
    pub entries: Vec<FrontierEntry>,
}

fn write_blob(w: &mut StateWriter, blob: &SnapshotBlob) {
    let bytes = blob.as_bytes();
    w.write_usize(bytes.len());
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        w.write_u64(u64::from_le_bytes(word));
    }
}

fn read_blob(r: &mut StateReader<'_>) -> SnapshotBlob {
    let len = r.read_usize();
    let mut bytes = Vec::with_capacity(len);
    for _ in 0..len.div_ceil(8) {
        bytes.extend_from_slice(&r.read_u64().to_le_bytes());
    }
    bytes.truncate(len);
    SnapshotBlob::from_bytes(bytes)
}

fn write_score(w: &mut StateWriter, score: &Score) {
    w.write_u64(score.throughput.to_bits());
    w.write_u64(score.latency_ns.to_bits());
    w.write_u64(score.p95_ns);
    w.write_u64(score.completed);
    w.write_u64(score.cost);
}

fn read_score(r: &mut StateReader<'_>) -> Score {
    Score {
        throughput: f64::from_bits(r.read_u64()),
        latency_ns: f64::from_bits(r.read_u64()),
        p95_ns: r.read_u64(),
        completed: r.read_u64(),
        cost: r.read_u64(),
    }
}

impl Frontier {
    /// Serialises the frontier into a checksummed blob.
    pub fn to_blob(&self) -> SnapshotBlob {
        let mut w = StateWriter::new();
        w.section("dse-frontier");
        w.write_u32(FRONTIER_VERSION);
        w.write_u64(self.seed);
        w.write_u64(self.scale);
        w.write_str(&self.workload);
        w.write_u32(self.next_rung);
        w.section("rungs");
        w.write_usize(self.rungs.len());
        for r in &self.rungs {
            w.write_u64(r.budget_ps);
            w.write_u32(r.population);
            w.write_u32(r.survivors);
            w.write_u64(r.sim_ticks);
        }
        w.section("entries");
        w.write_usize(self.entries.len());
        for e in &self.entries {
            let c = &e.candidate;
            w.write_u32(c.index);
            w.write_u8(c.family.tag());
            w.write_bool(c.split_bridge);
            w.write_usize(c.issue_fifo);
            w.write_usize(c.target_fifo);
            w.write_u32(c.wait_states);
            w.write_bool(c.lmi);
            w.write_usize(c.lmi_lookahead);
            w.write_bool(c.lmi_merging);
            w.write_bool(e.alive);
            match &e.score {
                Some(s) => {
                    w.write_bool(true);
                    write_score(&mut w, s);
                }
                None => w.write_bool(false),
            }
            match &e.warm {
                Some(blob) => {
                    w.write_bool(true);
                    write_blob(&mut w, blob);
                }
                None => w.write_bool(false),
            }
        }
        w.finish()
    }

    /// Decodes a frontier blob.
    ///
    /// # Errors
    ///
    /// Fails on a corrupted blob, a wrong encoding version or trailing
    /// bytes.
    pub fn from_blob(blob: &SnapshotBlob) -> Result<Frontier, SnapshotError> {
        let mut r = StateReader::new(blob)?;
        r.expect_section("dse-frontier");
        let version = r.read_u32();
        if version != FRONTIER_VERSION {
            return Err(SnapshotError::Corrupt {
                at: 0,
                detail: format!("frontier version {version}, expected {FRONTIER_VERSION}"),
            });
        }
        let seed = r.read_u64();
        let scale = r.read_u64();
        let workload = r.read_str();
        let next_rung = r.read_u32();
        r.expect_section("rungs");
        let n_rungs = r.read_usize().min(1 << 16);
        let mut rungs = Vec::with_capacity(n_rungs);
        for _ in 0..n_rungs {
            rungs.push(RungStats {
                budget_ps: r.read_u64(),
                population: r.read_u32(),
                survivors: r.read_u32(),
                sim_ticks: r.read_u64(),
            });
        }
        r.expect_section("entries");
        let n_entries = r.read_usize().min(1 << 20);
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let index = r.read_u32();
            let family = FabricFamily::from_tag(r.read_u8()).unwrap_or(FabricFamily::SharedStbus);
            let candidate = Candidate {
                index,
                family,
                split_bridge: r.read_bool(),
                issue_fifo: r.read_usize(),
                target_fifo: r.read_usize(),
                wait_states: r.read_u32(),
                lmi: r.read_bool(),
                lmi_lookahead: r.read_usize(),
                lmi_merging: r.read_bool(),
            };
            let alive = r.read_bool();
            let score = if r.read_bool() {
                Some(read_score(&mut r))
            } else {
                None
            };
            let warm = if r.read_bool() {
                Some(read_blob(&mut r))
            } else {
                None
            };
            entries.push(FrontierEntry {
                candidate,
                alive,
                score,
                warm,
            });
        }
        r.finish()?;
        Ok(Frontier {
            seed,
            scale,
            workload,
            next_rung,
            rungs,
            entries,
        })
    }

    /// Writes the frontier to `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_blob().as_bytes())
    }

    /// Reads a frontier back from `path`.
    ///
    /// # Errors
    ///
    /// Fails on file-system errors or a corrupted/mismatched blob.
    pub fn load(path: &std::path::Path) -> std::io::Result<Frontier> {
        let bytes = std::fs::read(path)?;
        Frontier::from_blob(&SnapshotBlob::from_bytes(bytes))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::sample_generation;

    fn sample_frontier() -> Frontier {
        let entries = sample_generation(6, 3)
            .into_iter()
            .enumerate()
            .map(|(i, candidate)| FrontierEntry {
                candidate,
                alive: i % 2 == 0,
                score: (i > 1).then(|| Score {
                    throughput: 1.25 * i as f64,
                    latency_ns: 300.0 - i as f64,
                    p95_ns: 900 + i as u64,
                    completed: 40 * i as u64,
                    cost: 1000 + i as u64,
                }),
                warm: (i == 2).then(|| SnapshotBlob::from_bytes(vec![7u8; 13])),
            })
            .collect();
        Frontier {
            seed: 0x0dab,
            scale: 2,
            workload: "saturated".into(),
            next_rung: 1,
            rungs: vec![RungStats {
                budget_ps: 4_000_000,
                population: 6,
                survivors: 4,
                sim_ticks: 12345,
            }],
            entries,
        }
    }

    #[test]
    fn frontier_round_trips() {
        let f = sample_frontier();
        let blob = f.to_blob();
        let g = Frontier::from_blob(&blob).expect("decodes");
        assert_eq!(g.seed, f.seed);
        assert_eq!(g.scale, f.scale);
        assert_eq!(g.workload, f.workload);
        assert_eq!(g.next_rung, f.next_rung);
        assert_eq!(g.rungs, f.rungs);
        assert_eq!(g.entries.len(), f.entries.len());
        for (a, b) in f.entries.iter().zip(&g.entries) {
            assert_eq!(a.candidate, b.candidate);
            assert_eq!(a.alive, b.alive);
            assert_eq!(a.score.is_some(), b.score.is_some());
            if let (Some(x), Some(y)) = (&a.score, &b.score) {
                assert_eq!(x.throughput.to_bits(), y.throughput.to_bits());
                assert_eq!(x.latency_ns.to_bits(), y.latency_ns.to_bits());
                assert_eq!(
                    (x.p95_ns, x.completed, x.cost),
                    (y.p95_ns, y.completed, y.cost)
                );
            }
            match (&a.warm, &b.warm) {
                (Some(x), Some(y)) => assert_eq!(x.as_bytes(), y.as_bytes()),
                (None, None) => {}
                _ => panic!("warm blob presence diverged"),
            }
        }
        // Re-encoding is byte-stable.
        assert_eq!(g.to_blob().as_bytes(), blob.as_bytes());
    }

    #[test]
    fn corruption_fails_closed() {
        let mut bytes = sample_frontier().to_blob().as_bytes().to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(Frontier::from_blob(&SnapshotBlob::from_bytes(bytes)).is_err());
    }

    #[test]
    fn truncation_fails_closed() {
        let bytes = sample_frontier().to_blob().as_bytes().to_vec();
        let cut = bytes[..bytes.len() - 5].to_vec();
        assert!(Frontier::from_blob(&SnapshotBlob::from_bytes(cut)).is_err());
    }
}
