//! # mpsoc-dse
//!
//! Automated design-space exploration over MPSoC communication
//! architectures — the search loop the paper's authors wished they had.
//! Given a workload (saturated synthetic traffic, explicit IPTG
//! configurations or a trace replay), the explorer races a seeded
//! generation of candidate platforms — shared STBus vs partial crossbar
//! vs NoC mesh, bridge blockingness, buffer depths, wait states, LMI
//! settings — through a successive-halving budget ladder and reports
//! the Pareto front over throughput, mean latency and a static cost
//! model (links + buffer bits).
//!
//! The search leans on the rest of the workspace for speed: rung 0 runs
//! in the loosely-timed fast-forward gear, promotions resume from warm
//! per-candidate checkpoints instead of replaying from reset, and
//! evaluations fan out through the deterministic `parallel_map` runner.
//! Results are bit-reproducible for a given seed at any job count, and
//! the whole search frontier checkpoints to disk and resumes
//! mid-ladder with provably identical output.
//!
//! ```
//! use mpsoc_dse::{explore, DseConfig};
//!
//! let result = explore(&DseConfig { scale: 1, seed: 0x0dab, ..DseConfig::default() })?;
//! assert!(result.front.len() >= 2);
//! # Ok::<(), mpsoc_kernel::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod frontier;
mod pareto;
mod search;
mod space;

pub use build::DseWorkload;
pub use frontier::{Frontier, FrontierEntry, RungStats, FRONTIER_VERSION};
pub use pareto::{pareto_front, pareto_ranks, Score};
pub use search::{finalist_count, population_size};
pub use space::{sample_generation, Candidate, FabricFamily};

use mpsoc_kernel::{SimError, SimResult, Time};
use std::fmt;
use std::path::PathBuf;

/// Configuration of one exploration run.
#[derive(Debug, Clone)]
pub struct DseConfig {
    /// Workload scale: grows both the generation size and the budgets.
    pub scale: u64,
    /// Search seed; every observable output is a pure function of
    /// `(scale, seed, workload)`.
    pub seed: u64,
    /// Evaluation fan-out for `parallel_map` (1 = inline).
    pub jobs: usize,
    /// The traffic every candidate is scored against.
    pub workload: DseWorkload,
    /// Where to write frontier checkpoints (and where `resume` reads
    /// from when set).
    pub checkpoint_path: Option<PathBuf>,
    /// Save the frontier every N completed rungs.
    pub checkpoint_every: Option<u32>,
    /// Stop cleanly once N rungs have completed (the searched is saved
    /// to `checkpoint_path` first); used to prove resume equality.
    pub stop_after: Option<u32>,
    /// Resume from the frontier previously saved at `checkpoint_path`
    /// instead of seeding a fresh generation.
    pub resume: bool,
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            scale: 1,
            seed: 0x0dab,
            jobs: 1,
            workload: DseWorkload::Saturated,
            checkpoint_path: None,
            checkpoint_every: None,
            stop_after: None,
            resume: false,
        }
    }
}

/// One point of the final Pareto front.
#[derive(Debug, Clone, Copy)]
pub struct FrontPoint {
    /// The design point.
    pub candidate: Candidate,
    /// Its quiescence-rung score.
    pub score: Score,
}

/// The outcome of [`explore`].
#[derive(Debug, Clone)]
pub struct DseResult {
    /// Scale the search ran at.
    pub scale: u64,
    /// Search seed.
    pub seed: u64,
    /// Workload label.
    pub workload: String,
    /// Candidates in the generation.
    pub candidates: usize,
    /// Per-rung accounting (budget, population, survivors, sim ticks).
    pub rungs: Vec<RungStats>,
    /// The non-dominated finalists, throughput-descending.
    pub front: Vec<FrontPoint>,
    /// All finalists (front superset), throughput-descending.
    pub finalists: Vec<FrontPoint>,
    /// Distinct fabric families represented on the front.
    pub families_on_front: usize,
    /// `true` when `stop_after` interrupted the ladder (the front is
    /// empty; resume from the checkpoint to finish).
    pub stopped: bool,
}

impl DseResult {
    /// Total kernel ticks across all rungs.
    pub fn total_sim_ticks(&self) -> u64 {
        self.rungs.iter().map(|r| r.sim_ticks).sum()
    }
}

impl fmt::Display for DseResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXP-DSE design-space exploration  workload {}  candidates {}  seed {:#x}",
            self.workload, self.candidates, self.seed
        )?;
        for (k, r) in self.rungs.iter().enumerate() {
            let budget = if r.budget_ps == 0 {
                "quiescence".to_owned()
            } else {
                format!("{:>7} us", r.budget_ps / 1_000_000)
            };
            writeln!(
                f,
                "rung {k}  {budget:>12}  population {:>3}  survivors {:>3}  sim-ticks {}",
                r.population, r.survivors, r.sim_ticks
            )?;
        }
        if self.stopped {
            writeln!(f, "search interrupted mid-ladder (resume to finish)")?;
            return Ok(());
        }
        writeln!(f, "pareto front (throughput desc):")?;
        for p in &self.front {
            let latency = if p.score.latency_ns.is_finite() {
                format!("{:>8.1} ns", p.score.latency_ns)
            } else {
                " stalled".to_owned()
            };
            writeln!(
                f,
                "  #{:<3} {:<12} {:<22} {:>9.3} tx/us {latency}  p95 {:>6}  cost {:>6}",
                p.candidate.index,
                p.candidate.family.label(),
                p.candidate.summary(),
                p.score.throughput,
                p.score.p95_ns,
                p.score.cost,
            )?;
        }
        writeln!(
            f,
            "front: {} points, {} families",
            self.front.len(),
            self.families_on_front
        )
    }
}

fn result_from(frontier: &Frontier, stopped: bool) -> DseResult {
    let finalists: Vec<&FrontierEntry> = frontier
        .entries
        .iter()
        .filter(|e| e.alive && e.score.is_some())
        .collect();
    let (front, all, families) = if stopped {
        (Vec::new(), Vec::new(), 0)
    } else {
        let scores: Vec<Score> = finalists
            .iter()
            .map(|e| e.score.expect("filtered"))
            .collect();
        // Throughput-descending, index tie-break: a stable, job-count
        // independent presentation order.
        let by_throughput = |idx: &mut Vec<usize>| {
            idx.sort_by(|&a, &b| {
                scores[b].throughput.total_cmp(&scores[a].throughput).then(
                    finalists[a]
                        .candidate
                        .index
                        .cmp(&finalists[b].candidate.index),
                )
            });
        };
        let points = |idx: Vec<usize>| -> Vec<FrontPoint> {
            idx.into_iter()
                .map(|i| FrontPoint {
                    candidate: finalists[i].candidate,
                    score: scores[i],
                })
                .collect()
        };
        let mut front_idx = pareto_front(&scores);
        by_throughput(&mut front_idx);
        let mut all_idx: Vec<usize> = (0..finalists.len()).collect();
        by_throughput(&mut all_idx);
        let front = points(front_idx);
        let mut fams: Vec<u8> = front.iter().map(|p| p.candidate.family.tag()).collect();
        fams.sort_unstable();
        fams.dedup();
        (front, points(all_idx), fams.len())
    };
    DseResult {
        scale: frontier.scale,
        seed: frontier.seed,
        workload: frontier.workload.clone(),
        candidates: frontier.entries.len(),
        rungs: frontier.rungs.clone(),
        front,
        finalists: all,
        families_on_front: families,
        stopped,
    }
}

/// Runs (or resumes) a design-space exploration.
///
/// # Errors
///
/// Fails if a candidate platform cannot be built or restored, if a
/// checkpoint cannot be written, or if `resume` is set and the
/// checkpoint is missing, corrupt, or was recorded for a different
/// `(scale, seed, workload)`.
pub fn explore(config: &DseConfig) -> SimResult<DseResult> {
    let invalid = |reason: String| SimError::InvalidConfig { reason };
    let mut frontier = if config.resume {
        let path = config
            .checkpoint_path
            .as_deref()
            .ok_or_else(|| invalid("--dse-resume needs a checkpoint path".into()))?;
        let frontier = Frontier::load(path)
            .map_err(|e| invalid(format!("loading DSE checkpoint {}: {e}", path.display())))?;
        if frontier.seed != config.seed
            || frontier.scale != config.scale
            || frontier.workload != config.workload.label()
        {
            return Err(invalid(format!(
                "checkpoint was recorded for scale {} seed {:#x} workload {}, \
                 requested scale {} seed {:#x} workload {}",
                frontier.scale,
                frontier.seed,
                frontier.workload,
                config.scale,
                config.seed,
                config.workload.label()
            )));
        }
        frontier
    } else {
        search::seed_frontier(config.scale, config.seed, &config.workload)
    };
    let params = search::SearchParams {
        scale: config.scale,
        seed: config.seed,
        jobs: config.jobs.max(1),
        workload: &config.workload,
        checkpoint_path: config.checkpoint_path.as_deref(),
        checkpoint_every: config.checkpoint_every,
        stop_after: config.stop_after,
    };
    let stopped = search::run_search(&mut frontier, &params)?;
    Ok(result_from(&frontier, stopped))
}

/// The simulated horizon used by quickstart-style sanity checks: long
/// enough for every reasonable finalist, short enough to fail fast.
pub const SANITY_HORIZON: Time = Time::from_ms(60);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_front_is_non_degenerate() {
        let result = explore(&DseConfig::default()).expect("search runs");
        assert!(!result.stopped);
        assert!(result.front.len() >= 3, "front too small:\n{result}");
        assert!(
            result.families_on_front >= 2,
            "front spans too few families:\n{result}"
        );
    }

    #[test]
    fn table_is_reproducible_across_jobs() {
        let base = DseConfig::default();
        let a = explore(&base).expect("runs").to_string();
        let b = explore(&DseConfig { jobs: 4, ..base })
            .expect("runs")
            .to_string();
        assert_eq!(a, b, "jobs must not leak into the table");
    }

    #[test]
    fn resume_is_identical_to_uninterrupted() {
        let dir = std::env::temp_dir().join(format!("dse-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let ckpt = dir.join("frontier.bin");
        let base = DseConfig {
            checkpoint_path: Some(ckpt.clone()),
            ..DseConfig::default()
        };
        let full = explore(&DseConfig {
            checkpoint_path: None,
            ..base.clone()
        })
        .expect("full run");
        let stopped = explore(&DseConfig {
            stop_after: Some(1),
            ..base.clone()
        })
        .expect("interrupted run");
        assert!(stopped.stopped);
        let resumed = explore(&DseConfig {
            resume: true,
            ..base
        })
        .expect("resumed run");
        assert_eq!(full.to_string(), resumed.to_string());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_mismatched_parameters() {
        let dir = std::env::temp_dir().join(format!("dse-mismatch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let ckpt = dir.join("frontier.bin");
        explore(&DseConfig {
            checkpoint_path: Some(ckpt.clone()),
            stop_after: Some(1),
            ..DseConfig::default()
        })
        .expect("interrupted run");
        let err = explore(&DseConfig {
            checkpoint_path: Some(ckpt),
            resume: true,
            seed: 0xbad,
            ..DseConfig::default()
        })
        .expect_err("seed mismatch must fail");
        assert!(err.to_string().contains("checkpoint was recorded"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
