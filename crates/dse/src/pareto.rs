//! Three-objective Pareto dominance and deterministic front extraction.
//!
//! Objectives: throughput (maximise), mean latency (minimise), static
//! cost (minimise). All comparisons use `f64::total_cmp` / integer
//! ordering so ranking is bit-stable across hosts and job counts.

/// The measured objectives of one candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Score {
    /// Completed transactions per simulated microsecond.
    pub throughput: f64,
    /// Mean transaction latency in nanoseconds (0 when no responses were
    /// observed, e.g. all-posted trace workloads).
    pub latency_ns: f64,
    /// p95 transaction latency in nanoseconds (reported, not ranked).
    pub p95_ns: u64,
    /// Completed transactions inside the budget.
    pub completed: u64,
    /// Static implementation cost (links + buffer bits).
    pub cost: u64,
}

impl Score {
    /// `true` when `self` is at least as good as `other` on every ranked
    /// objective and strictly better on at least one.
    pub fn dominates(&self, other: &Score) -> bool {
        let ge = self.throughput >= other.throughput
            && self.latency_ns <= other.latency_ns
            && self.cost <= other.cost;
        let gt = self.throughput > other.throughput
            || self.latency_ns < other.latency_ns
            || self.cost < other.cost;
        ge && gt
    }
}

/// Non-dominated sorting rank of every entry: rank 0 is the Pareto
/// front, rank 1 the front once rank 0 is removed, and so on.
/// Ties (identical scores) share a rank.
pub fn pareto_ranks(scores: &[Score]) -> Vec<u32> {
    let mut rank = vec![u32::MAX; scores.len()];
    let mut assigned = 0usize;
    let mut current = 0u32;
    while assigned < scores.len() {
        let mut this_round = Vec::new();
        for (i, s) in scores.iter().enumerate() {
            if rank[i] != u32::MAX {
                continue;
            }
            let dominated = scores
                .iter()
                .enumerate()
                .any(|(j, o)| i != j && rank[j] == u32::MAX && o.dominates(s));
            if !dominated {
                this_round.push(i);
            }
        }
        // A dominance cycle is impossible (dominance is a strict partial
        // order), so every round assigns at least one rank.
        debug_assert!(!this_round.is_empty());
        for i in this_round {
            rank[i] = current;
            assigned += 1;
        }
        current += 1;
    }
    rank
}

/// Indices of the non-dominated entries, in input order.
pub fn pareto_front(scores: &[Score]) -> Vec<usize> {
    pareto_ranks(scores)
        .iter()
        .enumerate()
        .filter(|(_, r)| **r == 0)
        .map(|(i, _)| i)
        .collect()
}

/// Deterministic promotion order: ascending Pareto rank, then descending
/// throughput, then ascending stable id. Returns indices into `scores`.
pub fn promotion_order(scores: &[Score], ids: &[u32]) -> Vec<usize> {
    assert_eq!(scores.len(), ids.len());
    let ranks = pareto_ranks(scores);
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        ranks[a]
            .cmp(&ranks[b])
            .then(scores[b].throughput.total_cmp(&scores[a].throughput))
            .then(ids[a].cmp(&ids[b]))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(throughput: f64, latency_ns: f64, cost: u64) -> Score {
        Score {
            throughput,
            latency_ns,
            p95_ns: 0,
            completed: 0,
            cost,
        }
    }

    #[test]
    fn dominance_is_strict() {
        let a = s(10.0, 100.0, 50);
        let b = s(5.0, 200.0, 80);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a), "equal scores never dominate");
    }

    #[test]
    fn trade_offs_are_mutually_non_dominated() {
        let fast_expensive = s(10.0, 100.0, 90);
        let slow_cheap = s(4.0, 300.0, 20);
        assert!(!fast_expensive.dominates(&slow_cheap));
        assert!(!slow_cheap.dominates(&fast_expensive));
        let front = pareto_front(&[fast_expensive, slow_cheap]);
        assert_eq!(front, vec![0, 1]);
    }

    #[test]
    fn ranks_peel_layers() {
        let scores = [
            s(10.0, 100.0, 50), // front
            s(4.0, 300.0, 20),  // front (cheap)
            s(9.0, 150.0, 60),  // dominated by 0
            s(3.0, 400.0, 30),  // dominated by 1
        ];
        assert_eq!(pareto_ranks(&scores), vec![0, 0, 1, 1]);
        assert_eq!(pareto_front(&scores), vec![0, 1]);
    }

    #[test]
    fn promotion_order_is_total_and_deterministic() {
        let scores = [s(5.0, 100.0, 50), s(5.0, 100.0, 50), s(9.0, 90.0, 40)];
        let ids = [7, 2, 9];
        let order = promotion_order(&scores, &ids);
        // The dominant candidate first, then the tied pair by id.
        assert_eq!(order, vec![2, 1, 0]);
    }
}
