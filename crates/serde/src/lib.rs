//! Offline stand-in for the `serde` crate.
//!
//! The build environment of this repository has no access to a crates.io
//! mirror, so the real `serde` cannot be fetched. This vendored shim keeps
//! the public surface the workspace actually uses — `use serde::Serialize;`
//! plus `#[derive(Serialize)]` — and backs it with a single concrete data
//! format: JSON. That is exactly what the experiment result types and the
//! `BENCH_kernel.json` perf ledger need.
//!
//! The shim is intentionally tiny: one trait, impls for the primitive and
//! container types that appear in experiment results, and a derive macro
//! (in `serde_derive`) for plain named-field structs.
//!
//! # Examples
//!
//! ```
//! use serde::Serialize;
//!
//! #[derive(Serialize)]
//! struct Row { name: String, cycles: u64, ratio: f64 }
//!
//! let row = Row { name: "fig3".into(), cycles: 1200, ratio: 1.5 };
//! assert_eq!(row.to_json(), r#"{"name":"fig3","cycles":1200,"ratio":1.5}"#);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Lets the generated `::serde::Serialize` paths resolve inside this crate's
// own tests and doctests.
extern crate self as serde;

pub use serde_derive::Serialize;

/// A type that can write itself as a JSON value.
///
/// This is the shim's replacement for `serde::Serialize`. Instead of the
/// full serde data model there is one method that appends a JSON encoding
/// to a string buffer; `#[derive(Serialize)]` generates it for structs.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);

    /// Returns the JSON encoding of `self` as a fresh string.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.serialize_json(&mut out);
        out
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(itoa_buf(&mut [0u8; 40], *self as i128));
            }
        })*
    };
}

/// Formats an integer without going through `format!` (hot in perf logs).
fn itoa_buf(buf: &mut [u8; 40], mut v: i128) -> &str {
    let neg = v < 0;
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10).unsigned_abs() as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    if neg {
        i -= 1;
        buf[i] = b'-';
    }
    std::str::from_utf8(&buf[i..]).expect("ascii digits")
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                let mut buf = [0u8; 40];
                let mut v = *self as u128;
                let mut i = buf.len();
                loop {
                    i -= 1;
                    buf[i] = b'0' + (v % 10) as u8;
                    v /= 10;
                    if v == 0 { break; }
                }
                out.push_str(std::str::from_utf8(&buf[i..]).expect("ascii digits"));
            }
        })*
    };
}

impl_serialize_int!(i8, i16, i32, i64, i128, isize);
impl_serialize_uint!(u8, u16, u32, u64, u128, usize);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            // `{}` prints the shortest representation that round-trips.
            out.push_str(&format!("{self}"));
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        f64::from(*self).serialize_json(out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(k, out);
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(']');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_encode() {
        assert_eq!(42u64.to_json(), "42");
        assert_eq!((-7i64).to_json(), "-7");
        assert_eq!(true.to_json(), "true");
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!("a\"b".to_string().to_json(), r#""a\"b""#);
    }

    #[test]
    fn containers_encode() {
        assert_eq!(vec![1u32, 2, 3].to_json(), "[1,2,3]");
        assert_eq!(Option::<u64>::None.to_json(), "null");
        assert_eq!(Some(9u8).to_json(), "9");
        assert_eq!((1u8, "x").to_json(), r#"[1,"x"]"#);
    }

    #[test]
    fn derive_honors_serde_skip() {
        #[derive(Serialize)]
        struct S {
            kept: u64,
            #[serde(skip)]
            #[allow(dead_code)]
            dropped: String,
            tail: bool,
        }
        let s = S {
            kept: 7,
            dropped: "hidden".into(),
            tail: true,
        };
        assert_eq!(s.to_json(), r#"{"kept":7,"tail":true}"#);
    }

    #[test]
    fn derive_handles_named_structs() {
        #[derive(Serialize)]
        struct S {
            a: u64,
            b: String,
            c: Vec<f64>,
        }
        let s = S {
            a: 1,
            b: "two".into(),
            c: vec![3.0],
        };
        assert_eq!(s.to_json(), r#"{"a":1,"b":"two","c":[3]}"#);
    }
}
